"""Table III -- full comparison with the state of the art.

Regenerates every column of the paper's Table III:

* resource usage (LUTs) for the DDR4 and DDR3 targets, from the
  structural area model calibrated in :mod:`repro.analysis.area`;
* the "Vulnerable to Attack" column from the literature-documented
  bypasses each technique declares;
* activation overhead (mu +- sigma over seeds) and false-positive rate
  measured on the paper's mixed SPEC + ramping-attacker workload.

Paper reference rows (DDR4 LUTs / vulnerable / overhead / FPR):

    ProHit     1,653   (4.7x)   No   (0.6    +- 0.019)%    0.34%
    MRLoc      1,865   (5.3x)   Yes  (0.11   +- 0.012)%    0.064%
    PARA         349   (1x)     Yes  (0.1    +- 0.0084)%   0.062%
    TWiCe    258,356   (740x)   No   (0.0037 +- 0.0001)%   0%
    CRA    5,694,107 (16,315x)  No   (0.0037 +- 0.0001)%   0%
    CaPRoMi   21,061   (60x)    No   (0.008  +- 0.00023)%  0.007%
    LiPRoMi    5,155   (15x)    Yes  (0.012  +- 0.00034)%  0.013%
    LoPRoMi    5,228   (15x)    No   (0.016  +- 0.00064)%  0.010%
    LoLiPRoMi  5,374   (15x)    No   (0.014  +- 0.00027)%  0.011%
"""

from benchmarks.conftest import paper_comparison, run_once
from repro.analysis.area import table3_resources
from repro.analysis.report import render_table3
from repro.mitigations.registry import TIVAPROMI_VARIANTS
from repro.sim.attacks import vulnerability_verdicts


def test_table3_comparison(benchmark, paper_config):
    comparison = run_once(benchmark, lambda: paper_comparison(paper_config))
    measured = {k: v for k, v in comparison.items() if k != "none"}
    resources = table3_resources(paper_config)

    print("\n=== Table III (reproduced) ===")
    print(render_table3(paper_config, measured, resources))

    for name, aggregate in measured.items():
        benchmark.extra_info[name] = {
            "overhead_pct": round(aggregate.overhead_mean, 5),
            "fpr_pct": round(aggregate.fpr_mean, 5),
            "luts_ddr4": resources[name].luts_ddr4,
            "flips": aggregate.total_flips,
        }

    # --- shape assertions against the paper ---
    # no mitigation lets an attack through; the unprotected run flips
    assert comparison["none"].total_flips > 0
    assert all(agg.total_flips == 0 for agg in measured.values())
    # PARA's overhead is pinned by its probability: ~0.1 %
    assert 0.07 < measured["PARA"].overhead_mean < 0.13
    # every TiVaPRoMi variant beats every static probabilistic baseline
    worst_variant = max(
        measured[name].overhead_mean for name in TIVAPROMI_VARIANTS
    )
    best_probabilistic = min(
        measured[name].overhead_mean for name in ("PARA", "ProHit", "MRLoc")
    )
    assert worst_variant < best_probabilistic
    # tabled counters beat TiVaPRoMi on overhead (their selling point)
    assert measured["TWiCe"].overhead_mean < min(
        measured[name].overhead_mean for name in TIVAPROMI_VARIANTS
    )
    # counter techniques are false-positive-free
    assert measured["TWiCe"].fpr_mean < 0.005
    assert measured["CRA"].fpr_mean < 0.005
    # vulnerability column matches the paper exactly
    verdicts = vulnerability_verdicts()
    assert {n for n, (flag, _) in verdicts.items() if flag} == {
        "PARA", "MRLoc", "LiPRoMi",
    }
    # resource ordering: PARA < ProHit/MRLoc < TiVaPRoMi < TWiCe < CRA
    assert resources["PARA"].luts_ddr4 < resources["ProHit"].luts_ddr4
    assert resources["LoLiPRoMi"].luts_ddr4 < resources["CaPRoMi"].luts_ddr4
    assert resources["CaPRoMi"].luts_ddr4 < resources["TWiCe"].luts_ddr4
    assert resources["TWiCe"].luts_ddr4 < resources["CRA"].luts_ddr4


def test_table3_relative_luts(benchmark, paper_config):
    """The (relative to PARA) column: 15x for the Fig. 2 variants, 60x
    for CaPRoMi, 740x for TWiCe, 16,315x for CRA."""

    def compute():
        resources = table3_resources(paper_config)
        para = resources["PARA"]
        return {
            name: resources[name].relative_to(para) for name in resources
        }

    relatives = run_once(benchmark, compute)
    print("\n=== LUTs relative to PARA (paper: 15x/15x/15x/60x/740x/16315x) ===")
    for name in ("LiPRoMi", "LoPRoMi", "LoLiPRoMi", "CaPRoMi", "TWiCe", "CRA"):
        print(f"  {name:<10} {relatives[name]:,.1f}x")
        benchmark.extra_info[name] = round(relatives[name], 1)
    assert 13 < relatives["LiPRoMi"] < 17
    assert 50 < relatives["CaPRoMi"] < 70
    assert 600 < relatives["TWiCe"] < 900
    assert 12_000 < relatives["CRA"] < 20_000
