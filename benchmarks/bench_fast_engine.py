"""Fast-engine speedup on the flooding benchmark trace.

Replays one full-rate single-row flood (the Section IV attack shape)
through both simulation engines and reports the speedup per technique.
The acceptance bar is a >= 3x speedup for the probabilistic TiVaPRoMi
variants; results must be field-for-field identical, which this bench
also re-asserts at benchmark scale (the differential tests pin it at
test scale).

Scale with ``REPRO_BENCH_INTERVALS`` as usual.
"""

from __future__ import annotations

import time

from benchmarks.conftest import BENCH_INTERVALS, run_once
from repro.analysis.report import render_table
from repro.mitigations.registry import make_factory
from repro.sim.engine import run_simulation
from repro.sim.fast_engine import run_simulation_fast
from repro.traces.attacker import AttackSpec
from repro.traces.mixer import build_trace

#: techniques held to the 3x bar (the paper's probabilistic variants)
FAST_PATH_TECHNIQUES = ("LiPRoMi", "LoPRoMi", "LoLiPRoMi")
#: measured and reported, but not held to the bar (PARA has a cheaper
#: fast path; the counter-based techniques run their reference decision
#: logic behind the flattened record loop)
REPORTED_TECHNIQUES = ("PARA", "TWiCe", "CaPRoMi", "none")
SPEEDUP_FLOOR = 3.0


def _flooding_trace(config):
    row = config.geometry.rows_per_bank // 2
    acts = config.timing.max_acts_per_interval
    return build_trace(
        config,
        BENCH_INTERVALS,
        attacks=(
            AttackSpec(bank=0, aggressors=(row,), acts_per_interval=acts),
        ),
        seed=3,
        materialize=True,
    )


def _measure(config, trace, technique):
    factory = make_factory(technique) if technique != "none" else None
    started = time.perf_counter()
    reference = run_simulation(config, trace, factory, seed=3)
    mid = time.perf_counter()
    fast = run_simulation_fast(config, trace, factory, seed=3)
    ended = time.perf_counter()
    assert reference.as_dict() == fast.as_dict(), technique
    return mid - started, ended - mid


def test_fast_engine_speedup(benchmark, paper_config):
    trace = _flooding_trace(paper_config)

    def compute():
        return {
            technique: _measure(paper_config, trace, technique)
            for technique in FAST_PATH_TECHNIQUES + REPORTED_TECHNIQUES
        }

    timings = run_once(benchmark, compute)
    rows = []
    for technique, (ref_seconds, fast_seconds) in timings.items():
        speedup = ref_seconds / fast_seconds
        benchmark.extra_info[technique] = round(speedup, 2)
        rows.append(
            (technique, f"{ref_seconds:.3f}s", f"{fast_seconds:.3f}s",
             f"{speedup:.1f}x")
        )
    print(f"\n=== fast engine vs reference, flooding trace "
          f"({trace.count():,} records, {BENCH_INTERVALS} intervals) ===")
    print(render_table(("technique", "reference", "fast", "speedup"), rows))

    for technique in FAST_PATH_TECHNIQUES:
        ref_seconds, fast_seconds = timings[technique]
        assert ref_seconds / fast_seconds >= SPEEDUP_FLOOR, (
            f"{technique}: {ref_seconds / fast_seconds:.2f}x "
            f"< {SPEEDUP_FLOOR}x floor"
        )
