"""Fast-engine speedup on the flooding benchmark trace.

Replays one full-rate single-row flood (the Section IV attack shape)
through both simulation engines and reports the speedup per technique.
The acceptance bar is a >= 3x speedup for the probabilistic TiVaPRoMi
variants; results must be field-for-field identical, which this bench
also re-asserts at benchmark scale (the differential tests pin it at
test scale).

Scale with ``REPRO_BENCH_INTERVALS`` as usual.
"""

from __future__ import annotations

import time

from benchmarks.conftest import BENCH_INTERVALS, run_once, write_bench_output
from repro.analysis.report import render_table
from repro.mitigations.registry import make_factory
from repro.sim.engine import run_simulation
from repro.sim.fast_engine import run_simulation_fast
from repro.telemetry import NullTracer
from repro.traces.attacker import AttackSpec
from repro.traces.mixer import build_trace

#: techniques held to the 3x bar (the paper's probabilistic variants)
FAST_PATH_TECHNIQUES = ("LiPRoMi", "LoPRoMi", "LoLiPRoMi")
#: measured and reported, but not held to the bar (PARA has a cheaper
#: fast path; the counter-based techniques run their reference decision
#: logic behind the flattened record loop)
REPORTED_TECHNIQUES = ("PARA", "TWiCe", "CaPRoMi", "none")
SPEEDUP_FLOOR = 3.0


def _flooding_trace(config):
    row = config.geometry.rows_per_bank // 2
    acts = config.timing.max_acts_per_interval
    return build_trace(
        config,
        BENCH_INTERVALS,
        attacks=(
            AttackSpec(bank=0, aggressors=(row,), acts_per_interval=acts),
        ),
        seed=3,
        materialize=True,
    )


def _measure(config, trace, technique):
    factory = make_factory(technique) if technique != "none" else None
    started = time.perf_counter()
    reference = run_simulation(config, trace, factory, seed=3)
    mid = time.perf_counter()
    # the fast run carries a NullTracer, so the 3x floor below also
    # certifies that the disabled telemetry layer costs nothing
    fast = run_simulation_fast(
        config, trace, factory, seed=3, tracer=NullTracer()
    )
    ended = time.perf_counter()
    assert reference.as_dict() == fast.as_dict(), technique
    return mid - started, ended - mid


def test_fast_engine_speedup(benchmark, paper_config):
    trace = _flooding_trace(paper_config)

    def compute():
        return {
            technique: _measure(paper_config, trace, technique)
            for technique in FAST_PATH_TECHNIQUES + REPORTED_TECHNIQUES
        }

    timings = run_once(benchmark, compute)
    rows = []
    for technique, (ref_seconds, fast_seconds) in timings.items():
        speedup = ref_seconds / fast_seconds
        benchmark.extra_info[technique] = round(speedup, 2)
        rows.append(
            (technique, f"{ref_seconds:.3f}s", f"{fast_seconds:.3f}s",
             f"{speedup:.1f}x")
        )
    report = (
        f"=== fast engine vs reference, flooding trace "
        f"({trace.count():,} records, {BENCH_INTERVALS} intervals) ===\n"
        + render_table(("technique", "reference", "fast", "speedup"), rows)
    )
    print("\n" + report)
    write_bench_output("fast_engine_speedup", report)

    for technique in FAST_PATH_TECHNIQUES:
        ref_seconds, fast_seconds = timings[technique]
        assert ref_seconds / fast_seconds >= SPEEDUP_FLOOR, (
            f"{technique}: {ref_seconds / fast_seconds:.2f}x "
            f"< {SPEEDUP_FLOOR}x floor"
        )


#: a NullTracer run may be at most this much slower than a plain run
#: (ratio bound, plus an absolute epsilon to absorb timer noise on the
#: reduced CI scale)
NULL_TRACER_OVERHEAD_RATIO = 1.02
NULL_TRACER_OVERHEAD_EPSILON_S = 0.05


def test_null_tracer_overhead(benchmark, paper_config):
    """Disabled telemetry must not regress the fast engine.

    ``NullTracer`` is collapsed to ``telemetry=None`` at engine entry,
    so the only admissible cost is that collapse plus per-interval
    ``if tele is not None`` checks.  Best-of-3 timings keep the
    comparison robust against scheduler noise.
    """
    trace = _flooding_trace(paper_config)
    factory = make_factory("LoLiPRoMi")

    def best_of(runs, **kwargs):
        best = None
        for _ in range(runs):
            started = time.perf_counter()
            result = run_simulation_fast(
                paper_config, trace, factory, seed=3, **kwargs
            )
            elapsed = time.perf_counter() - started
            if best is None or elapsed < best[0]:
                best = (elapsed, result)
        return best

    def compute():
        plain = best_of(3)
        nulled = best_of(3, tracer=NullTracer())
        return plain, nulled

    (plain_s, plain_result), (null_s, null_result) = run_once(
        benchmark, compute
    )
    assert plain_result.as_dict() == null_result.as_dict()
    benchmark.extra_info["overhead_pct"] = round(
        100.0 * (null_s / plain_s - 1.0), 2
    )
    print(f"\nNullTracer overhead: plain={plain_s:.3f}s "
          f"null={null_s:.3f}s ({100.0 * (null_s / plain_s - 1.0):+.2f}%)")
    assert null_s <= plain_s * NULL_TRACER_OVERHEAD_RATIO + \
        NULL_TRACER_OVERHEAD_EPSILON_S, (
        f"NullTracer regressed the fast engine: {plain_s:.3f}s -> "
        f"{null_s:.3f}s"
    )
