"""Queue-executor overhead vs the local process pool.

The filesystem work queue (``docs/distributed.md``) buys multi-host
campaigns with filesystem primitives: tickets, atomic-rename leases,
polled results.  That transport must stay cheap enough that pointing
two *local* workers at a queue directory is a reasonable way to run a
small campaign — this guard runs the same grid through the pool
executor and through a queue with self-spawned workers, re-asserts the
contract's bit-identical-aggregates clause at benchmark scale, and
holds the queue's **per-shard overhead** (total wall-clock delta over
the pool, divided by the shard count) under a fixed budget.

The grid is deliberately small and the engine fast, so the measurement
is dominated by transport -- publish, claim, heartbeat, result
round-trip, poll latency -- not simulation.  Worker-process startup is
part of the price (the pool pays it too) and is included.
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_once, write_bench_output
from repro.analysis.report import render_table
from repro.campaign import QueueExecutor
from repro.config import small_test_config
from repro.sim.parallel import run_campaign

TECHNIQUES = ("PARA", "TWiCe")
SEEDS = tuple(range(4))
INTERVALS = 8
SHARDS = len(TECHNIQUES) * len(SEEDS)

#: max acceptable queue-transport cost per shard, seconds.  Local runs
#: measure well under 0.1 s/shard; the budget leaves room for slow CI
#: filesystems while still catching a lost-wakeup style regression
#: (a single skipped poll interval across the campaign would blow it).
PER_SHARD_OVERHEAD_BUDGET_S = 0.75


def canonical(aggregates):
    return {
        name: [result.as_dict() for result in aggregate.results]
        for name, aggregate in aggregates.items()
    }


def test_queue_executor_overhead(benchmark, tmp_path):
    config = small_test_config(num_banks=2)

    def campaign(executor):
        return run_campaign(
            config, INTERVALS, techniques=TECHNIQUES, seeds=SEEDS,
            workers=2, engine="fast", executor=executor,
        )

    def compute():
        started = time.perf_counter()
        pooled = campaign("pool")
        mid = time.perf_counter()
        queued = campaign(QueueExecutor(
            tmp_path / "queue", workers=2, lease_timeout=30.0,
            poll_interval=0.05,
        ))
        ended = time.perf_counter()
        return mid - started, ended - mid, pooled, queued

    pool_s, queue_s, pooled, queued = run_once(benchmark, compute)

    assert canonical(queued) == canonical(pooled), (
        "queue executor diverged from the pool at benchmark scale"
    )

    per_shard = max(0.0, queue_s - pool_s) / SHARDS
    benchmark.extra_info["pool_s"] = round(pool_s, 3)
    benchmark.extra_info["queue_s"] = round(queue_s, 3)
    benchmark.extra_info["per_shard_overhead_s"] = round(per_shard, 3)
    report = (
        f"=== queue executor vs local pool, {SHARDS} shards x "
        f"{INTERVALS} intervals (fast engine, 2 workers each) ===\n"
        + render_table(
            ("shards", "pool", "queue", "overhead/shard", "budget"),
            [(
                str(SHARDS), f"{pool_s:.3f}s", f"{queue_s:.3f}s",
                f"{per_shard:.3f}s", f"{PER_SHARD_OVERHEAD_BUDGET_S:.2f}s",
            )],
        )
    )
    print("\n" + report)
    write_bench_output("distributed_overhead", report)

    assert per_shard <= PER_SHARD_OVERHEAD_BUDGET_S, (
        f"queue transport costs {per_shard:.3f}s per shard "
        f"(pool {pool_s:.3f}s vs queue {queue_s:.3f}s for {SHARDS} "
        f"shards) — over the {PER_SHARD_OVERHEAD_BUDGET_S}s budget"
    )
