"""Table I -- simulated system specification.

Regenerates the configuration table and verifies the derived values the
paper quotes (RefInt 8192, 165 activations per interval, the 54/420
cycle budgets, RefInt * Pbase = 9.8e-4).
"""

from benchmarks.conftest import run_once
from repro.analysis.report import render_table1


def test_table1_system_specification(benchmark, paper_config):
    text = run_once(benchmark, lambda: render_table1(paper_config))
    print("\n=== Table I: simulated system specifications ===")
    print(text)
    benchmark.extra_info["refint"] = paper_config.geometry.refint
    benchmark.extra_info["max_probability"] = paper_config.max_probability
    assert paper_config.geometry.refint == 8192
    assert paper_config.timing.max_acts_per_interval == 165
    assert abs(paper_config.max_probability - 9.8e-4) < 2e-5
