"""Section II extensions: the alternatives the paper argues against.

Beyond the nine Table III techniques, Section II discusses two more
defence families and dismisses both with specific arguments; these
benches measure those arguments:

* **software-level detection** (ANVIL [1], ML detectors [4]): "the
  detection is slow and normally requires the length of several
  refresh windows, and until then, bit flipping might already start" --
  measured as flips landing before the detector's confirmation;
* **adaptive trees of counters** [16]/[10]: covered by
  ``bench_vulnerability.py``'s saturation experiment; here the tree
  joins the overhead comparison to show where it sits on the Fig. 4
  axes (storage near 1 KB, overhead near the tabled counters).
"""

from benchmarks.conftest import BENCH_INTERVALS, BENCH_SEEDS, run_once
from repro.analysis.report import render_table
from repro.config import small_test_config
from repro.sim.attacks import software_detection_experiment
from repro.sim.experiment import default_trace_factory, run_technique


def test_extension_software_detection_latency(benchmark):
    config = small_test_config(rows_per_bank=4096, flip_threshold=30_000)
    outcome = run_once(
        benchmark,
        lambda: software_detection_experiment(config, windows=4, rate=120),
    )
    print("\n=== software detection vs hardware mitigation (Section II) ===")
    rows = [
        ("detection latency (refresh windows)", str(outcome.latency_windows)),
        ("flips before detection", str(outcome.software_flips_before_detection)),
        ("flips after quarantine", str(outcome.software_flips_after_detection)),
        ("hardware (LoLiPRoMi) flips", str(outcome.hardware_flips)),
    ]
    print(render_table(("quantity", "value"), rows))
    benchmark.extra_info["latency_windows"] = outcome.latency_windows
    benchmark.extra_info["flips_before"] = outcome.software_flips_before_detection
    assert outcome.detected
    assert outcome.software_flips_before_detection > 0
    assert outcome.software_flips_after_detection == 0
    assert outcome.hardware_flips == 0


def test_extension_counter_tree_overhead(benchmark, paper_config):
    factory = default_trace_factory(paper_config, total_intervals=BENCH_INTERVALS)

    def compute():
        return {
            name: run_technique(paper_config, name, factory, seeds=BENCH_SEEDS)
            for name in ("CounterTree", "TWiCe", "LoLiPRoMi")
        }

    results = run_once(benchmark, compute)
    print("\n=== adaptive counter tree vs TWiCe vs LoLiPRoMi ===")
    rows = [
        (name, aggregate.overhead_cell(), f"{aggregate.table_bytes:,} B",
         str(aggregate.total_flips))
        for name, aggregate in results.items()
    ]
    print(render_table(("technique", "overhead", "table/bank", "flips"), rows))
    for name, aggregate in results.items():
        benchmark.extra_info[name] = {
            "overhead_pct": round(aggregate.overhead_mean, 5),
            "table_bytes": aggregate.table_bytes,
        }
    tree = results["CounterTree"]
    assert tree.total_flips == 0
    # the tree sits between TiVaPRoMi and TWiCe in storage (Fig. 4 axes)
    assert results["LoLiPRoMi"].table_bytes < tree.table_bytes
    assert tree.table_bytes < results["TWiCe"].table_bytes

def test_extension_half_double_coupling(benchmark):
    """Beyond-paper extension: with Half-Double-style distance-2
    coupling, distance-1 mitigations keep every direct victim clean but
    cannot reach the second-neighbour rows."""
    from repro.sim.attacks import half_double_experiment

    config = small_test_config(rows_per_bank=4096, flip_threshold=2_000)
    points = run_once(
        benchmark,
        lambda: half_double_experiment(
            config, technique="TWiCe", distance2_rates=(0.0, 0.1, 0.3)
        ),
    )
    print("\n=== distance-2 (Half-Double) coupling sweep, TWiCe ===")
    rows = [
        (f"{point.distance2_rate:g}", str(point.direct_flips),
         str(point.distance2_flips), f"{point.max_disturbance:,}")
        for point in points
    ]
    print(render_table(
        ("coupling", "direct flips", "distance-2 flips", "max disturbance"),
        rows,
    ))
    for point in points:
        benchmark.extra_info[f"{point.distance2_rate:g}"] = point.distance2_flips
    assert points[0].direct_flips == 0 and points[0].distance2_flips == 0
    assert all(point.direct_flips == 0 for point in points)
    assert points[-1].distance2_flips > 0
