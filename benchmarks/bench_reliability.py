"""Section IV reliability claim -- "no active attacks were successful".

Runs the paper's mixed workload (whose attacker would flip bits on an
unprotected device) under all nine techniques and checks that none of
them lets a single victim reach the 139 K disturbance threshold.  Also
reports each technique's worst-case protection margin (how close the
worst victim came to flipping).
"""

from benchmarks.conftest import paper_comparison, run_once
from repro.analysis.report import render_table


def test_reliability_no_attack_succeeds(benchmark, paper_config):
    comparison = run_once(benchmark, lambda: paper_comparison(paper_config))

    print("\n=== reliability: flips and worst protection margins ===")
    rows = []
    for name, aggregate in comparison.items():
        worst = max(result.max_disturbance for result in aggregate.results)
        rows.append(
            (
                name,
                str(aggregate.total_flips),
                f"{worst:,}",
                f"{aggregate.min_protection_margin:.3f}"
                if name != "none"
                else "-",
            )
        )
        benchmark.extra_info[name] = {
            "flips": aggregate.total_flips,
            "worst_disturbance": worst,
        }
    print(render_table(
        ("technique", "flips", "worst disturbance", "margin"), rows
    ))

    # the attack is real: unmitigated, it flips bits
    assert comparison["none"].total_flips > 0
    # with any of the nine techniques, it never does
    for name, aggregate in comparison.items():
        if name == "none":
            continue
        assert aggregate.total_flips == 0, name
        assert aggregate.min_protection_margin > 0.0, name
