"""Ablations of the paper's fixed design points (DESIGN.md section 6).

The paper fixes the history table at 32 entries ("the best optimization
based on the simulated memory traces") and CaPRoMi's counter table at
64 entries (between the average 40 and maximum 165 activations per
refresh interval).  These benches regenerate the tradeoff curves behind
those choices on the paper workload.
"""

from benchmarks.conftest import BENCH_INTERVALS, BENCH_SEEDS, run_once
from repro.analysis.report import render_table
from repro.sim.experiment import default_trace_factory
from repro.sim.sweep import sweep_counter_table, sweep_history_table


def test_ablation_history_table_size(benchmark, paper_config):
    factory = default_trace_factory(paper_config, total_intervals=BENCH_INTERVALS)

    def compute():
        return sweep_history_table(
            paper_config, factory, technique="LoLiPRoMi",
            sizes=(4, 16, 32, 128), seeds=BENCH_SEEDS,
        )

    points = run_once(benchmark, compute)
    print("\n=== history-table size ablation (paper fixes 32 entries) ===")
    rows = [
        (f"{point.value:.0f}", f"{point.overhead_pct:.4f}%",
         f"{point.table_bytes} B", str(point.flips))
        for point in points
    ]
    print(render_table(("entries", "overhead", "table size", "flips"), rows))
    for point in points:
        benchmark.extra_info[str(int(point.value))] = round(point.overhead_pct, 5)
    # protection never depends on the history table (it only avoids
    # repeat refreshes), so no size may flip
    assert all(point.flips == 0 for point in points)
    # a larger table can only remember more mitigations: overhead must
    # not grow significantly with size
    assert points[-1].overhead_pct <= points[0].overhead_pct * 1.25


def test_ablation_capromi_counter_table(benchmark, paper_config):
    factory = default_trace_factory(paper_config, total_intervals=BENCH_INTERVALS)

    def compute():
        return sweep_counter_table(
            paper_config, factory, sizes=(16, 64, 165), seeds=BENCH_SEEDS,
        )

    points = run_once(benchmark, compute)
    print("\n=== CaPRoMi counter-table ablation (paper fixes 64 entries) ===")
    rows = [
        (f"{point.value:.0f}", f"{point.overhead_pct:.4f}%",
         f"{point.table_bytes} B", str(point.flips))
        for point in points
    ]
    print(render_table(("entries", "overhead", "total size", "flips"), rows))
    for point in points:
        benchmark.extra_info[str(int(point.value))] = round(point.overhead_pct, 5)
    assert all(point.flips == 0 for point in points)
    # 64 entries already track every distinct row of a typical interval
    # (average 40): growing to the physical max changes little
    mid, full = points[1], points[2]
    assert abs(full.overhead_pct - mid.overhead_pct) < 0.5 * max(
        mid.overhead_pct, 0.001
    )


def test_ablation_refresh_mapping(benchmark, paper_config):
    """Section IV claim quantified: the sequential-f_r assumption is
    'not required for our technique to be effective' -- exact knowledge
    of a random refresh order saves some overhead, protection is
    unchanged."""
    from repro.dram.refresh import RandomRefresh
    from repro.sim.sweep import refresh_mapping_ablation

    factory = default_trace_factory(paper_config, total_intervals=BENCH_INTERVALS)
    policy_factory = lambda seed: RandomRefresh(paper_config.geometry, seed=0)

    def compute():
        return refresh_mapping_ablation(
            paper_config, factory, policy_factory,
            technique="LiPRoMi", seeds=BENCH_SEEDS,
        )

    assumed, exact = run_once(benchmark, compute)
    print("\n=== assumed vs exact f_r mapping under random refresh ===")
    rows = [
        (assumed.technique, assumed.overhead_cell(), str(assumed.total_flips)),
        (exact.technique, exact.overhead_cell(), str(exact.total_flips)),
    ]
    print(render_table(("mitigation", "overhead", "flips"), rows))
    benchmark.extra_info["assumed_overhead"] = round(assumed.overhead_mean, 5)
    benchmark.extra_info["exact_overhead"] = round(exact.overhead_mean, 5)
    assert assumed.total_flips == 0
    assert exact.total_flips == 0
