"""Table II -- FSM clock cycles per observed act/ref command.

The paper reports, from VHDL implementation at the DDR4 frequency:

    variant      act  ref
    CaPRoMi       50  258
    LoLiPRoMi     36    3
    LoPRoMi       37    3
    LiPRoMi       37    3

against budgets of 54 (act) and 420 (ref) cycles.  Our FSM cycle model
reproduces those numbers exactly; the DDR3 retargeting (Section IV)
also reports the search parallelism each variant needs at 320 MHz.
"""

from benchmarks.conftest import run_once
from repro.analysis.report import render_table2
from repro.config import DDR3_TIMING
from repro.core.timing import budget_check, required_parallelism, table2

PAPER_TABLE2 = {
    "CaPRoMi": {"act": 50, "ref": 258},
    "LoLiPRoMi": {"act": 36, "ref": 3},
    "LoPRoMi": {"act": 37, "ref": 3},
    "LiPRoMi": {"act": 37, "ref": 3},
}


def test_table2_cycle_counts(benchmark, paper_config):
    cycles = run_once(benchmark, lambda: table2(paper_config))
    print("\n=== Table II: FSM cycles per act/ref (paper values in []) ===")
    print(render_table2(paper_config))
    for variant, paper in PAPER_TABLE2.items():
        print(f"  {variant}: act {cycles[variant]['act']} [{paper['act']}], "
              f"ref {cycles[variant]['ref']} [{paper['ref']}]")
        benchmark.extra_info[variant] = cycles[variant]
    assert cycles == PAPER_TABLE2
    assert all(budget_check(paper_config).values())


def test_table2_ddr3_retargeting(benchmark, paper_config):
    def compute():
        return {
            variant: required_parallelism(variant, paper_config, DDR3_TIMING)
            for variant in PAPER_TABLE2
        }

    parallelism = run_once(benchmark, compute)
    print("\n=== DDR3 (320 MHz) search parallelism needed per variant ===")
    for variant, lanes in parallelism.items():
        print(f"  {variant}: {lanes} entries/cycle")
    benchmark.extra_info["parallelism"] = parallelism
    assert all(lanes > 1 for lanes in parallelism.values())
