"""Pbase ablation: the protection/overhead knob (DESIGN.md section 6).

The paper pins ``RefInt * Pbase`` to PARA's effective 0.001.  Scaling
``Pbase`` trades activation overhead against flood reaction time; this
bench regenerates that tradeoff curve for LoLiPRoMi.
"""

from benchmarks.conftest import BENCH_INTERVALS, run_once
from repro.analysis.report import render_table
from repro.sim.experiment import default_trace_factory
from repro.sim.sweep import sweep_pbase


def test_ablation_pbase(benchmark, paper_config):
    factory = default_trace_factory(paper_config, total_intervals=BENCH_INTERVALS)

    def compute():
        return sweep_pbase(
            paper_config, factory, technique="LoLiPRoMi",
            scales=(0.25, 1.0, 4.0), seeds=(0,),
            check_flooding=True, flood_seeds=(0, 1, 2, 3, 4),
        )

    points = run_once(benchmark, compute)
    print("\n=== Pbase ablation for LoLiPRoMi ===")
    rows = []
    for point in points:
        flood = (
            f"{point.flood_median_acts:,.0f}"
            if point.flood_median_acts is not None
            else "no trigger"
        )
        rows.append(
            (f"{point.value:g}x", f"{point.overhead_pct:.4f}%", flood,
             str(point.flips))
        )
        benchmark.extra_info[f"{point.value:g}x"] = {
            "overhead_pct": round(point.overhead_pct, 5),
            "flood_median_acts": point.flood_median_acts,
        }
    print(render_table(
        ("Pbase scale", "overhead", "flood acts to 1st mitigation", "flips"),
        rows,
    ))
    # overhead grows monotonically with Pbase
    assert points[0].overhead_pct <= points[1].overhead_pct <= points[2].overhead_pct
    # stronger Pbase reacts to floods sooner (where both measured)
    strong, weak = points[2], points[0]
    if strong.flood_median_acts and weak.flood_median_acts:
        assert strong.flood_median_acts < weak.flood_median_acts
