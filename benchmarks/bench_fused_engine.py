"""Fused-grid campaign throughput vs per-cell fast-engine runs.

Replays one flooding benchmark trace through the whole nine-technique
campaign grid (plus the unmitigated baseline) twice: once as solo
fast-engine runs per ``(technique, seed, pbase)`` cell -- the PR1
campaign shape -- and once as a single fused grid call that decodes the
trace once and fans it out across every cell.  The acceptance bar is a
>= 5x campaign speedup; per-cell results must be field-for-field
identical, re-asserted here at benchmark scale (the differential tests
pin it at test scale).

Scale with ``REPRO_BENCH_INTERVALS`` / ``REPRO_BENCH_SEEDS`` as usual.
"""

from __future__ import annotations

import time

from benchmarks.conftest import (
    BENCH_INTERVALS,
    BENCH_SEEDS,
    run_once,
    write_bench_output,
)
from repro.analysis.report import render_table
from repro.mitigations.registry import make_factory, technique_names
from repro.sim.fast_engine import run_simulation_fast
from repro.sim.fused_engine import grid_cells, run_simulation_fused, run_simulation_grid
from repro.telemetry import MetricsRegistry, NullTracer
from repro.traces.attacker import AttackSpec
from repro.traces.mixer import build_trace

#: the paper's pbase ablation axis, scaled around the configured value
PBASE_SCALES = (0.5, 1.0, 2.0)
#: one decode+replay of the trace must beat per-cell replays by this much
SPEEDUP_FLOOR = 5.0


def _flooding_trace(config):
    row = config.geometry.rows_per_bank // 2
    acts = config.timing.max_acts_per_interval
    return build_trace(
        config,
        BENCH_INTERVALS,
        attacks=(
            AttackSpec(bank=0, aggressors=(row,), acts_per_interval=acts),
        ),
        seed=3,
        materialize=True,
    )


def test_fused_campaign_speedup(benchmark, paper_config):
    techniques = technique_names() + [None]
    cells = grid_cells(
        techniques, BENCH_SEEDS, pbase_scales=PBASE_SCALES,
        config=paper_config,
    )
    trace = _flooding_trace(paper_config)

    def compute():
        started = time.perf_counter()
        solo = []
        for cell in cells:
            cell_config = cell.config or paper_config
            factory = make_factory(cell.technique) if cell.technique else None
            solo.append(
                run_simulation_fast(cell_config, trace, factory, seed=cell.seed)
            )
        mid = time.perf_counter()
        metrics = MetricsRegistry()
        fused = run_simulation_grid(
            paper_config, trace, cells, metrics=metrics
        )
        ended = time.perf_counter()
        return mid - started, ended - mid, solo, fused, metrics

    fast_s, fused_s, solo, fused, metrics = run_once(benchmark, compute)

    mismatched = [
        cell
        for cell, fast_result, fused_result in zip(cells, solo, fused)
        if fast_result.as_dict() != fused_result.as_dict()
    ]
    assert not mismatched, (
        f"fused grid diverged at benchmark scale for {len(mismatched)} "
        f"cells, first: {mismatched[0]}"
    )

    speedup = fast_s / fused_s
    computed = metrics.counters["fused.cells_computed"].value
    deduped = metrics.counters["fused.cells_deduped"].value
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["cells"] = len(cells)
    benchmark.extra_info["cells_deduped"] = deduped
    report = (
        f"=== fused grid vs per-cell fast engine, flooding trace "
        f"({trace.count():,} records, {BENCH_INTERVALS} intervals) ===\n"
        + render_table(
            ("cells", "computed", "deduped", "fast", "fused", "speedup"),
            [(
                str(len(cells)), str(computed), str(deduped),
                f"{fast_s:.3f}s", f"{fused_s:.3f}s", f"{speedup:.1f}x",
            )],
        )
    )
    print("\n" + report)
    write_bench_output("fused_engine_speedup", report)

    assert speedup >= SPEEDUP_FLOOR, (
        f"fused campaign speedup {speedup:.2f}x < {SPEEDUP_FLOOR}x floor"
    )


#: per-technique fused replay floors for the modern tracker families,
#: in trace records per second.  Local runs clock ~3M rec/s; the floor
#: leaves a ~20x margin for slow CI runners while still catching an
#: accidental de-batching (losing ``observe_run`` costs well over 20x
#: on a flooding trace).
MODERN_THROUGHPUT_FLOORS = {
    "LoadedDice": 150_000,
    "RVC": 150_000,
    "PVAC": 150_000,
    "PRAC": 150_000,
    "PRACtical": 150_000,
    "ProbTracker": 150_000,
}


def test_modern_technique_throughput_floors(benchmark, paper_config):
    """Each modern family must hold its fused-replay throughput floor.

    A solo fused run per technique over the flooding benchmark trace,
    best-of-3 to damp scheduler noise.  The floor is the guard that the
    run-batched ``observe_run`` paths stay wired up: falling back to
    per-record dispatch on a flooding trace costs orders of magnitude.
    """
    trace = _flooding_trace(paper_config)
    records = trace.count()

    def compute():
        rates = {}
        for name in sorted(MODERN_THROUGHPUT_FLOORS):
            best = None
            for _ in range(3):
                started = time.perf_counter()
                run_simulation_fused(
                    paper_config, trace, make_factory(name), seed=0
                )
                elapsed = time.perf_counter() - started
                if best is None or elapsed < best:
                    best = elapsed
            rates[name] = records / best
        return rates

    rates = run_once(benchmark, compute)
    rows = [
        (name, f"{rates[name]:,.0f}", f"{floor:,}")
        for name, floor in sorted(MODERN_THROUGHPUT_FLOORS.items())
    ]
    report = (
        f"=== modern-technique fused replay throughput, flooding trace "
        f"({records:,} records, {BENCH_INTERVALS} intervals) ===\n"
        + render_table(("technique", "records/s", "floor"), rows)
    )
    print("\n" + report)
    write_bench_output("modern_technique_throughput", report)
    for name, floor in MODERN_THROUGHPUT_FLOORS.items():
        benchmark.extra_info[f"{name}_records_per_s"] = round(rates[name])
        assert rates[name] >= floor, (
            f"{name}: {rates[name]:,.0f} records/s < {floor:,} floor"
        )


#: a NullTracer run may be at most this much slower than a plain run
#: (ratio bound, plus an absolute epsilon to absorb timer noise on the
#: reduced CI scale)
NULL_TRACER_OVERHEAD_RATIO = 1.02
NULL_TRACER_OVERHEAD_EPSILON_S = 0.05


def test_fused_null_tracer_overhead(benchmark, paper_config):
    """Disabled telemetry must not regress the fused engine.

    Mirrors the fast-engine guard: ``NullTracer`` collapses to
    ``telemetry=None`` at engine entry, so a single-cell fused run with
    one costs nothing beyond the collapse.  Best-of-3 timings keep the
    comparison robust against scheduler noise.
    """
    trace = _flooding_trace(paper_config)

    def best_of(runs, **kwargs):
        best = None
        for _ in range(runs):
            started = time.perf_counter()
            result = run_simulation_fused(
                paper_config, trace, make_factory("LoLiPRoMi"), seed=3,
                **kwargs,
            )
            elapsed = time.perf_counter() - started
            if best is None or elapsed < best[0]:
                best = (elapsed, result)
        return best

    def compute():
        plain = best_of(3)
        nulled = best_of(3, tracer=NullTracer())
        return plain, nulled

    (plain_s, plain_result), (null_s, null_result) = run_once(
        benchmark, compute
    )
    assert plain_result.as_dict() == null_result.as_dict()
    benchmark.extra_info["overhead_pct"] = round(
        100.0 * (null_s / plain_s - 1.0), 2
    )
    print(f"\nNullTracer overhead (fused): plain={plain_s:.3f}s "
          f"null={null_s:.3f}s ({100.0 * (null_s / plain_s - 1.0):+.2f}%)")
    assert null_s <= plain_s * NULL_TRACER_OVERHEAD_RATIO + \
        NULL_TRACER_OVERHEAD_EPSILON_S, (
        f"NullTracer regressed the fused engine: {plain_s:.3f}s -> "
        f"{null_s:.3f}s"
    )


def test_campaign_disabled_observability_overhead(benchmark, paper_config):
    """Disabled spans + no status bus must not regress ``run_campaign``.

    The observability plane threads span tracers, heartbeats, and
    progress dispatch through every campaign path; this guard (the
    ``NullTracer`` guard's sibling) pins the disabled-path cost: a
    campaign handed a disabled :class:`SpanTracer` and no
    :class:`StatusBus` must run as fast as one with no observability
    arguments at all, and produce identical aggregates.
    """
    from repro.sim.parallel import run_campaign
    from repro.telemetry import SpanTracer

    techniques = ("PARA", "LoLiPRoMi")
    kwargs = dict(
        total_intervals=BENCH_INTERVALS,
        techniques=techniques,
        seeds=tuple(BENCH_SEEDS),
        workers=0,
        engine="fused",
    )

    def best_of(runs, **extra):
        best = None
        for _ in range(runs):
            started = time.perf_counter()
            result = run_campaign(paper_config, **kwargs, **extra)
            elapsed = time.perf_counter() - started
            if best is None or elapsed < best[0]:
                best = (elapsed, result)
        return best

    def compute():
        plain = best_of(3)
        disabled = best_of(3, spans=SpanTracer(enabled=False), status=None)
        return plain, disabled

    (plain_s, plain_result), (off_s, off_result) = run_once(
        benchmark, compute
    )
    for technique in techniques:
        plain_dicts = [r.as_dict() for r in plain_result[technique].results]
        off_dicts = [r.as_dict() for r in off_result[technique].results]
        assert plain_dicts == off_dicts
    benchmark.extra_info["overhead_pct"] = round(
        100.0 * (off_s / plain_s - 1.0), 2
    )
    print(f"\ndisabled-observability overhead (campaign): "
          f"plain={plain_s:.3f}s disabled={off_s:.3f}s "
          f"({100.0 * (off_s / plain_s - 1.0):+.2f}%)")
    assert off_s <= plain_s * NULL_TRACER_OVERHEAD_RATIO + \
        NULL_TRACER_OVERHEAD_EPSILON_S, (
        f"disabled observability regressed run_campaign: {plain_s:.3f}s -> "
        f"{off_s:.3f}s"
    )
