"""Fig. 4 -- table size per bank vs activation overhead (log-log).

The paper's scatter shows the nine techniques spanning six orders of
magnitude in storage and three in overhead, with the TiVaPRoMi variants
on the Pareto frontier between the probabilistic cluster (tiny tables,
~0.1-0.6 % overhead) and the tabled counters (KBs-100KBs, ~0.004 %).

Headline claims checked here:

* TiVaPRoMi tables are 9x-27x smaller than TWiCe's;
* TiVaPRoMi's activation overhead is lower than every probabilistic
  technique's.
"""

from benchmarks.conftest import paper_comparison, run_once
from repro.analysis.area import fig4_points, storage_reduction_vs_twice
from repro.analysis.report import render_fig4
from repro.mitigations.registry import TIVAPROMI_VARIANTS


def test_fig4_tradeoff(benchmark, paper_config):
    def compute():
        comparison = paper_comparison(paper_config)
        overheads = {
            name: aggregate.overhead_mean
            for name, aggregate in comparison.items()
            if name != "none"
        }
        return fig4_points(paper_config, overheads), overheads

    points, overheads = run_once(benchmark, compute)
    print("\n=== Fig. 4: table size vs activation overhead ===")
    print(render_fig4(points))

    # the "very good Pareto-optimal compromise" claim, checked
    from repro.analysis.pareto import classify, from_fig4

    flags = classify(from_fig4(points))
    frontier = sorted(name for name, on in flags.items() if on)
    print(f"\nPareto frontier: {', '.join(frontier)}")
    assert any(flags[v] for v in TIVAPROMI_VARIANTS), flags
    assert not flags["ProHit"]  # dominated inside the probabilistic cluster
    for point in points:
        benchmark.extra_info[str(point["technique"])] = {
            "table_bytes": point["table_bytes"],
            "overhead_pct": round(point["overhead_pct"], 5),
        }

    by_name = {point["technique"]: point for point in points}
    # Pareto position: every variant dominates the probabilistic cluster
    # on overhead while staying within a few hundred bytes
    for variant in TIVAPROMI_VARIANTS:
        assert by_name[variant]["table_bytes"] <= 400
        assert overheads[variant] < overheads["PARA"]
        assert overheads[variant] < overheads["MRLoc"]
        assert overheads[variant] < overheads["ProHit"]
    # the counters pay KBs-100KBs for their overhead advantage
    assert by_name["TWiCe"]["table_bytes"] > 1_000
    assert by_name["CRA"]["table_bytes"] > 50_000
    assert overheads["TWiCe"] < min(overheads[v] for v in TIVAPROMI_VARIANTS)


def test_fig4_storage_reduction_claim(benchmark, paper_config):
    """Abstract: 9x-27x reduced storage requirement vs tabled counters."""
    reductions = run_once(
        benchmark, lambda: storage_reduction_vs_twice(paper_config)
    )
    print("\n=== storage reduction vs TWiCe (paper claims 9x-27x) ===")
    for name, reduction in reductions.items():
        print(f"  {name:<10} {reduction:.1f}x")
        benchmark.extra_info[name] = round(reduction, 1)
    assert 7 < min(reductions.values()) < 12      # CaPRoMi end (~9x)
    assert 20 < max(reductions.values()) < 30     # 120 B variants (~27x)
