"""Adversarial fuzzer throughput against the fast-engine floor.

The red-team search (``repro.adversary``) spends essentially all of
its time inside :func:`evaluate_genome` -- one fast-engine run per
eval seed.  This bench measures end-to-end search throughput
(evaluations/sec) and holds the orchestration cost per evaluation
(mutation, dedup, selection, frontier bookkeeping) to a bounded
multiple of the raw fast-engine evaluation cost, so the fuzzer can
never silently decay to reference-engine speeds.

Runs on ``small_test_config`` deliberately: the search is an inner
loop meant for many short engine runs, and the overhead ratio -- not
the absolute rate -- is the scale-invariant quantity under guard.
Scale with ``REPRO_BENCH_ADVERSARY_BUDGET`` (default 48).
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import run_once, write_bench_output
from repro.adversary import (
    EvalJob,
    SearchSettings,
    evaluate_genome,
    run_search,
    seed_corpus,
)
from repro.analysis.report import render_table
from repro.config import small_test_config
from repro.rng import derive_seed

ADVERSARY_BUDGET = int(os.environ.get("REPRO_BENCH_ADVERSARY_BUDGET", "48"))
#: raw-engine passes over the corpus used to estimate the floor
BASELINE_ROUNDS = 3
#: a search evaluation may cost at most this multiple of a raw one
#: (search genomes can be larger than the corpus seeds, so this bounds
#: genome growth as well as orchestration overhead)
OVERHEAD_RATIO = 4.0
#: absolute slack absorbing timer noise on tiny CI runs
OVERHEAD_EPSILON_S = 0.25


def test_adversary_search_throughput(benchmark):
    config = small_test_config()
    settings = SearchSettings(
        technique="LiPRoMi", strategy="evolve", budget=ADVERSARY_BUDGET,
        eval_seeds=1, windows=2, seed=0,
    )
    total_intervals = config.geometry.refint * settings.windows
    eval_seeds = tuple(
        derive_seed(settings.seed, "adversary-eval", index)
        for index in range(settings.eval_seeds)
    )
    corpus = seed_corpus(config)

    def compute():
        # the floor: corpus genomes straight through the fast engine,
        # exactly as run_search would evaluate them, minus the search
        started = time.perf_counter()
        raw_evals = 0
        for _ in range(BASELINE_ROUNDS):
            for genome in corpus:
                evaluate_genome(EvalJob(
                    config=config,
                    technique="LiPRoMi",
                    genome=genome,
                    total_intervals=total_intervals,
                    seeds=eval_seeds,
                    engine=settings.engine,
                ))
                raw_evals += 1
        raw_seconds = time.perf_counter() - started

        started = time.perf_counter()
        outcome = run_search(config, settings)
        search_seconds = time.perf_counter() - started
        return raw_evals, raw_seconds, outcome, search_seconds

    raw_evals, raw_seconds, outcome, search_seconds = run_once(
        benchmark, compute
    )
    assert outcome.evaluations == ADVERSARY_BUDGET

    raw_rate = raw_evals / raw_seconds
    search_rate = outcome.evaluations / search_seconds
    benchmark.extra_info["raw_evals_per_s"] = round(raw_rate, 1)
    benchmark.extra_info["search_evals_per_s"] = round(search_rate, 1)
    report = (
        "=== adversary search throughput vs raw fast-engine floor ===\n"
        + render_table(
            ("path", "evaluations", "seconds", "evals/s"),
            [
                ("raw evaluate_genome", str(raw_evals),
                 f"{raw_seconds:.3f}", f"{raw_rate:.1f}"),
                (f"run_search ({settings.strategy})",
                 str(outcome.evaluations), f"{search_seconds:.3f}",
                 f"{search_rate:.1f}"),
            ],
        )
        + f"\nbest discovered: {outcome.best.genome.name} "
        f"(improvement {outcome.improvement:.2f}x over the corpus)"
    )
    print("\n" + report)
    write_bench_output("adversary_throughput", report)

    per_eval_raw = raw_seconds / raw_evals
    per_eval_search = search_seconds / outcome.evaluations
    budget_s = (
        per_eval_raw * OVERHEAD_RATIO * outcome.evaluations
        + OVERHEAD_EPSILON_S
    )
    assert search_seconds <= budget_s, (
        f"search evaluation costs {per_eval_search * 1e3:.2f} ms vs "
        f"{per_eval_raw * 1e3:.2f} ms raw -- over the "
        f"{OVERHEAD_RATIO}x floor"
    )
