"""Shared benchmark infrastructure.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md section 4) and prints the reproduced rows.  Scale knobs:

* ``REPRO_BENCH_INTERVALS`` -- refresh intervals per simulation run
  (default 2048; the paper's full refresh window is 8192, its whole
  campaign 1.56 M);
* ``REPRO_BENCH_SEEDS`` -- seeds per technique (default 2).

Rates and ratios (overhead %, FPR %) are scale-invariant, so reduced
runs reproduce the paper's *shape*; raise the knobs to tighten the
estimates.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict

import pytest

from repro.config import SimConfig
from repro.sim.experiment import (
    TechniqueAggregate,
    compare_techniques,
    default_trace_factory,
)

BENCH_INTERVALS = int(os.environ.get("REPRO_BENCH_INTERVALS", "2048"))
BENCH_SEEDS = tuple(range(int(os.environ.get("REPRO_BENCH_SEEDS", "2"))))

_comparison_cache: Dict[str, Dict[str, TechniqueAggregate]] = {}


def paper_comparison(config: SimConfig) -> Dict[str, TechniqueAggregate]:
    """All nine techniques + unmitigated on the paper workload (cached
    across benchmarks so Table III, Fig. 4 and the reliability bench
    share one simulation campaign, exactly as the paper evaluates)."""
    key = f"{BENCH_INTERVALS}-{BENCH_SEEDS}"
    if key not in _comparison_cache:
        factory = default_trace_factory(config, total_intervals=BENCH_INTERVALS)
        _comparison_cache[key] = compare_techniques(
            config, factory, seeds=BENCH_SEEDS, include_unmitigated=True
        )
    return _comparison_cache[key]


@pytest.fixture(scope="session")
def paper_config() -> SimConfig:
    return SimConfig()


def run_once(benchmark, function):
    """Run *function* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, rounds=1, iterations=1)


#: benchmark text output directory (gitignored)
BENCH_OUT_DIR = Path(__file__).resolve().parent / "out"
# Created at import time as well: some benchmarks shell-redirect into this
# directory before ``write_bench_output`` ever runs.
BENCH_OUT_DIR.mkdir(parents=True, exist_ok=True)


def write_bench_output(name: str, text: str) -> Path:
    """Persist a benchmark's printed report under ``benchmarks/out/``.

    Keeps rendered tables out of the repo root (they used to end up
    there via shell redirects) and gives CI a stable artifact path.
    """
    BENCH_OUT_DIR.mkdir(parents=True, exist_ok=True)
    target = BENCH_OUT_DIR / f"{name}.txt"
    target.write_text(text + ("\n" if not text.endswith("\n") else ""),
                      encoding="utf-8")
    return target
