"""Section IV flooding experiment -- activations to first mitigation.

The paper floods one row and reports the first mitigating activation:
LoPRoMi/LoLiPRoMi within ~10 K activations, CaPRoMi ~15 K, LiPRoMi only
around ~40 K -- all below the 69 K safety margin (half the 139 K
threshold), but LiPRoMi's late reaction is its documented weakness.

The reaction time depends on the flooded row's starting weight (the
paper does not pin it; see EXPERIMENTS.md).  We report the weight-aware
worst case (start weight 0) and a blind mid-window flood, and assert
the ordering and safety-margin claims.
"""

from benchmarks.conftest import run_once
from repro.analysis.report import render_flooding
from repro.config import HALF_FLIP_THRESHOLD
from repro.mitigations.registry import TIVAPROMI_VARIANTS
from repro.sim.attacks import flooding_experiment

SEEDS = tuple(range(9))


def test_flooding_worst_phase(benchmark, paper_config):
    def compute():
        return {
            technique: flooding_experiment(
                paper_config, technique, start_weight=0, seeds=SEEDS,
                max_windows=2,
            )
            for technique in TIVAPROMI_VARIANTS
        }

    outcomes = run_once(benchmark, compute)
    print("\n=== flooding, weight-aware worst phase (start weight 0) ===")
    print("paper reports: Lo/LoLi ~10K, Ca ~15K, Li ~40K activations")
    print(render_flooding(list(outcomes.values())))
    for technique, outcome in outcomes.items():
        benchmark.extra_info[technique] = outcome.median_acts

    li = outcomes["LiPRoMi"].median_acts
    assert li is not None
    # LiPRoMi is the slowest to react: the Section III-A vulnerability
    for other in ("LoPRoMi", "LoLiPRoMi", "CaPRoMi"):
        median = outcomes[other].median_acts
        assert median is not None, other
        assert median < li, other
    # the log-weighted variants stay within the 69 K safety margin
    assert outcomes["LoLiPRoMi"].median_acts < HALF_FLIP_THRESHOLD
    assert outcomes["CaPRoMi"].median_acts < HALF_FLIP_THRESHOLD


def test_flooding_blind_mid_window(benchmark, paper_config):
    def compute():
        return {
            technique: flooding_experiment(
                paper_config, technique, start_weight=4096, seeds=SEEDS[:5],
            )
            for technique in TIVAPROMI_VARIANTS
        }

    outcomes = run_once(benchmark, compute)
    print("\n=== flooding, blind mid-window start (weight 4096) ===")
    print(render_flooding(list(outcomes.values())))
    for technique, outcome in outcomes.items():
        benchmark.extra_info[technique] = outcome.median_acts
        # a mid-window flood runs at ~PARA-level probability: caught fast
        assert outcome.median_acts is not None, technique
        assert outcome.median_acts < 10_000, technique
