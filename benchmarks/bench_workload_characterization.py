"""Table I workload aggregates -- validating the gem5 substitution.

The paper characterises its trace by a handful of aggregates: an
average of ~40 activations per refresh interval per bank against the
physical maximum of 165, an attacker ramping from 1 to 20 aggressors
per targeted bank, and an attacker share consistent with PARA's
overhead/FPR split (~38 %).  This bench characterises both trace
sources of the reproduction:

* the direct synthetic mixer (`repro.traces.mixer`), used by all other
  benchmarks, and
* the full cpu+cache+scheduler pipeline (`repro.cpu` +
  `repro.controller.scheduler`), whose DRAM behaviour *emerges* from
  the cache hierarchy and whose command stream is checked against the
  DDR4 timing rules.
"""

from benchmarks.conftest import run_once
from repro.analysis.report import render_table
from repro.analysis.trace_stats import characterize
from repro.controller import CommandTimingChecker, schedule_system_trace
from repro.cpu import (
    DRAMAddressLayout,
    HammerKernel,
    MultiCoreSystem,
    pick_aggressor_rows,
    spec_mixed_load,
)
from repro.traces.mixer import paper_mixed_workload


def _print_stats(title, stats):
    print(f"\n=== {title} ===")
    print(render_table(("statistic", "value"), stats.summary_rows()))


def test_mixer_workload_characterization(benchmark, paper_config):
    def compute():
        trace = paper_mixed_workload(
            paper_config, total_intervals=1024, seed=0
        )
        return characterize(trace)

    stats = run_once(benchmark, compute)
    _print_stats("synthetic mixer workload (per-bank buckets)", stats)
    benchmark.extra_info["acts_per_interval_mean"] = round(
        stats.acts_per_interval_mean, 1
    )
    benchmark.extra_info["attack_fraction"] = round(stats.attack_fraction, 3)
    # the paper's regime: tens of activations per interval on average,
    # never exceeding the physical cap
    assert 15 < stats.acts_per_interval_mean < 80
    assert stats.acts_per_interval_max <= paper_config.timing.max_acts_per_interval
    # the ramp reaches 20 aggressors on the targeted bank
    assert stats.aggressors_per_bank[0] == 20
    # the attacker share sits in the band implied by PARA's FPR split
    assert 0.3 < stats.attack_fraction < 0.7


def test_full_pipeline_characterization(benchmark, paper_config):
    def compute():
        layout = DRAMAddressLayout(paper_config.geometry)
        workloads = spec_mixed_load(region_size_per_core=1 << 23, seed=0)
        kernel = HammerKernel(
            layout, bank=0,
            aggressor_rows=pick_aggressor_rows(layout, 30_000, sided=2),
        )
        system = MultiCoreSystem(paper_config, workloads, attacker=kernel)
        trace = schedule_system_trace(system, total_intervals=128)
        trace.materialize()
        stats = characterize(trace)
        checker = CommandTimingChecker(paper_config.geometry.num_banks)
        violations = checker.check(
            [(record.time_ns, record.bank) for record in trace.records]
        )
        return stats, violations, trace.scheduler

    stats, violations, scheduler = run_once(benchmark, compute)
    _print_stats("cpu + caches + FR-FCFS pipeline", stats)
    print(f"DDR4 command-timing violations: {len(violations)}")
    print(f"row-buffer hit rate at the scheduler: "
          f"{scheduler.row_hit_rate:.1%}")
    benchmark.extra_info["acts_per_interval_mean"] = round(
        stats.acts_per_interval_mean, 1
    )
    assert violations == []
    assert stats.total_activations > 0
    assert stats.attack_activations > 0
    # the clflush kernel's aggressor pair is visible in the trace
    assert stats.aggressors_per_bank[0] == 2
