"""Section IV refresh-policy robustness experiment.

TiVaPRoMi's Eq. 1 assumes refresh interval ``i`` restores rows
``i*RowsPI .. (i+1)*RowsPI - 1``.  The paper validates the technique
under four policies -- (i) sequential neighbours, (ii) neighbours with
defective-row remapping, (iii) fully random, (iv) counter + mask -- and
reports "no significant change in the performance of TiVaPRoMi".

This bench reruns LoLiPRoMi (and CaPRoMi) under all four policies on
the same traces and checks overhead stability and protection.
"""

from benchmarks.conftest import BENCH_INTERVALS, BENCH_SEEDS, run_once
from repro.analysis.report import render_table
from repro.dram.refresh import all_policies
from repro.sim.experiment import default_trace_factory, run_technique


def _run_policy_matrix(paper_config, technique):
    factory = default_trace_factory(paper_config, total_intervals=BENCH_INTERVALS)
    outcomes = {}
    for policy in all_policies(paper_config.geometry, seed=0):
        outcomes[policy.name] = run_technique(
            paper_config,
            technique,
            factory,
            seeds=BENCH_SEEDS,
            policy_factory=lambda seed, p=policy: p,
        )
    return outcomes


def test_refresh_policies_lolipromi(benchmark, paper_config):
    outcomes = run_once(
        benchmark, lambda: _run_policy_matrix(paper_config, "LoLiPRoMi")
    )
    print("\n=== LoLiPRoMi under the four refresh policies ===")
    print("(overhead is policy-independent by construction: the policy only")
    print(" changes which rows the device restores; protection margin varies)")
    rows = [
        (name, aggregate.overhead_cell(), f"{aggregate.fpr_mean:.4f}%",
         str(aggregate.total_flips),
         f"{aggregate.min_protection_margin:.3f}")
        for name, aggregate in outcomes.items()
    ]
    print(render_table(("policy", "overhead", "FPR", "flips", "margin"), rows))
    overheads = [aggregate.overhead_mean for aggregate in outcomes.values()]
    for name, aggregate in outcomes.items():
        benchmark.extra_info[name] = round(aggregate.overhead_mean, 5)
    # protection holds under every policy
    assert all(aggregate.total_flips == 0 for aggregate in outcomes.values())
    # "no significant change": the spread stays within the mean
    assert max(overheads) - min(overheads) < max(overheads)


def test_refresh_policies_capromi(benchmark, paper_config):
    outcomes = run_once(
        benchmark, lambda: _run_policy_matrix(paper_config, "CaPRoMi")
    )
    print("\n=== CaPRoMi under the four refresh policies ===")
    rows = [
        (name, aggregate.overhead_cell(), str(aggregate.total_flips))
        for name, aggregate in outcomes.items()
    ]
    print(render_table(("policy", "overhead", "flips"), rows))
    overheads = [aggregate.overhead_mean for aggregate in outcomes.values()]
    assert all(aggregate.total_flips == 0 for aggregate in outcomes.values())
    assert max(overheads) - min(overheads) < max(overheads)
