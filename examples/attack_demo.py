#!/usr/bin/env python3
"""Anatomy of a Row-Hammer attack and its mitigation.

Launches a pure double-sided attack against one victim row and shows
the victim's disturbance counter over time -- first on an unprotected
device (the counter marches to the flip threshold), then under every
TiVaPRoMi variant (mitigating ``act_n`` refreshes keep resetting it).

Run:  python examples/attack_demo.py
"""

import argparse

from repro import SimConfig, run_simulation
from repro.mitigations import TIVAPROMI_VARIANTS, make_factory
from repro.traces import build_trace, double_sided


def sparkline(samples, width=60):
    """Render a disturbance timeline as a unicode sparkline."""
    if not samples:
        return ""
    blocks = " .:-=+*#%@"
    top = max(samples) or 1
    step = max(1, len(samples) // width)
    picked = samples[::step][:width]
    return "".join(blocks[min(int(v / top * (len(blocks) - 1)), 9)] for v in picked)


def run_with_probe(config, trace, factory, victim, seed=0):
    """Run the simulation, sampling the victim's disturbance per interval."""
    from repro.controller.controller import MemoryController

    controller = MemoryController(
        config=config, mitigation_factory=factory, seed=seed
    )
    samples = []
    interval_ns = int(config.timing.refresh_interval_ns)
    current = -1
    for record in trace:
        while current < record.time_ns // interval_ns:
            current += 1
            controller.refresh_tick()
            samples.append(
                controller.device.banks[0].disturbance.disturbance(victim)
            )
        controller.activate(record.bank, record.row, record.time_ns,
                            record.is_attack)
    controller.finish()
    return samples, controller


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--intervals", type=int, default=2048)
    parser.add_argument("--rate", type=int, default=140,
                        help="attacker activations per refresh interval")
    args = parser.parse_args()

    config = SimConfig()
    victim = 3 * config.geometry.rows_per_bank // 4
    attack = double_sided(
        config.geometry, bank=0, victim=victim, acts_per_interval=args.rate
    )
    print(f"double-sided attack: aggressors {attack.aggressors} hammer "
          f"victim {victim} at {args.rate} acts/interval "
          f"(flip threshold {config.flip_threshold:,})\n")

    make_trace = lambda: build_trace(
        config, total_intervals=args.intervals, attacks=[attack], seed=0
    )

    samples, controller = run_with_probe(config, make_trace(), None, victim)
    flips = len(controller.device.flips)
    print(f"{'unprotected':<12} peak {max(samples):>7,}  flips {flips}")
    print(f"  {sparkline(samples)}\n")

    for name in TIVAPROMI_VARIANTS:
        samples, controller = run_with_probe(
            config, make_trace(), make_factory(name), victim
        )
        flips = len(controller.device.flips)
        extras = controller.extra_activations
        print(f"{name:<12} peak {max(samples):>7,}  flips {flips}  "
              f"extra acts {extras}")
        print(f"  {sparkline(samples)}")

    print("\nEach sawtooth reset is a mitigating act_n; the unprotected "
          "run climbs monotonically to the threshold.")


if __name__ == "__main__":
    main()
