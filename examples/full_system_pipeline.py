#!/usr/bin/env python3
"""The full gem5-substitute pipeline, end to end.

Reproduces the paper's evaluation flow without injecting DRAM
activations directly:

    4 cores (SPEC archetypes) + attacker core with clflush hammering
      -> per-core 64 KB L1 / 256 KB L2 caches (Table I)
      -> DRAM requests
      -> FR-FCFS scheduler under DDR4 command timing (tRC 45 ns,
         tRFC 350 ns, tFAW, tRRD)
      -> timing-legal activation trace
      -> Row-Hammer mitigation simulation

Run:  python examples/full_system_pipeline.py [--intervals N]
"""

import argparse

from repro import SimConfig, run_simulation
from repro.controller import CommandTimingChecker, schedule_system_trace
from repro.cpu import (
    DRAMAddressLayout,
    HammerKernel,
    MultiCoreSystem,
    pick_aggressor_rows,
    spec_mixed_load,
)
from repro.mitigations import make_factory


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--intervals", type=int, default=256)
    parser.add_argument("--victim-row", type=int, default=30_000)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    config = SimConfig()
    layout = DRAMAddressLayout(config.geometry)
    workloads = spec_mixed_load(region_size_per_core=1 << 23, seed=args.seed)
    aggressors = pick_aggressor_rows(layout, args.victim_row, sided=2)
    attacker = HammerKernel(layout, bank=0, aggressor_rows=aggressors)
    system = MultiCoreSystem(config, workloads, attacker=attacker)

    print(f"cores: {[w.name for w in workloads]} + clflush hammer "
          f"on rows {aggressors} (victim {args.victim_row})")
    trace = schedule_system_trace(system, total_intervals=args.intervals)
    trace.materialize()

    checker = CommandTimingChecker(config.geometry.num_banks)
    violations = checker.check([(r.time_ns, r.bank) for r in trace.records])
    attack_acts = sum(1 for record in trace if record.is_attack)
    print(f"scheduled {trace.count():,} activations over {args.intervals} "
          f"intervals ({trace.count()/args.intervals:.0f}/interval; "
          f"{attack_acts:,} by the attacker)")
    print(f"DDR4 command-timing violations: {len(violations)}")

    for core in system.cores:
        label = "attacker" if core.is_attacker else core.workload.name
        l1 = core.hierarchy.l1.stats
        print(f"  core {label:<16} L1 hit rate {l1.hit_rate:6.1%} "
              f"({l1.accesses:,} accesses)")

    print()
    for technique in (None, "PARA", "LoLiPRoMi", "CaPRoMi"):
        factory = make_factory(technique) if technique else None
        result = run_simulation(config, trace, factory, seed=args.seed)
        label = technique or "no mitigation"
        print(f"{label:<14} overhead {result.overhead_pct:7.4f}%   "
              f"worst disturbance {result.max_disturbance:>7,}   "
              f"flips {len(result.flips)}")


if __name__ == "__main__":
    main()
