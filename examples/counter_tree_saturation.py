#!/usr/bin/env python3
"""Defeating tree counters by saturation (Section II, [13]).

Section II of the paper explains why adaptive trees of counters [16]
are not a safe alternative to TWiCe: "an attacker might fill all the
levels of the tree to make it balanced and saturated before it reaches
the levels where it would track the aggressor rows precisely."

This example runs that attack against our
:class:`~repro.mitigations.counter_tree.CounterTree` implementation:
the same double-sided hammer, once alone and once with decoy rows that
burn the node budget, and shows how coarse the tree stays over the real
aggressor.

Run:  python examples/counter_tree_saturation.py
"""

import argparse

from repro.config import small_test_config
from repro.sim.attacks import tree_saturation_experiment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--node-budgets", type=int, nargs="+",
                        default=[16, 64, 256, 1024])
    parser.add_argument("--decoy-rows", type=int, default=96)
    args = parser.parse_args()

    config = small_test_config(rows_per_bank=4096, flip_threshold=40_000)
    print(f"double-sided hammer + {args.decoy_rows} decoy rows vs the "
          "adaptive counter tree\n")
    print(f"{'budget':>7} {'finest (alone)':>15} {'finest (decoys)':>16} "
          f"{'coarse triggers':>16} {'extra acts':>11}")
    for budget in args.node_budgets:
        outcome = tree_saturation_experiment(
            config, node_budget=budget, decoy_rows=args.decoy_rows
        )
        print(f"{budget:>7} {outcome.focused_finest:>15} "
              f"{outcome.saturated_finest:>16} "
              f"{outcome.saturated_coarse_triggers:>16} "
              f"{outcome.saturated_extra_acts:>11}")

    print("\nSmall trees stay coarse under the decoys (saturation works) "
          "and pay for it with whole-range refresh bursts; only a large "
          "node budget -- the ~1 KB/bank the literature demands [10] -- "
          "isolates the aggressor either way.")


if __name__ == "__main__":
    main()
