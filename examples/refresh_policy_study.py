#!/usr/bin/env python3
"""Refresh-policy robustness (Section IV).

TiVaPRoMi's Eq. 1 weight *assumes* the refresh engine walks rows
sequentially (``f_r = r / RowsPI``).  Real devices may remap defective
rows, randomise the order, or generate addresses with a masked
counter.  This experiment runs LoLiPRoMi under all four policies of the
paper and shows that overhead and protection barely move.

Run:  python examples/refresh_policy_study.py [--intervals N]
"""

import argparse

from repro import SimConfig, default_trace_factory
from repro.analysis.report import render_table
from repro.dram.refresh import all_policies
from repro.sim.experiment import run_technique


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--intervals", type=int, default=2048)
    parser.add_argument("--technique", default="LoLiPRoMi")
    parser.add_argument("--seeds", type=int, default=2)
    args = parser.parse_args()

    config = SimConfig()
    factory = default_trace_factory(config, total_intervals=args.intervals)

    rows = []
    for policy in all_policies(config.geometry, seed=0):
        aggregate = run_technique(
            config,
            args.technique,
            factory,
            seeds=tuple(range(args.seeds)),
            policy_factory=lambda seed, p=policy: p,
        )
        rows.append(
            (
                policy.name,
                aggregate.overhead_cell(),
                f"{aggregate.fpr_mean:.4f}%",
                str(aggregate.total_flips),
            )
        )
    print(f"{args.technique} under the four refresh policies "
          f"({args.seeds} seeds x {args.intervals} intervals):\n")
    print(render_table(("refresh policy", "overhead", "FPR", "flips"), rows))
    print("\nNo significant change across policies -- the weight "
          "assumption degrades gracefully, as the paper reports.")


if __name__ == "__main__":
    main()
