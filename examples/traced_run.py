#!/usr/bin/env python3
"""Trace a LoLiPRoMi run to JSONL and summarise the event stream.

Runs the paper's mixed workload under LoLiPRoMi on the fast engine with
a ``JsonlTracer`` attached, then reads the trace back and prints a
per-kind event count table plus the trigger-weight distribution — no
pandas needed, the events are plain one-line JSON objects.

Run:  python examples/traced_run.py [--intervals N] [--out events.jsonl]
"""

import argparse
import tempfile
from collections import Counter
from pathlib import Path

from repro import SimConfig, paper_mixed_workload
from repro.mitigations import make_factory
from repro.sim.fast_engine import run_simulation_fast
from repro.telemetry import JsonlTracer, MetricsRegistry, read_jsonl_events


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--intervals",
        type=int,
        default=512,
        help="refresh intervals to simulate",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="where to write the JSONL trace (default: a temp file)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    out = args.out or Path(tempfile.mkdtemp()) / "events.jsonl"

    config = SimConfig()
    trace = paper_mixed_workload(
        config, total_intervals=args.intervals, seed=args.seed
    ).materialize()

    metrics = MetricsRegistry()
    with JsonlTracer(str(out)) as tracer:
        result = run_simulation_fast(
            config,
            trace,
            make_factory("LoLiPRoMi"),
            seed=args.seed,
            tracer=tracer,
            metrics=metrics,
        )

    print(f"LoLiPRoMi over {args.intervals} intervals: "
          f"{result.mitigation_triggers} triggers, "
          f"{result.extra_activations} extra activations "
          f"({result.overhead_pct:.4f}%), {len(result.flips)} bit flips")
    print(f"trace: {tracer.events_written} events -> {out}\n")

    events = read_jsonl_events(str(out))
    kinds = Counter(event["kind"] for event in events)
    print("event counts by kind")
    for kind, count in kinds.most_common():
        print(f"  {kind:<20} {count:>8,}")

    weights = metrics.histograms["trigger_weight"]
    labels = (
        [f"<= {weights.bounds[0]:g}"]
        + [f"({low:g}, {high:g}]"
           for low, high in zip(weights.bounds, weights.bounds[1:])]
        + [f"> {weights.bounds[-1]:g}"]
    )
    print("\ntrigger-weight distribution (Eq. 1/2 weight when a trigger fired)")
    for label, count in zip(labels, weights.counts):
        if count:
            print(f"  w {label:<16} {count:>6,}")

    # a quick sanity check the reader can repeat with jq:
    #   jq -s 'map(select(.kind=="trigger")) | length' events.jsonl
    assert kinds["trigger"] == result.mitigation_triggers
    print(f"\ntrigger events match the SimResult total "
          f"({result.mitigation_triggers}) -- telemetry observes, never decides.")


if __name__ == "__main__":
    main()
