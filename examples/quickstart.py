#!/usr/bin/env python3
"""Quickstart: protect a DRAM bank with TiVaPRoMi in ~20 lines.

Builds the paper's mixed workload (SPEC-like benign load plus a ramping
Row-Hammer attacker) at a reduced scale, then runs it three ways:
unprotected, with classic PARA, and with LoLiPRoMi (the paper's
best-for-area variant).

Run:  python examples/quickstart.py [--intervals N]
"""

import argparse

from repro import SimConfig, paper_mixed_workload, run_simulation
from repro.mitigations import make_factory


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--intervals",
        type=int,
        default=1024,
        help="refresh intervals to simulate (8192 = one full 64 ms window)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    config = SimConfig()  # the exact Table I system
    print(f"DDR4 device: {config.geometry.num_banks} banks x "
          f"{config.geometry.rows_per_bank} rows, RefInt = {config.geometry.refint}")

    trace = paper_mixed_workload(
        config, total_intervals=args.intervals, seed=args.seed
    ).materialize()
    print(f"workload: {trace.count():,} activations over "
          f"{args.intervals} refresh intervals\n")

    for technique in (None, "PARA", "LoLiPRoMi"):
        factory = make_factory(technique) if technique else None
        result = run_simulation(config, trace, factory, seed=args.seed)
        label = technique or "no mitigation"
        flips = len(result.flips)
        print(f"{label:<14} extra activations: {result.extra_activations:>6} "
              f"({result.overhead_pct:.4f}%)   bit flips: {flips}   "
              f"worst disturbance: {result.max_disturbance:,}/{config.flip_threshold:,}")

    print("\nLoLiPRoMi reaches flip-free protection at a fraction of "
          "PARA's extra activations, with a 120 B table per bank.")


if __name__ == "__main__":
    main()
