#!/usr/bin/env python3
"""The Section IV flooding experiment: time to first mitigation.

An attacker floods a single row at the maximum DDR4 rate.  How many
activations pass before each TiVaPRoMi variant issues its first
mitigating refresh?  The answer depends on the row's *starting weight*
(how many refresh intervals before the flood the row was last
refreshed):

* ``start_weight = 0`` is the worst case -- the weight-aware attacker
  of Section III-A picks a row that was just refreshed, which is the
  scenario where LiPRoMi reacts only after ~40 K activations;
* larger starting weights model blind floods; the time-varying
  probability is already high, so the flood is caught quickly.

Run:  python examples/flooding_attack.py
"""

import argparse

from repro import SimConfig, flooding_experiment
from repro.analysis.report import render_flooding
from repro.config import HALF_FLIP_THRESHOLD
from repro.mitigations import TIVAPROMI_VARIANTS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=5)
    parser.add_argument(
        "--start-weights", type=int, nargs="+", default=[0, 384, 4096]
    )
    args = parser.parse_args()

    config = SimConfig()
    print(f"flooding one row at {config.timing.max_acts_per_interval} "
          f"acts/interval; safety margin {HALF_FLIP_THRESHOLD:,} activations "
          "(half the flip threshold)\n")

    outcomes = []
    for start_weight in args.start_weights:
        for technique in TIVAPROMI_VARIANTS:
            outcomes.append(
                flooding_experiment(
                    config,
                    technique,
                    start_weight=start_weight,
                    seeds=tuple(range(args.seeds)),
                )
            )
    print(render_flooding(outcomes))

    print("\nReading the table: at start weight 0 (weight-aware attacker) "
          "LiPRoMi is the slowest to react -- its documented weakness; "
          "the log-weighted variants close most of that window, and at "
          "realistic mid-window weights every variant reacts within a "
          "few thousand activations.")


if __name__ == "__main__":
    main()
