#!/usr/bin/env python3
"""Software-level detection vs hardware mitigation (Section II).

Why does the paper insist on a *hardware* mitigation?  Section II:
software detectors need "the length of several refresh windows" to
confirm an attack, "and until then, bit flipping might already start in
the victim row."

This example races an ANVIL-class sampling detector against LoLiPRoMi
under the same sustained double-sided attack and prints the timeline:
when flips landed, when the detector confirmed the aggressors, and what
the hardware mitigation did in the meantime.

Run:  python examples/software_vs_hardware.py
"""

import argparse

from repro.config import small_test_config
from repro.sim.attacks import software_detection_experiment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--windows", type=int, default=4)
    parser.add_argument("--rate", type=int, default=120,
                        help="attacker activations per refresh interval")
    parser.add_argument("--hardware", default="LoLiPRoMi")
    args = parser.parse_args()

    config = small_test_config(rows_per_bank=4096, flip_threshold=30_000)
    print(f"sustained double-sided attack at {args.rate} acts/interval "
          f"over {args.windows} refresh windows "
          f"(scaled flip threshold {config.flip_threshold:,})\n")

    outcome = software_detection_experiment(
        config,
        windows=args.windows,
        rate=args.rate,
        hardware_technique=args.hardware,
    )

    if outcome.detected:
        print(f"software detector: confirmed the aggressors after "
              f"{outcome.latency_windows} refresh window(s)")
    else:
        print("software detector: never confirmed the attack")
    print(f"  bit flips BEFORE detection : {outcome.software_flips_before_detection}")
    print(f"  bit flips AFTER quarantine : {outcome.software_flips_after_detection}")
    print(f"\n{args.hardware} (hardware, reacts within the window):")
    print(f"  bit flips                  : {outcome.hardware_flips}")

    print("\nThe detector does stop the attack once confirmed -- but the "
          "damage is done during its confirmation latency, which is the "
          "paper's argument for mitigating at the memory controller.")


if __name__ == "__main__":
    main()
