#!/usr/bin/env python3
"""Compare all nine mitigation techniques on the paper's workload.

Regenerates a reduced-scale version of the paper's central comparison:
activation overhead, false-positive rate, reliability, table size and
estimated LUTs for PARA, ProHit, MRLoc, TWiCe, CRA and the four
TiVaPRoMi variants, on identical traces (paired seeds).

Run:  python examples/compare_mitigations.py [--intervals N] [--seeds K]
"""

import argparse

from repro import SimConfig, compare_techniques, default_trace_factory
from repro.analysis.area import fig4_points, table3_resources
from repro.analysis.report import render_fig4, render_table, render_table3


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--intervals", type=int, default=2048,
                        help="refresh intervals per run (8192 = full window)")
    parser.add_argument("--seeds", type=int, default=2)
    args = parser.parse_args()

    config = SimConfig()
    factory = default_trace_factory(config, total_intervals=args.intervals)
    print(f"running 9 techniques + unmitigated baseline, "
          f"{args.seeds} seeds x {args.intervals} intervals ...\n")
    comparison = compare_techniques(
        config, factory, seeds=tuple(range(args.seeds)), include_unmitigated=True
    )

    unmitigated = comparison.pop("none")
    print(f"unmitigated baseline: {unmitigated.total_flips} bit flip(s) -- "
          "the attack works\n")

    print("=== Table III (reproduced) ===")
    print(render_table3(config, comparison, table3_resources(config)))

    print("\n=== Fig. 4: table size vs activation overhead ===")
    overheads = {
        name: aggregate.overhead_mean for name, aggregate in comparison.items()
    }
    print(render_fig4(fig4_points(config, overheads)))

    print("\n=== reliability ===")
    rows = [
        (name, "PROTECTED" if aggregate.total_flips == 0 else "FLIPPED",
         f"{aggregate.min_protection_margin:.2f}")
        for name, aggregate in comparison.items()
    ]
    print(render_table(("technique", "verdict", "worst margin"), rows))


if __name__ == "__main__":
    main()
