#!/usr/bin/env python3
"""Run the full Table III campaign on all CPU cores.

The comparison campaign -- nine techniques x several seeds on identical
traces -- is embarrassingly parallel; ``repro.sim.parallel`` spreads the
(technique, seed) grid over a process pool.  Use this to regenerate
Table III at full 8192-interval windows in a fraction of the
single-process time.

Run:  python examples/parallel_campaign.py [--intervals N] [--workers W]
"""

import argparse
import time

from repro import SimConfig
from repro.analysis.report import render_comparison
from repro.sim.parallel import run_campaign


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--intervals", type=int, default=2048)
    parser.add_argument("--seeds", type=int, default=2)
    parser.add_argument("--workers", type=int, default=None,
                        help="process count (default: all cores)")
    parser.add_argument("--techniques", nargs="+", default=None)
    args = parser.parse_args()

    config = SimConfig()
    started = time.perf_counter()
    aggregates = run_campaign(
        config,
        total_intervals=args.intervals,
        techniques=args.techniques,
        seeds=tuple(range(args.seeds)),
        include_unmitigated=True,
        workers=args.workers,
    )
    elapsed = time.perf_counter() - started

    unmitigated = aggregates.pop("none")
    print(f"unmitigated flips: {unmitigated.total_flips}\n")
    print(render_comparison(aggregates))
    runs = (len(aggregates) + 1) * args.seeds
    print(f"\n{runs} simulation runs in {elapsed:.1f}s "
          f"({args.workers or 'all'} workers)")


if __name__ == "__main__":
    main()
