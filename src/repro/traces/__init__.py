"""Trace substrate: records, synthetic workloads, attacks, mixing, I/O."""

from repro.traces.attacker import (
    AttackSpec,
    double_sided,
    flooding,
    n_aggressor,
    ramped_multi_aggressor,
    single_sided,
)
from repro.traces.mixer import build_trace, paper_mixed_workload
from repro.traces.record import (
    Trace,
    TraceMeta,
    TraceRecord,
    merge_sorted,
    validate_trace,
)
from repro.traces.trace_io import TraceFormatError, load_trace, save_trace
from repro.traces.workload import BenignWorkload, WorkloadParams

__all__ = [
    "AttackSpec",
    "BenignWorkload",
    "Trace",
    "TraceFormatError",
    "TraceMeta",
    "TraceRecord",
    "WorkloadParams",
    "build_trace",
    "double_sided",
    "flooding",
    "load_trace",
    "merge_sorted",
    "n_aggressor",
    "paper_mixed_workload",
    "ramped_multi_aggressor",
    "save_trace",
    "single_sided",
    "validate_trace",
]
