"""Combine benign workloads and attack campaigns into one trace.

The mixer walks refresh intervals; for every (interval, bank) it draws
the benign activations, appends the attack activations scheduled there,
shuffles them together (an attacker process interleaves with the mixed
load on a real machine), enforces the physical per-interval activation
cap, and assigns evenly-spaced timestamps that respect the 45 ns
activate-to-activate constraint.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.config import SimConfig
from repro.rng import stream
from repro.traces.attacker import AttackSpec, double_sided, ramped_multi_aggressor
from repro.traces.record import Trace, TraceMeta, TraceRecord
from repro.traces.workload import BenignWorkload, WorkloadParams


def build_trace(
    config: SimConfig,
    total_intervals: int,
    benign_params: Optional[WorkloadParams] = None,
    attacks: Sequence[AttackSpec] = (),
    seed: int = 0,
    materialize: bool = False,
) -> Trace:
    """Build a mixed trace.

    ``benign_params = None`` disables the benign load (pure attack
    traces for the flooding experiments).  Records stream lazily unless
    *materialize* is set.
    """
    geometry = config.geometry
    interval_ns = int(config.timing.refresh_interval_ns)
    max_acts = config.timing.max_acts_per_interval
    for attack in attacks:
        if not 0 <= attack.bank < geometry.num_banks:
            raise ValueError(f"attack targets bank {attack.bank} outside device")
        for row in attack.aggressors:
            geometry._check_row(row)

    meta = TraceMeta(
        total_intervals=total_intervals,
        interval_ns=interval_ns,
        num_banks=geometry.num_banks,
    )

    def generate() -> Iterator[TraceRecord]:
        mix_rng = stream(seed, "mixer")
        workloads = (
            [
                BenignWorkload(geometry, benign_params, bank, seed)
                for bank in range(geometry.num_banks)
            ]
            if benign_params is not None
            else None
        )
        for interval in range(total_intervals):
            interval_start = interval * interval_ns
            merged: List[Tuple[int, int, int, bool]] = []
            for bank in range(geometry.num_banks):
                entries: List[Tuple[int, bool]] = []
                if workloads is not None:
                    entries.extend(
                        (row, False)
                        for row in workloads[bank].rows_for_interval(interval)
                    )
                for attack in attacks:
                    if attack.bank == bank:
                        entries.extend(
                            (row, True)
                            for row in attack.rows_for_interval(interval)
                        )
                if not entries:
                    continue
                mix_rng.shuffle(entries)
                if len(entries) > max_acts:
                    entries = entries[:max_acts]
                spacing = interval_ns // max(len(entries), 1)
                for slot, (row, is_attack) in enumerate(entries):
                    merged.append(
                        (interval_start + slot * spacing, bank, row, is_attack)
                    )
            merged.sort(key=lambda item: item[0])
            for time_ns, bank, row, is_attack in merged:
                yield TraceRecord(time_ns, bank, row, is_attack)

    trace = Trace(meta=meta, records=generate())
    if materialize:
        trace.materialize()
    return trace


def paper_mixed_workload(
    config: SimConfig,
    total_intervals: int,
    seed: int = 0,
    max_aggressors: int = 20,
    attacker_acts_per_interval: int = 80,
    benign_params: Optional[WorkloadParams] = None,
    target_banks: Sequence[int] = (0,),
    sustained_double_sided: bool = True,
    double_sided_acts_per_interval: int = 70,
) -> Trace:
    """The paper's evaluation workload (Section IV).

    Benign SPEC-like mixed load on every bank, plus a cache-flush-style
    attacker on each targeted bank whose aggressor count ramps from 1
    to *max_aggressors* (many-sided, spacing 2).  Default rates make
    the attacker responsible for ~40 % of all activations -- consistent
    with the paper's PARA row, where the 0.062 % false-positive share
    of a 0.1 % overhead implies ~38 % attacker activations.

    ``sustained_double_sided`` adds one window-long double-sided attack
    (on the bank after the last ramp target, so the per-interval
    activation cap is not contended): at 70 activations per interval
    its victim would accumulate disturbance far past the 139 K flip
    threshold on an *unmitigated* device, which is what makes the
    Section IV "no active attacks were successful" reliability claim
    testable.
    """
    geometry = config.geometry
    params = benign_params or WorkloadParams()
    banks = list(target_banks)
    attacks: List[AttackSpec] = []
    for bank in banks:
        attacks.extend(
            ramped_multi_aggressor(
                geometry,
                bank=bank,
                total_intervals=total_intervals,
                max_aggressors=max_aggressors,
                acts_per_interval=attacker_acts_per_interval,
                first_row=geometry.rows_per_bank // 8 + bank,
                spacing=2,
            )
        )
    if sustained_double_sided:
        ds_bank = (banks[-1] + 1) % geometry.num_banks if banks else 0
        attacks.append(
            double_sided(
                geometry,
                bank=ds_bank,
                victim=5 * geometry.rows_per_bank // 8,
                acts_per_interval=double_sided_acts_per_interval,
            )
        )
    return build_trace(
        config,
        total_intervals=total_intervals,
        benign_params=params,
        attacks=attacks,
        seed=seed,
    )
