"""Trace records: the activation stream mitigations observe.

A trace is a time-ordered sequence of row activations, each carrying a
ground-truth ``is_attack`` flag.  Mitigation techniques never see the
flag (the simulation engine strips it); it exists purely so the metrics
layer can classify extra activations as true or false positives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, NamedTuple, Sequence


class TraceRecord(NamedTuple):
    """One row activation command."""

    time_ns: int
    bank: int
    row: int
    is_attack: bool = False


@dataclass(frozen=True)
class TraceMeta:
    """Static facts about a trace needed to drive a simulation."""

    #: number of refresh intervals the trace spans
    total_intervals: int
    #: duration of one refresh interval in nanoseconds
    interval_ns: int
    #: number of banks addressed
    num_banks: int

    @property
    def duration_ns(self) -> int:
        return self.total_intervals * self.interval_ns


@dataclass
class Trace:
    """A trace: metadata plus an iterable of time-ordered records.

    ``records`` may be a materialised list (tests, small runs) or any
    re-iterable source; :meth:`materialize` forces a list.
    """

    meta: TraceMeta
    records: Iterable[TraceRecord]

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def materialize(self) -> "Trace":
        if not isinstance(self.records, list):
            self.records = list(self.records)
        return self

    def aggressor_rows(self) -> dict:
        """Ground-truth aggressor rows per bank (requires materialised records)."""
        self.materialize()
        rows: dict = {}
        for record in self.records:
            if record.is_attack:
                rows.setdefault(record.bank, set()).add(record.row)
        return rows

    def count(self) -> int:
        self.materialize()
        return len(self.records)


def validate_trace(trace: Trace, act_to_act_ns: float = 45.0) -> List[str]:
    """Return a list of violations (empty when the trace is well-formed).

    Checks global time ordering, per-bank minimum activate-to-activate
    spacing, and that record times fall inside the declared span.
    """
    problems: List[str] = []
    last_time = -1
    last_bank_time: dict = {}
    trace.materialize()
    for index, record in enumerate(trace.records):
        if record.time_ns < last_time:
            problems.append(f"record {index}: time goes backwards")
        last_time = record.time_ns
        prev = last_bank_time.get(record.bank)
        if prev is not None and record.time_ns - prev < act_to_act_ns:
            problems.append(
                f"record {index}: bank {record.bank} act-to-act "
                f"{record.time_ns - prev} ns < {act_to_act_ns} ns"
            )
        last_bank_time[record.bank] = record.time_ns
        if not 0 <= record.time_ns < trace.meta.duration_ns:
            problems.append(f"record {index}: time outside trace span")
        if not 0 <= record.bank < trace.meta.num_banks:
            problems.append(f"record {index}: bank out of range")
    return problems


def merge_sorted(streams: Sequence[Iterable[TraceRecord]]) -> Iterator[TraceRecord]:
    """Merge independently-sorted record streams into one sorted stream."""
    import heapq

    return heapq.merge(*streams, key=lambda record: record.time_ns)
