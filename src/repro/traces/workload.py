"""Synthetic benign workload generator (SPEC CPU2006 stand-in).

The paper drives its evaluation with gem5 memory traces of a mixed SPEC
CPU2006 load.  Row-Hammer mitigations only observe the *(time, bank,
row)* activation stream, so the properties of SPEC that matter are:

* the average activation rate per refresh interval (the paper measures
  ~40 including the attacker, so the benign share defaults to 25);
* strong row-level temporal locality (a zipf-popular working set, as
  produced by caches filtering accesses of loop-heavy code);
* phase behaviour (the working set drifts every few thousand
  intervals);
* occasional streaming bursts that sweep sequential rows.

This module synthesises a per-bank activation stream with exactly those
properties, deterministically from a seed.
"""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass
from typing import List

from repro.config import DRAMGeometry
from repro.rng import stream


@dataclass(frozen=True)
class WorkloadParams:
    """Knobs of the benign workload generator."""

    #: mean benign activations per bank per refresh interval (Poisson)
    avg_acts_per_interval: float = 25.0
    #: number of distinct rows in the hot working set
    working_set_rows: int = 256
    #: zipf exponent of row popularity within the working set
    zipf_s: float = 1.2
    #: intervals between working-set drifts
    phase_length_intervals: int = 2048
    #: fraction of the working set resampled at each phase change
    phase_turnover: float = 0.25
    #: probability that an activation starts a sequential streaming burst
    streaming_burst_prob: float = 0.02
    #: rows touched by one streaming burst
    streaming_burst_length: int = 16

    def __post_init__(self) -> None:
        if self.avg_acts_per_interval <= 0:
            raise ValueError("avg_acts_per_interval must be positive")
        if self.working_set_rows < 1:
            raise ValueError("working_set_rows must be positive")
        if not 0.0 <= self.phase_turnover <= 1.0:
            raise ValueError("phase_turnover must be in [0, 1]")


class BenignWorkload:
    """Stateful per-bank benign activation generator."""

    def __init__(
        self,
        geometry: DRAMGeometry,
        params: WorkloadParams,
        bank: int,
        seed: int,
    ):
        self.geometry = geometry
        self.params = params
        self.bank = bank
        self._rng = stream(seed, "benign", bank)
        size = min(params.working_set_rows, geometry.rows_per_bank)
        self._working_set: List[int] = self._rng.sample(
            range(geometry.rows_per_bank), size
        )
        self._cum_weights = self._zipf_cumulative(size, params.zipf_s)
        self._phase = 0
        self._burst_remaining = 0
        self._burst_row = 0

    @staticmethod
    def _zipf_cumulative(size: int, s: float) -> List[float]:
        weights = [1.0 / (rank**s) for rank in range(1, size + 1)]
        return list(itertools.accumulate(weights))

    def _maybe_change_phase(self, interval: int) -> None:
        phase = interval // self.params.phase_length_intervals
        if phase == self._phase:
            return
        self._phase = phase
        turnover = int(len(self._working_set) * self.params.phase_turnover)
        for _ in range(turnover):
            slot = self._rng.randrange(len(self._working_set))
            self._working_set[slot] = self._rng.randrange(
                self.geometry.rows_per_bank
            )

    def acts_in_interval(self, interval: int) -> int:
        """Draw the number of benign activations for *interval* (Poisson)."""
        self._maybe_change_phase(interval)
        # Knuth's algorithm is fine at these small means.
        lam = self.params.avg_acts_per_interval
        import math

        limit = math.exp(-lam)
        count = 0
        product = self._rng.random()
        while product > limit:
            count += 1
            product *= self._rng.random()
        return count

    def next_row(self) -> int:
        """Draw the next activated row (zipf working set + bursts)."""
        if self._burst_remaining > 0:
            self._burst_remaining -= 1
            self._burst_row = (self._burst_row + 1) % self.geometry.rows_per_bank
            return self._burst_row
        if self._rng.random() < self.params.streaming_burst_prob:
            self._burst_remaining = self.params.streaming_burst_length
            self._burst_row = self._rng.randrange(self.geometry.rows_per_bank)
            return self._burst_row
        pick = self._rng.random() * self._cum_weights[-1]
        index = bisect.bisect_left(self._cum_weights, pick)
        return self._working_set[min(index, len(self._working_set) - 1)]

    def rows_for_interval(self, interval: int) -> List[int]:
        """All benign rows activated during *interval*, in order."""
        return [self.next_row() for _ in range(self.acts_in_interval(interval))]
