"""Content-digest-keyed npz cache for ingested traces.

Parsing a multi-million-record text trace costs seconds to minutes;
replaying the resulting columnar npz costs milliseconds.  The cache
keys each entry on everything that determines the ingest *output*:

    key = sha256(schema : source-file sha256 : ingest-spec digest)

so editing the source file, the mapper spec, the format options or the
target geometry each produce a different key, while re-running the
identical ingest hits.  Hitting vs missing cannot change results: a
cold ingest round-trips through the very same
:func:`~repro.traces.trace_io.save_trace_npz` /
:func:`~repro.traces.trace_io.load_trace_npz` pair a hit replays, so
cached and uncached loads are byte-for-byte the same arrays.

Each entry is ``<key>.npz`` plus a ``<key>.json`` sidecar holding the
ingest provenance (source path/digest, mapper spec, record counts).
Writes go through a temp file + atomic rename; a corrupted or
half-written entry is detected at load time, deleted, and re-ingested.
Cache traffic is observable through the ``ingest.cache_hits`` /
``ingest.cache_misses`` / ``ingest.cache_evictions`` counters of a
:class:`~repro.telemetry.metrics.MetricsRegistry`.

The default location is ``$REPRO_INGEST_CACHE`` or
``~/.cache/repro/ingest``; pass ``--ingest-cache`` / ``cache_dir`` to
override, or ``--no-ingest-cache`` to bypass entirely.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.telemetry.metrics import MetricsRegistry
from repro.traces.record import Trace
from repro.traces.trace_io import load_trace_npz, save_trace_npz

#: bump when the npz entry layout or key derivation changes; old
#: entries simply stop being addressed and age out
CACHE_SCHEMA = 1

_ENV_VAR = "REPRO_INGEST_CACHE"


def default_cache_dir() -> Path:
    env = os.environ.get(_ENV_VAR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "ingest"


def file_digest(path: Union[str, Path]) -> str:
    """sha256 of the raw file bytes (gzip container included), chunked."""
    digest = hashlib.sha256()
    with Path(path).open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def cache_key(source_digest: str, spec_digest: str) -> str:
    return hashlib.sha256(
        f"{CACHE_SCHEMA}:{source_digest}:{spec_digest}".encode("utf-8")
    ).hexdigest()


class IngestCache:
    """Filesystem cache of ingested traces (see module docstring)."""

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.metrics = metrics

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(f"ingest.{name}").add()

    def _paths(self, key: str) -> Tuple[Path, Path]:
        return self.root / f"{key}.npz", self.root / f"{key}.json"

    def load(self, key: str) -> Optional[Tuple[Trace, Dict[str, Any]]]:
        """Return ``(trace, sidecar)`` for *key*, or ``None`` on a miss.

        A present-but-unreadable entry (truncated npz, mangled sidecar)
        counts as a miss: both files are evicted so the caller's fresh
        ingest can repopulate the slot.
        """
        npz_path, sidecar_path = self._paths(key)
        if not npz_path.exists() or not sidecar_path.exists():
            self._count("cache_misses")
            return None
        try:
            trace = load_trace_npz(npz_path)
            sidecar = json.loads(sidecar_path.read_text(encoding="utf-8"))
            if not isinstance(sidecar, dict):
                raise ValueError("sidecar is not a JSON object")
        except Exception:
            self.evict(key)
            self._count("cache_evictions")
            self._count("cache_misses")
            return None
        self._count("cache_hits")
        return trace, sidecar

    def store(self, key: str, trace: Trace, sidecar: Dict[str, Any]) -> Path:
        """Atomically write *trace* + *sidecar* under *key*.

        Returns the npz path.  The npz lands via temp-file + rename so
        a crash mid-write leaves no addressable half-entry; the sidecar
        is written second because :meth:`load` requires both.  The temp
        names are unique per writer: two concurrent misses of the same
        key (e.g. two serve sessions racing the same upload) each
        complete their own write-and-rename, last one wins, and the
        contents are identical either way because the key fixes them.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        npz_path, sidecar_path = self._paths(key)
        # numpy appends ".npz" to names lacking it, so the temp name
        # must keep the suffix for os.replace to find the file
        handle, tmp_npz = tempfile.mkstemp(
            dir=str(self.root), prefix=f"{key}.", suffix=".tmp.npz"
        )
        os.close(handle)
        save_trace_npz(trace, tmp_npz)
        os.replace(tmp_npz, npz_path)
        handle, tmp_sidecar = tempfile.mkstemp(
            dir=str(self.root), prefix=f"{key}.", suffix=".json.tmp"
        )
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            stream.write(json.dumps(sidecar, indent=2, sort_keys=True) + "\n")
        os.replace(tmp_sidecar, sidecar_path)
        return npz_path

    def evict(self, key: str) -> None:
        for path in self._paths(key):
            try:
                path.unlink()
            except FileNotFoundError:
                pass

    def entry_path(self, key: str) -> Path:
        """The npz path an entry for *key* would occupy (may not exist)."""
        return self._paths(key)[0]
