"""Chunk-oriented trace arrival: byte chunks -> complete text lines.

The ``repro serve`` sessions (and any future network transport) deliver
trace bytes in arbitrary chunks: a chunk boundary can fall in the
middle of a line, in the middle of a UTF-8 code point, or -- for
gzipped uploads -- in the middle of a deflate block or *between two
gzip members* of a concatenated archive.  The file-based readers in
:mod:`repro.traces.ingest.readers` never see any of that because
:func:`~repro.traces.ingest.readers.open_trace_text` hands them a
seekable file; this module provides the incremental counterpart.

:class:`ChunkDecoder` accepts raw byte chunks exactly as they arrive
and yields only **complete** text lines:

* gzip input is detected from the ``1f 8b`` magic (sniffed across
  chunk boundaries: a 1-byte first chunk is held until the verdict is
  in), and multi-member archives are decompressed member by member --
  a member boundary split across two ``feed`` calls is reassembled;
* line splitting happens on the *byte* stream, so a multi-byte UTF-8
  character torn by a chunk boundary is reassembled before decoding;
* :meth:`ChunkDecoder.flush` terminates the stream, emitting a final
  unterminated line (if any) and raising on a truncated gzip stream.

The decoded lines feed straight into the line-based record generators
(:func:`~repro.traces.ingest.readers.dramsim_records`,
:func:`~repro.traces.ingest.readers.native_records`), which is pinned
by ``tests/traces/ingest/test_streaming.py``: any chunking of a fixture
file produces records identical to a whole-file read.
"""

from __future__ import annotations

import zlib
from typing import Any, Iterator, List, Optional

from repro.traces.trace_io import TraceFormatError

_GZIP_MAGIC = b"\x1f\x8b"

#: ``wbits`` selecting gzip-wrapped deflate for :func:`zlib.decompressobj`
_GZIP_WBITS = 16 + zlib.MAX_WBITS


class StreamTruncated(TraceFormatError):
    """The byte stream ended inside a gzip member (structural error)."""


class ChunkDecoder:
    """Incremental bytes -> lines decoder (see module docstring).

    One instance decodes one upload.  ``feed`` returns the list of
    lines the chunk completed (without trailing newlines); ``flush``
    returns the final unterminated line, if any.  ``lines_seen`` /
    ``bytes_seen`` count decoded lines and raw (wire) bytes for
    progress reporting.
    """

    def __init__(self, source: str = "<stream>"):
        self.source = source
        self.lines_seen = 0
        self.bytes_seen = 0
        self._line_buf = bytearray()  # decompressed bytes of a torn line
        self._sniff = bytearray()     # first bytes awaiting the gzip verdict
        self._mode: Optional[str] = None  # None | "plain" | "gzip"
        self._gz: Optional[Any] = None
        self._flushed = False

    # -- feeding -------------------------------------------------------

    def feed(self, chunk: bytes) -> List[str]:
        """Decode *chunk*; return the complete lines it finished."""
        if self._flushed:
            raise ValueError("ChunkDecoder.feed() after flush()")
        self.bytes_seen += len(chunk)
        if self._mode is None:
            self._sniff.extend(chunk)
            if len(self._sniff) < len(_GZIP_MAGIC):
                return []  # verdict needs more bytes; hold
            sniffed = bytes(self._sniff)
            self._sniff.clear()
            if sniffed.startswith(_GZIP_MAGIC):
                self._mode = "gzip"
                self._gz = zlib.decompressobj(_GZIP_WBITS)
            else:
                self._mode = "plain"
            return self._accept(sniffed)
        return self._accept(chunk)

    def flush(self) -> List[str]:
        """End of stream: emit the final line, validate gzip closure."""
        if self._flushed:
            return []
        self._flushed = True
        lines: List[str] = []
        if self._mode is None and self._sniff:
            # a stream shorter than the magic is necessarily plain text
            self._mode = "plain"
            held = bytes(self._sniff)
            self._sniff.clear()
            lines.extend(self._accept(held))
        if self._mode == "gzip" and self._gz is not None and not self._gz.eof:
            raise StreamTruncated(
                self.source, "gzip stream ended mid-member (truncated upload)"
            )
        if self._line_buf:
            lines.append(self._emit(bytes(self._line_buf)))
            self._line_buf.clear()
        return lines

    # -- internals -----------------------------------------------------

    def _accept(self, data: bytes) -> List[str]:
        if self._mode == "gzip":
            data = self._inflate(data)
        return self._split(data)

    def _inflate(self, data: bytes) -> bytes:
        """Decompress *data*, restarting across gzip member boundaries."""
        out = bytearray()
        while data:
            if self._gz.eof:
                # the previous member closed (possibly in an earlier
                # feed); these bytes open the next one.  A partial
                # header is buffered inside the fresh decompressor
                # until later chunks complete it.
                self._gz = zlib.decompressobj(_GZIP_WBITS)
            try:
                out.extend(self._gz.decompress(data))
            except zlib.error as exc:
                raise TraceFormatError(
                    self.source, f"corrupt gzip stream: {exc}"
                ) from exc
            data = self._gz.unused_data if self._gz.eof else b""
        return bytes(out)

    def _split(self, data: bytes) -> List[str]:
        if not data:
            return []
        self._line_buf.extend(data)
        if b"\n" not in data:
            return []
        *complete, tail = bytes(self._line_buf).split(b"\n")
        self._line_buf = bytearray(tail)
        return [self._emit(raw) for raw in complete]

    def _emit(self, raw: bytes) -> str:
        self.lines_seen += 1
        try:
            return raw.decode("utf-8").rstrip("\r")
        except UnicodeDecodeError as exc:
            raise TraceFormatError(
                self.source,
                f"undecodable UTF-8 at line {self.lines_seen}: {exc}",
                line_no=self.lines_seen,
            ) from exc


def iter_chunk_lines(chunks, source: str = "<stream>") -> Iterator[str]:
    """Decode an iterable of byte *chunks* into a stream of lines.

    Convenience wrapper used by tests and one-shot callers; a live
    session drives :class:`ChunkDecoder` directly because its chunks
    arrive over time.
    """
    decoder = ChunkDecoder(source=source)
    for chunk in chunks:
        for line in decoder.feed(chunk):
            yield line
    for line in decoder.flush():
        yield line
