"""Declarative physical-address decoding for external traces.

External command traces carry flat physical (or bus) addresses; the
simulation needs (bank, row) coordinates.  An :class:`AddressMapper` is
built from a *bit-field spec* -- a mini-language describing which
address bits form each DRAM coordinate -- so any controller's address
swizzle can be expressed without code:

    ``"row:30-15 bank:14-13 column:12-0"``

Each whitespace-separated token is ``field:segments`` where *field* is
one of ``channel``/``rank``/``bank``/``row``/``column`` (aliases
``ch``/``ra``/``ba``/``col``) and *segments* is a comma-separated list
of inclusive bit ranges ``hi-lo`` (or single bits ``n``), listed
most-significant first.  A field's value is the concatenation of its
segment bits; fields never share a bit; unspecified fields decode to 0.

The :func:`layout_spec` preset reproduces the package's own
:class:`repro.cpu.layout.DRAMAddressLayout` (column bits at the bottom,
bank bits next, row bits on top) for any geometry, which is what the
``repro ingest --mapper layout`` default uses.  See
``docs/trace-formats.md`` for the full mini-language grammar.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.config import DRAMGeometry

#: canonical field names, decode order
FIELD_NAMES = ("channel", "rank", "bank", "row", "column")

#: accepted aliases -> canonical field name
FIELD_ALIASES = {
    "channel": "channel", "ch": "channel",
    "rank": "rank", "ra": "rank",
    "bank": "bank", "ba": "bank",
    "row": "row",
    "column": "column", "col": "column",
}


class MapperSpecError(ValueError):
    """The bit-field spec string does not parse or is inconsistent."""


@dataclass(frozen=True)
class DecodedAddress:
    """One physical address decoded into DRAM coordinates."""

    channel: int
    rank: int
    bank: int
    row: int
    column: int


def _parse_segments(field: str, text: str) -> List[Tuple[int, int]]:
    segments: List[Tuple[int, int]] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            raise MapperSpecError(
                f"field {field!r}: empty bit segment in {text!r}"
            )
        if "-" in part:
            hi_text, lo_text = part.split("-", 1)
        else:
            hi_text = lo_text = part
        try:
            hi, lo = int(hi_text), int(lo_text)
        except ValueError as exc:
            raise MapperSpecError(
                f"field {field!r}: bit segment {part!r} is not an integer "
                "or 'hi-lo' range"
            ) from exc
        if lo < 0 or hi < lo:
            raise MapperSpecError(
                f"field {field!r}: segment {part!r} must satisfy "
                "hi >= lo >= 0"
            )
        segments.append((hi, lo))
    return segments


class AddressMapper:
    """Decode flat addresses into (channel, rank, bank, row, column).

    Construct from a spec string (see module docstring) or via
    :meth:`from_layout` for the package's native layout.  The mapper is
    immutable; :attr:`canonical_spec` is a normalised form of the spec
    (stable field order, normalised segments) and :attr:`digest` hashes
    it -- the ingest cache keys on this digest, so editing the spec in
    any meaningful way invalidates cached ingests while reformatting
    whitespace does not.
    """

    def __init__(self, spec: str):
        fields: Dict[str, List[Tuple[int, int]]] = {}
        tokens = spec.split()
        if not tokens:
            raise MapperSpecError("empty mapper spec")
        for token in tokens:
            if ":" not in token:
                raise MapperSpecError(
                    f"token {token!r} is not of the form 'field:bits'"
                )
            name_text, bits_text = token.split(":", 1)
            name = FIELD_ALIASES.get(name_text.strip().lower())
            if name is None:
                raise MapperSpecError(
                    f"unknown field {name_text!r} (expected one of "
                    f"{', '.join(sorted(set(FIELD_ALIASES)))})"
                )
            fields.setdefault(name, []).extend(
                _parse_segments(name, bits_text)
            )
        if "row" not in fields:
            raise MapperSpecError("mapper spec must define the 'row' field")
        used: Dict[int, str] = {}
        for name, segments in fields.items():
            for hi, lo in segments:
                for bit in range(lo, hi + 1):
                    owner = used.get(bit)
                    if owner is not None:
                        raise MapperSpecError(
                            f"bit {bit} assigned to both {owner!r} and "
                            f"{name!r}"
                        )
                    used[bit] = name
        self._fields = fields
        self.canonical_spec = " ".join(
            f"{name}:" + ",".join(
                (f"{hi}-{lo}" if hi != lo else str(hi))
                for hi, lo in fields[name]
            )
            for name in FIELD_NAMES
            if name in fields
        )

    @classmethod
    def from_layout(
        cls, geometry: DRAMGeometry, row_bytes: int = 8192
    ) -> "AddressMapper":
        """The package's own layout (see :mod:`repro.cpu.layout`)."""
        return cls(layout_spec(geometry, row_bytes=row_bytes))

    @property
    def digest(self) -> str:
        """Stable short hash of :attr:`canonical_spec` (cache keying)."""
        return hashlib.sha256(
            self.canonical_spec.encode("utf-8")
        ).hexdigest()[:16]

    def width(self, field: str) -> int:
        """Total number of bits assigned to *field* (0 if unspecified)."""
        return sum(
            hi - lo + 1 for hi, lo in self._fields.get(field, ())
        )

    def count(self, field: str) -> int:
        """Number of distinct values *field* can decode to."""
        return 1 << self.width(field)

    @property
    def flat_banks(self) -> int:
        """Distinct (channel, rank, bank) combinations the spec encodes."""
        return self.count("channel") * self.count("rank") * self.count("bank")

    def _extract(self, address: int, field: str) -> int:
        value = 0
        for hi, lo in self._fields.get(field, ()):
            width = hi - lo + 1
            value = (value << width) | ((address >> lo) & ((1 << width) - 1))
        return value

    def decode(self, address: int) -> DecodedAddress:
        """Decode *address*; bits above every declared segment are ignored."""
        if address < 0:
            raise ValueError(f"address must be non-negative: {address}")
        return DecodedAddress(
            channel=self._extract(address, "channel"),
            rank=self._extract(address, "rank"),
            bank=self._extract(address, "bank"),
            row=self._extract(address, "row"),
            column=self._extract(address, "column"),
        )

    def flat_bank(self, decoded: DecodedAddress) -> int:
        """Flatten (channel, rank, bank) into one bank index.

        Channel-major, then rank, then bank -- matching how the
        simulation treats its bank list as one flat namespace.
        """
        return (
            (decoded.channel * self.count("rank") + decoded.rank)
            * self.count("bank")
            + decoded.bank
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AddressMapper({self.canonical_spec!r})"


def layout_spec(geometry: DRAMGeometry, row_bytes: int = 8192) -> str:
    """Spec string matching :class:`repro.cpu.layout.DRAMAddressLayout`.

    Column bits at the bottom (one *row_bytes* row buffer), bank bits
    next, row bits on top.  Requires power-of-two geometry (every real
    device qualifies; the shrunk test geometries do too).
    """
    column_bits = _log2_exact(row_bytes, "row_bytes")
    bank_bits = _log2_exact(geometry.num_banks, "num_banks")
    row_bits = _log2_exact(geometry.rows_per_bank, "rows_per_bank")
    parts = []
    base = column_bits + bank_bits
    parts.append(f"row:{base + row_bits - 1}-{base}")
    if bank_bits:
        parts.append(f"bank:{column_bits + bank_bits - 1}-{column_bits}")
    parts.append(f"column:{column_bits - 1}-0")
    return " ".join(parts)


def _log2_exact(value: int, name: str) -> int:
    if value < 1 or value & (value - 1):
        raise MapperSpecError(
            f"layout preset needs power-of-two {name}, got {value}"
        )
    return value.bit_length() - 1


#: named mapper presets accepted wherever a spec string is (``--mapper``)
PRESETS = {
    # the paper's Table I DDR4 device through the package's own layout
    "layout": layout_spec(DRAMGeometry()),
    "ddr4-paper": layout_spec(DRAMGeometry()),
}


def resolve_mapper(
    spec_or_preset: str, geometry: DRAMGeometry
) -> AddressMapper:
    """Resolve a ``--mapper`` argument: preset name or literal spec.

    ``"layout"`` is special-cased to the *given* geometry (so shrunk
    test configs get a matching preset); other preset names resolve
    from :data:`PRESETS`; anything containing a colon is parsed as a
    literal spec string.
    """
    text = spec_or_preset.strip()
    if text == "layout":
        return AddressMapper.from_layout(geometry)
    if ":" not in text:
        preset = PRESETS.get(text)
        if preset is None:
            raise MapperSpecError(
                f"unknown mapper preset {text!r} (known: "
                f"{', '.join(sorted(PRESETS))}; or pass a literal "
                "'field:hi-lo ...' spec)"
            )
        return AddressMapper(preset)
    return AddressMapper(text)
