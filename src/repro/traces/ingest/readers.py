"""Streaming readers for the three supported external trace formats.

Every reader is a generator yielding :class:`TraceRecord` values in
file order, holding O(1) state -- files are never slurped into memory
(the litex payload reader holds the instruction list, which is tiny;
the *expansion* of its loops streams).  Gzip input is transparent:
:func:`open_trace_text` sniffs the two magic bytes instead of trusting
the file extension.

Malformed input raises :class:`TraceFormatError` naming file and line;
each reader routes record-level errors through a
:class:`ParseErrorPolicy` so callers choose between ``raise`` (default)
and ``skip`` (count, remember a sample, carry on).  Structural errors
-- a truncated gzip stream, unparseable JSON -- always raise: there is
no next line to skip to.

Format details live in ``docs/trace-formats.md``.
"""

from __future__ import annotations

import gzip
import io
import json
from pathlib import Path
from typing import (
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    TextIO,
    Tuple,
    Union,
)

from repro.config import SimConfig
from repro.traces.ingest.mapper import AddressMapper
from repro.traces.record import TraceRecord
from repro.traces.trace_io import (
    TraceFormatError,
    parse_trace_header,
    parse_trace_record,
)

#: supported ``--format`` values (``auto`` sniffs via :func:`detect_format`)
FORMAT_NAMES = ("dramsim", "litex", "native")

_GZIP_MAGIC = b"\x1f\x8b"

#: DRAMSim command mnemonics that open a row (everything else is ignored)
DEFAULT_ACT_COMMANDS = ("ACT", "ACTIVATE", "ACT0", "ACT1")


class ParseErrorPolicy:
    """What to do with a malformed record: ``raise`` or ``skip``.

    In ``skip`` mode malformed records are counted and the first few
    error messages retained for the provenance report; the reader keeps
    going.  One policy instance accompanies one ingest run.
    """

    def __init__(self, mode: str = "raise", sample_limit: int = 5):
        if mode not in ("raise", "skip"):
            raise ValueError(f"on_parse_error must be raise|skip, got {mode!r}")
        self.mode = mode
        self.sample_limit = sample_limit
        self.skipped = 0
        self.samples: List[str] = []

    def handle(self, error: TraceFormatError) -> None:
        if self.mode == "raise":
            raise error
        self.skipped += 1
        if len(self.samples) < self.sample_limit:
            self.samples.append(str(error))


def open_trace_text(path: Union[str, Path]) -> TextIO:
    """Open *path* for text reading, decompressing gzip transparently.

    Detection is by the 1f 8b magic bytes, not the filename, so
    ``trace.txt`` containing gzip data still works.
    """
    path = Path(path)
    raw = path.open("rb")
    try:
        magic = raw.read(2)
        raw.seek(0)
    except OSError:
        raw.close()
        raise
    if magic == _GZIP_MAGIC:
        return io.TextIOWrapper(gzip.GzipFile(fileobj=raw), encoding="utf-8")
    return io.TextIOWrapper(raw, encoding="utf-8")


def detect_format(path: Union[str, Path]) -> str:
    """Sniff which of the three formats *path* contains.

    ``#repro-trace:`` header -> native; a JSON object/array -> litex;
    anything else -> dramsim.
    """
    with open_trace_text(path) as handle:
        head = handle.read(4096)
    stripped = head.lstrip()
    if stripped.startswith("#repro-trace:"):
        return "native"
    if stripped[:1] in ("{", "["):
        return "litex"
    return "dramsim"


def dramsim_records(
    lines: Iterable[str],
    source: Union[str, Path],
    mapper: AddressMapper,
    config: SimConfig,
    policy: ParseErrorPolicy,
    clock_ns: float = 1.0,
    act_commands: Sequence[str] = DEFAULT_ACT_COMMANDS,
    mark_attacks: bool = False,
    start_line: int = 1,
) -> Iterator[TraceRecord]:
    """Parse DRAMSim/Ramulator ``cycle,cmd,addr`` *lines* into records.

    The line-granular core shared by the file reader
    (:func:`read_dramsim`) and the chunk-fed streaming sessions of
    ``repro serve``, which assemble lines with
    :class:`~repro.traces.ingest.streaming.ChunkDecoder`.  *source*
    names the origin in error messages; *start_line* seeds the error
    line numbering.
    """
    acts = frozenset(c.upper() for c in act_commands)
    num_banks = config.geometry.num_banks
    rows_per_bank = config.geometry.rows_per_bank
    for line_no, line in enumerate(lines, start=start_line):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = (
            [p.strip() for p in line.split(",")]
            if "," in line
            else line.split()
        )
        if len(parts) != 3:
            policy.handle(TraceFormatError(
                source,
                f"bad dramsim record {line!r} (expected "
                "'cycle,cmd,addr')",
                line_no=line_no,
            ))
            continue
        cycle_text, cmd, addr_text = parts
        try:
            cycle = int(cycle_text)
            if cycle < 0:
                raise ValueError("negative cycle")
        except ValueError:
            policy.handle(TraceFormatError(
                source,
                f"bad dramsim record {line!r} (cycle must be a "
                "non-negative integer)",
                line_no=line_no,
            ))
            continue
        if cmd.upper() not in acts:
            continue
        try:
            addr = int(addr_text, 0)
            if addr < 0:
                raise ValueError("negative addr")
        except ValueError:
            policy.handle(TraceFormatError(
                source,
                f"bad dramsim record {line!r} (addr must be a "
                "non-negative integer; 0x hex accepted)",
                line_no=line_no,
            ))
            continue
        decoded = mapper.decode(addr)
        bank = mapper.flat_bank(decoded)
        if bank >= num_banks or decoded.row >= rows_per_bank:
            policy.handle(TraceFormatError(
                source,
                f"address 0x{addr:x} decodes to bank {bank}, row "
                f"{decoded.row} outside the configured geometry "
                f"({num_banks} banks x {rows_per_bank} rows)",
                line_no=line_no,
            ))
            continue
        yield TraceRecord(
            int(round(cycle * clock_ns)), bank, decoded.row, mark_attacks
        )


def read_dramsim(
    path: Union[str, Path],
    mapper: AddressMapper,
    config: SimConfig,
    policy: ParseErrorPolicy,
    clock_ns: float = 1.0,
    act_commands: Sequence[str] = DEFAULT_ACT_COMMANDS,
    mark_attacks: bool = False,
) -> Iterator[TraceRecord]:
    """Read a DRAMSim/Ramulator-style ``cycle,cmd,addr`` text trace.

    Fields may be comma- or whitespace-separated; ``addr`` accepts
    decimal or ``0x`` hex.  Commands outside *act_commands* (reads,
    precharges, refreshes) are silently ignored -- only activations
    drive Row-Hammer.  ``cycle`` is converted to nanoseconds via
    *clock_ns* and each address is decoded through *mapper*.
    """
    with open_trace_text(path) as handle:
        yield from dramsim_records(
            handle, path, mapper, config, policy,
            clock_ns=clock_ns, act_commands=act_commands,
            mark_attacks=mark_attacks,
        )


def read_litex(
    path: Union[str, Path],
    config: SimConfig,
    policy: ParseErrorPolicy,
    mark_attacks: bool = True,
) -> Iterator[TraceRecord]:
    """Read a litex-rowhammer-tester JSON dump.

    Two shapes are accepted (see ``docs/trace-formats.md``):

    * **row-sequence dump** -- ``{"row_sequence": [...], "bank": b,
      "iterations": n}`` (``"rows"`` is an alias): the row list is
      replayed *iterations* times with the configured act-to-act
      spacing, all on one bank.
    * **payload dump** -- ``{"timing": {"tick_ps": p}, "instrs":
      [...]}``: an instruction list mirroring the tester's DDR3/DDR4
      payload executor with ``ACT``/``NOP`` and backward ``JMP``
      (do-while: a count-``n`` loop body executes ``n`` times total).

    Rows-under-test come from hammer payloads, so records default to
    ``is_attack=True``.
    """
    with open_trace_text(path) as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(
                path, f"malformed JSON: {exc}", line_no=exc.lineno
            ) from exc
    if not isinstance(payload, dict):
        raise TraceFormatError(
            path,
            f"litex dump must be a JSON object, got {type(payload).__name__}",
        )
    if "instrs" in payload:
        yield from _litex_payload(path, payload, config, policy, mark_attacks)
    elif "row_sequence" in payload or "rows" in payload:
        yield from _litex_rows(path, payload, config, policy, mark_attacks)
    else:
        raise TraceFormatError(
            path,
            "litex dump must contain either 'instrs' (payload dump) or "
            "'row_sequence'/'rows' (row-sequence dump)",
        )


def _litex_rows(
    path, payload: dict, config: SimConfig,
    policy: ParseErrorPolicy, mark_attacks: bool,
) -> Iterator[TraceRecord]:
    rows = payload.get("row_sequence", payload.get("rows"))
    if not isinstance(rows, list):
        raise TraceFormatError(
            path, "'row_sequence' must be a JSON array of row numbers"
        )
    bank = _json_int(path, payload, "bank", default=0)
    iterations = _json_int(path, payload, "iterations", default=1)
    if iterations < 1:
        raise TraceFormatError(path, "'iterations' must be >= 1")
    geometry = config.geometry
    if not 0 <= bank < geometry.num_banks:
        raise TraceFormatError(
            path, f"bank {bank} outside the configured geometry "
                  f"({geometry.num_banks} banks)"
        )
    step_ns = max(1, int(config.timing.act_to_act_ns))
    time_ns = 0
    for _ in range(iterations):
        for index, row in enumerate(rows):
            if not isinstance(row, int) or not (
                0 <= row < geometry.rows_per_bank
            ):
                policy.handle(TraceFormatError(
                    path,
                    f"row_sequence[{index}] = {row!r} is not a row in "
                    f"[0, {geometry.rows_per_bank})",
                ))
                continue
            yield TraceRecord(time_ns, bank, row, mark_attacks)
            time_ns += step_ns


def _litex_payload(
    path, payload: dict, config: SimConfig,
    policy: ParseErrorPolicy, mark_attacks: bool,
) -> Iterator[TraceRecord]:
    timing = payload.get("timing", {})
    if not isinstance(timing, dict):
        raise TraceFormatError(path, "'timing' must be a JSON object")
    tick_ps = _json_int(path, timing, "tick_ps", default=2500)
    if tick_ps < 1:
        raise TraceFormatError(path, "'timing.tick_ps' must be >= 1")
    instrs = payload["instrs"]
    if not isinstance(instrs, list):
        raise TraceFormatError(path, "'instrs' must be a JSON array")
    geometry = config.geometry
    time_ps = 0
    index = 0
    # remaining backward jumps per JMP site; do-while semantics mean a
    # count-n JMP takes its branch n-1 times (the first pass of the
    # body already happened when the JMP is reached)
    jumps_left: dict = {}
    while index < len(instrs):
        instr = instrs[index]
        if not isinstance(instr, dict):
            raise TraceFormatError(
                path, f"instrs[{index}] must be a JSON object"
            )
        op = str(instr.get("op", instr.get("opcode", ""))).upper()
        if op == "JMP":
            offset = _json_int(path, instr, "offset", index=index)
            count = _json_int(path, instr, "count", index=index)
            if offset < 1 or offset > index:
                raise TraceFormatError(
                    path,
                    f"instrs[{index}]: JMP offset {offset} does not land "
                    "inside the instruction list",
                )
            left = jumps_left.get(index)
            if left is None:
                left = count - 1
            if left > 0:
                jumps_left[index] = left - 1
                index -= offset
                continue
            jumps_left.pop(index, None)
            index += 1
            continue
        timeslice = _json_int(path, instr, "timeslice", default=1, index=index)
        if timeslice < 0:
            raise TraceFormatError(
                path, f"instrs[{index}]: timeslice must be >= 0"
            )
        if op in ("ACT", "ACTIVATE"):
            rank = _json_int(path, instr, "rank", default=0, index=index)
            bank = _json_int(path, instr, "bank", default=0, index=index)
            row = _json_int(
                path, instr, "addr",
                default=instr.get("row"), index=index,
            )
            flat = rank * geometry.num_banks + bank
            if (
                row is None or not 0 <= row < geometry.rows_per_bank
                or not 0 <= flat < geometry.num_banks
            ):
                policy.handle(TraceFormatError(
                    path,
                    f"instrs[{index}]: ACT targets bank {flat}, row "
                    f"{row!r} outside the configured geometry",
                ))
            else:
                yield TraceRecord(
                    time_ps // 1000, flat, row, mark_attacks
                )
        elif op in ("NOP", "NOOP", "RD", "READ", "WR", "WRITE", "PRE",
                    "REF", "ZQC", "LOOP_END"):
            pass  # advances time only
        else:
            policy.handle(TraceFormatError(
                path, f"instrs[{index}]: unknown opcode {op!r}"
            ))
        time_ps += timeslice * tick_ps
        index += 1


def _json_int(path, obj: dict, key: str, default=None, index=None):
    value = obj.get(key, default)
    if value is None:
        if default is None and key in ("offset", "count"):
            where = f"instrs[{index}]: " if index is not None else ""
            raise TraceFormatError(
                path, f"{where}missing required field {key!r}"
            )
        return value
    if isinstance(value, bool) or not isinstance(value, int):
        where = f"instrs[{index}]: " if index is not None else ""
        raise TraceFormatError(
            path, f"{where}field {key!r} must be an integer, got {value!r}"
        )
    return value


def native_records(
    lines: Iterable[str],
    source: Union[str, Path],
    policy: ParseErrorPolicy,
    start_line: int = 2,
) -> Iterator[TraceRecord]:
    """Parse native-format record *lines* (header already consumed).

    Line-granular core shared by :func:`read_native` and the chunk-fed
    streaming sessions; honours the skip *policy* per record.
    """
    for line_no, line in enumerate(lines, start=start_line):
        line = line.strip()
        if not line:
            continue
        try:
            yield parse_trace_record(line, source, line_no)
        except TraceFormatError as exc:
            policy.handle(exc)


def read_native(
    path: Union[str, Path],
    policy: ParseErrorPolicy,
) -> Tuple[Optional[object], Iterator[TraceRecord]]:
    """Read a native ``#repro-trace:`` file (possibly gzipped).

    Returns ``(meta, records)`` -- the parsed :class:`TraceMeta` plus a
    streaming record iterator.  Unlike :func:`repro.traces.trace_io.
    load_trace` this honours the skip policy and gzip input.
    """
    handle = open_trace_text(path)
    try:
        meta = parse_trace_header(handle.readline().rstrip("\n"), path)
    except TraceFormatError:
        handle.close()
        raise

    def records() -> Iterator[TraceRecord]:
        with handle:
            yield from native_records(handle, path, policy)

    return meta, records()
