"""The ingest pipeline: external trace file -> replayable Trace.

:func:`ingest_trace` is the single entry point used by ``repro
ingest`` and by ``--trace-file`` on ``run``/``compare``/``campaign``:

1. sniff (or accept) the source format,
2. stream-parse the file through the matching reader, decoding
   addresses with the configured :class:`AddressMapper`,
3. sort the records and synthesise the :class:`TraceMeta` the
   simulation needs (external formats do not carry one),
4. round-trip the result through the digest-keyed npz cache so the
   next ingest of the same (file, spec) pair skips steps 2-3.

Even with the cache disabled the cold path round-trips through
``save_trace_npz``/``load_trace_npz`` when a cache is available, so a
cache hit can never produce different records than a miss.  The
returned :class:`IngestResult` carries full provenance for the
RunManifest (``extra["ingest"]``) and for ``render_ingest``.
"""

from __future__ import annotations

import json
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.config import SimConfig
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import span_of
from repro.traces.ingest.cache import IngestCache, cache_key, file_digest
from repro.traces.ingest.mapper import AddressMapper, resolve_mapper
from repro.traces.ingest.readers import (
    FORMAT_NAMES,
    ParseErrorPolicy,
    detect_format,
    read_dramsim,
    read_litex,
    read_native,
)
from repro.traces.record import Trace, TraceMeta, TraceRecord
from repro.traces.trace_io import TraceFormatError, load_trace_npz


@dataclass(frozen=True)
class IngestSpec:
    """Everything besides the source bytes that shapes the ingest output.

    Hashed into the cache key: two ingests share a cache entry iff
    their source digests *and* spec digests match.
    """

    format: str
    mapper_spec: Optional[str]  # canonical; None for formats without one
    clock_ns: float
    mark_attacks: Optional[bool]
    on_parse_error: str
    num_banks: int
    rows_per_bank: int
    interval_ns: int

    @property
    def digest(self) -> str:
        payload = json.dumps(
            {
                "format": self.format,
                "mapper": self.mapper_spec,
                "clock_ns": self.clock_ns,
                "mark_attacks": self.mark_attacks,
                "on_parse_error": self.on_parse_error,
                "num_banks": self.num_banks,
                "rows_per_bank": self.rows_per_bank,
                "interval_ns": self.interval_ns,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class IngestResult:
    """An ingested trace plus its provenance."""

    trace: Trace
    provenance: Dict[str, Any] = field(default_factory=dict)

    @property
    def cache_hit(self) -> bool:
        return bool(self.provenance.get("cache", {}).get("hit"))


def _interval_ns(config: SimConfig) -> int:
    return int(config.timing.refresh_interval_ns)


def build_spec(
    config: SimConfig,
    fmt: str,
    mapper: Optional[AddressMapper],
    clock_ns: float,
    mark_attacks: Optional[bool],
    on_parse_error: str,
) -> IngestSpec:
    return IngestSpec(
        format=fmt,
        mapper_spec=mapper.canonical_spec if mapper is not None else None,
        clock_ns=clock_ns if fmt == "dramsim" else 0.0,
        mark_attacks=mark_attacks,
        on_parse_error=on_parse_error,
        num_banks=config.geometry.num_banks,
        rows_per_bank=config.geometry.rows_per_bank,
        interval_ns=_interval_ns(config),
    )


def ingest_trace(
    path: Union[str, Path],
    config: SimConfig,
    format: str = "auto",
    mapper: str = "layout",
    clock_ns: float = 1.0,
    mark_attacks: Optional[bool] = None,
    on_parse_error: str = "raise",
    cache: Optional[IngestCache] = None,
    use_cache: bool = True,
    metrics: Optional[MetricsRegistry] = None,
    spans=None,
) -> IngestResult:
    """Ingest the external trace at *path* for simulation under *config*.

    *format* is one of ``auto``/``dramsim``/``litex``/``native``;
    *mapper* is a preset name or literal bit-field spec (dramsim only);
    *mark_attacks* overrides the format's ``is_attack`` default
    (dramsim: False, litex: True; native keeps its per-record flags).
    ``on_parse_error="skip"`` drops malformed records instead of
    raising.  Pass ``use_cache=False`` to force a re-parse.

    ``spans`` (a :class:`~repro.telemetry.spans.SpanTracer`) records an
    ``ingest`` span with ``parse``/``cache`` children, so trace
    ingestion shows up in the same timing tree as simulation.

    Raises :class:`TraceFormatError` on malformed input (respecting
    the skip policy for record-level problems) and ``FileNotFoundError``
    if *path* does not exist.
    """
    path = Path(path)
    if not path.is_file():
        raise FileNotFoundError(f"trace file not found: {path}")
    fmt = format.lower()
    if fmt == "auto":
        fmt = detect_format(path)
    if fmt not in FORMAT_NAMES:
        raise ValueError(
            f"unknown trace format {format!r} "
            f"(expected auto|{'|'.join(FORMAT_NAMES)})"
        )
    resolved_mapper = (
        resolve_mapper(mapper, config.geometry) if fmt == "dramsim" else None
    )
    spec = build_spec(
        config, fmt, resolved_mapper, clock_ns, mark_attacks, on_parse_error
    )
    if cache is None:
        cache = IngestCache(metrics=metrics)
    elif metrics is not None and cache.metrics is None:
        cache.metrics = metrics

    with span_of(spans, "ingest", format=fmt):
        source_digest = file_digest(path)
        key = cache_key(source_digest, spec.digest)
        if use_cache:
            with span_of(spans, "cache", op="load"):
                cached = cache.load(key)
            if cached is not None:
                trace, sidecar = cached
                provenance = dict(sidecar)
                provenance["source"] = str(path)
                provenance["cache"] = {
                    "enabled": True, "hit": True, "key": key,
                    "path": str(cache.entry_path(key)),
                }
                return IngestResult(trace=trace, provenance=provenance)

        policy = ParseErrorPolicy(mode=on_parse_error)
        with span_of(spans, "parse"):
            trace, file_meta = _parse(path, fmt, config, resolved_mapper,
                                      clock_ns, mark_attacks, policy)
        sidecar = {
            "schema": 1,
            "source_digest": source_digest,
            "format": fmt,
            "mapper": spec.mapper_spec,
            "spec_digest": spec.digest,
            "records": trace.count(),
            "skipped": policy.skipped,
            "skipped_samples": list(policy.samples),
            "meta": {
                "total_intervals": trace.meta.total_intervals,
                "interval_ns": trace.meta.interval_ns,
                "num_banks": trace.meta.num_banks,
            },
        }
        if file_meta is not None:
            sidecar["declared_meta"] = file_meta
        if use_cache:
            # replay through the same npz round-trip a later cache hit
            # will use, so hit and miss cannot produce different records
            with span_of(spans, "cache", op="store"):
                entry = cache.store(key, trace, sidecar)
                trace = load_trace_npz(entry)
        provenance = dict(sidecar)
        provenance["source"] = str(path)
        provenance["cache"] = {
            "enabled": use_cache, "hit": False, "key": key,
            "path": str(cache.entry_path(key)) if use_cache else None,
        }
        return IngestResult(trace=trace, provenance=provenance)


def _parse(
    path: Path,
    fmt: str,
    config: SimConfig,
    mapper: Optional[AddressMapper],
    clock_ns: float,
    mark_attacks: Optional[bool],
    policy: ParseErrorPolicy,
):
    """Run the format reader; return ``(trace, declared_meta_or_None)``."""
    declared: Optional[Dict[str, int]] = None
    if fmt == "native":
        meta, stream = read_native(path, policy)
        records = list(stream)
        declared = {
            "total_intervals": meta.total_intervals,
            "interval_ns": meta.interval_ns,
            "num_banks": meta.num_banks,
        }
        if mark_attacks is not None:
            records = [r._replace(is_attack=mark_attacks) for r in records]
        trace_meta = meta
    else:
        if fmt == "dramsim":
            assert mapper is not None
            attack = False if mark_attacks is None else mark_attacks
            stream = read_dramsim(
                path, mapper, config, policy,
                clock_ns=clock_ns, mark_attacks=attack,
            )
        else:  # litex
            attack = True if mark_attacks is None else mark_attacks
            stream = read_litex(path, config, policy, mark_attacks=attack)
        records = list(stream)
        trace_meta = _synthesize_meta(records, config)
    if not records:
        raise TraceFormatError(
            path,
            "no activation records after parsing"
            + (f" ({policy.skipped} skipped)" if policy.skipped else ""),
        )
    records.sort(key=lambda r: (r.time_ns, r.bank, r.row))
    return Trace(meta=trace_meta, records=records), declared


def _synthesize_meta(
    records: List[TraceRecord], config: SimConfig
) -> TraceMeta:
    """TraceMeta for formats that do not declare one.

    The interval length and bank count come from *config* (the trace
    will be replayed under it); the interval count covers the last
    record so ``validate_trace`` accepts the result.
    """
    interval_ns = _interval_ns(config)
    last = max((r.time_ns for r in records), default=0)
    return TraceMeta(
        total_intervals=max(1, -(-(last + 1) // interval_ns)),
        interval_ns=interval_ns,
        num_banks=config.geometry.num_banks,
    )
