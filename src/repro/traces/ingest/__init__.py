"""Ingestion of externally captured DRAM command traces.

Turns DRAMSim/Ramulator command logs, litex-rowhammer-tester payload
dumps and (gzipped) native trace files into replayable
:class:`~repro.traces.record.Trace` values, with declarative address
mapping and a content-digest-keyed npz cache.  See
``docs/trace-formats.md`` for the format specifications.
"""

from repro.traces.ingest.cache import (
    IngestCache,
    cache_key,
    default_cache_dir,
    file_digest,
)
from repro.traces.ingest.mapper import (
    AddressMapper,
    DecodedAddress,
    MapperSpecError,
    layout_spec,
    resolve_mapper,
)
from repro.traces.ingest.pipeline import IngestResult, IngestSpec, ingest_trace
from repro.traces.ingest.readers import (
    FORMAT_NAMES,
    ParseErrorPolicy,
    detect_format,
    dramsim_records,
    native_records,
    open_trace_text,
    read_dramsim,
    read_litex,
    read_native,
)
from repro.traces.ingest.streaming import (
    ChunkDecoder,
    StreamTruncated,
    iter_chunk_lines,
)

__all__ = [
    "AddressMapper",
    "DecodedAddress",
    "FORMAT_NAMES",
    "IngestCache",
    "IngestResult",
    "IngestSpec",
    "MapperSpecError",
    "ParseErrorPolicy",
    "ChunkDecoder",
    "StreamTruncated",
    "cache_key",
    "default_cache_dir",
    "detect_format",
    "dramsim_records",
    "file_digest",
    "ingest_trace",
    "iter_chunk_lines",
    "layout_spec",
    "native_records",
    "open_trace_text",
    "read_dramsim",
    "read_litex",
    "read_native",
    "resolve_mapper",
]
