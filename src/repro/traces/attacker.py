"""Row-Hammer attack pattern generators.

The paper's evaluation workload adds "an attacker code that has
aggressors increasing gradually from 1 to 20 aggressors per targeted
bank", hammering via cache flushing as in Kim et al. [12].  From the
DRAM's point of view an attack is simply a high-rate activation pattern
over chosen aggressor rows; this module provides those patterns:

* :func:`single_sided` -- hammer one aggressor next to a victim;
* :func:`double_sided` -- hammer both neighbours of a victim;
* :func:`n_aggressor` -- round-robin over many aggressors (the
  sequential multi-aggressor attack PARA/MRLoc are vulnerable to);
* :func:`flooding` -- one row at the maximum activation rate (the
  Section IV flooding experiment against TiVaPRoMi's weights).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.config import DRAMGeometry


@dataclass(frozen=True)
class AttackSpec:
    """A hammering campaign against one bank.

    ``acts_per_interval`` activations are spread round-robin over the
    aggressor rows during every interval in ``[start_interval,
    end_interval)``; ``end_interval = None`` runs to the end of the
    trace.

    ``rows_per_bank`` bounds the aggressor rows at construction time;
    every factory in this module passes the geometry's value, so an
    out-of-range aggressor fails here instead of deep inside the
    engine.  ``None`` (direct construction without a geometry at hand)
    defers the range check to :func:`repro.traces.mixer.build_trace`;
    negative rows are always rejected.
    """

    bank: int
    aggressors: Tuple[int, ...]
    acts_per_interval: int
    start_interval: int = 0
    end_interval: Optional[int] = None
    name: str = "attack"
    rows_per_bank: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.aggressors:
            raise ValueError("an attack needs at least one aggressor row")
        if self.acts_per_interval < 1:
            raise ValueError("acts_per_interval must be positive")
        if len(set(self.aggressors)) != len(self.aggressors):
            raise ValueError("duplicate aggressor rows")
        if self.start_interval < 0:
            raise ValueError("start_interval must be non-negative")
        if (
            self.end_interval is not None
            and self.end_interval <= self.start_interval
        ):
            raise ValueError("end_interval must be after start_interval")
        for row in self.aggressors:
            if row < 0:
                raise ValueError(f"aggressor row {row} is negative")
            if self.rows_per_bank is not None and row >= self.rows_per_bank:
                raise ValueError(
                    f"aggressor row {row} outside [0, {self.rows_per_bank})"
                )

    def active_in(self, interval: int) -> bool:
        if interval < self.start_interval:
            return False
        return self.end_interval is None or interval < self.end_interval

    def rows_for_interval(self, interval: int) -> List[int]:
        """Aggressor activations during *interval* (round-robin)."""
        if not self.active_in(interval):
            return []
        rows: List[int] = []
        offset = (interval - self.start_interval) * self.acts_per_interval
        for shot in range(self.acts_per_interval):
            rows.append(self.aggressors[(offset + shot) % len(self.aggressors)])
        return rows

    @property
    def victims(self) -> Tuple[int, ...]:
        """Rows adjacent to any aggressor (potential flip locations)."""
        out = set()
        for row in self.aggressors:
            out.add(row - 1)
            out.add(row + 1)
        return tuple(sorted(out - set(self.aggressors)))


def single_sided(
    geometry: DRAMGeometry,
    bank: int,
    victim: int,
    acts_per_interval: int,
    start_interval: int = 0,
    end_interval: Optional[int] = None,
) -> AttackSpec:
    """Hammer the row above *victim* (classic single-sided attack)."""
    geometry._check_row(victim)
    aggressor = victim + 1 if victim + 1 < geometry.rows_per_bank else victim - 1
    return AttackSpec(
        bank=bank,
        aggressors=(aggressor,),
        acts_per_interval=acts_per_interval,
        start_interval=start_interval,
        end_interval=end_interval,
        name=f"single-sided@{victim}",
        rows_per_bank=geometry.rows_per_bank,
    )


def double_sided(
    geometry: DRAMGeometry,
    bank: int,
    victim: int,
    acts_per_interval: int,
    start_interval: int = 0,
    end_interval: Optional[int] = None,
) -> AttackSpec:
    """Hammer both neighbours of *victim*: reaches the threshold fastest."""
    if not 0 < victim < geometry.rows_per_bank - 1:
        raise ValueError("double-sided attack needs an interior victim row")
    return AttackSpec(
        bank=bank,
        aggressors=(victim - 1, victim + 1),
        acts_per_interval=acts_per_interval,
        start_interval=start_interval,
        end_interval=end_interval,
        name=f"double-sided@{victim}",
        rows_per_bank=geometry.rows_per_bank,
    )


def n_aggressor(
    geometry: DRAMGeometry,
    bank: int,
    count: int,
    acts_per_interval: int,
    start_interval: int = 0,
    end_interval: Optional[int] = None,
    first_row: int = 1,
    spacing: int = 4,
) -> AttackSpec:
    """Round-robin over *count* aggressors spaced apart in the array.

    This is the sequential multi-aggressor pattern from ProHit [17]
    that defeats table-based trackers by thrashing their entries.
    """
    rows = tuple(first_row + index * spacing for index in range(count))
    if rows and rows[-1] >= geometry.rows_per_bank:
        raise ValueError("aggressor rows exceed the bank")
    return AttackSpec(
        bank=bank,
        aggressors=rows,
        acts_per_interval=acts_per_interval,
        start_interval=start_interval,
        end_interval=end_interval,
        name=f"{count}-aggressor",
        rows_per_bank=geometry.rows_per_bank,
    )


def flooding(
    geometry: DRAMGeometry,
    bank: int,
    row: int,
    acts_per_interval: int,
    start_interval: int = 0,
    end_interval: Optional[int] = None,
) -> AttackSpec:
    """Flood a single row at (up to) the maximum activation rate."""
    geometry._check_row(row)
    return AttackSpec(
        bank=bank,
        aggressors=(row,),
        acts_per_interval=acts_per_interval,
        start_interval=start_interval,
        end_interval=end_interval,
        name=f"flooding@{row}",
        rows_per_bank=geometry.rows_per_bank,
    )


def ramped_multi_aggressor(
    geometry: DRAMGeometry,
    bank: int,
    total_intervals: int,
    max_aggressors: int = 20,
    acts_per_interval: int = 80,
    first_row: int = 100,
    spacing: int = 2,
) -> List[AttackSpec]:
    """The paper's attacker: aggressors ramp 1 -> *max_aggressors*.

    The trace is split into ``max_aggressors`` equal segments; segment
    ``k`` hammers the first ``k + 1`` aggressor rows round-robin at a
    constant total rate, mirroring "aggressors increasing gradually
    from 1 to 20 aggressors per targeted bank" (Section IV).  The
    default ``spacing = 2`` places aggressors on every other row (the
    many-sided pattern of [12]), so interior victims are disturbed by
    two aggressors and an unmitigated window accumulates well past the
    139 K flip threshold.
    """
    if max_aggressors < 1:
        raise ValueError("max_aggressors must be positive")
    segment = max(1, total_intervals // max_aggressors)
    specs: List[AttackSpec] = []
    for index in range(max_aggressors):
        count = index + 1
        rows = tuple(first_row + j * spacing for j in range(count))
        if rows[-1] >= geometry.rows_per_bank:
            raise ValueError("aggressor rows exceed the bank")
        start = index * segment
        if start >= total_intervals:
            # short trace: the ramp stops here (these tail segments
            # would never activate anyway)
            break
        end = total_intervals if index == max_aggressors - 1 else min(
            (index + 1) * segment, total_intervals
        )
        specs.append(
            AttackSpec(
                bank=bank,
                aggressors=rows,
                acts_per_interval=acts_per_interval,
                start_interval=start,
                end_interval=end,
                name=f"ramp-{count}-aggressors",
                rows_per_bank=geometry.rows_per_bank,
            )
        )
    return specs
