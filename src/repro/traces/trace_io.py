"""Trace serialisation.

Two formats:

* **text** (:func:`save_trace` / :func:`load_trace`) -- a JSON header
  line followed by one CSV line per record; easy to inspect, diff, and
  stream.  This is the interchange point where externally captured
  traces (e.g. converted gem5 output) enter the pipeline.
* **npz** (:func:`save_trace_npz` / :func:`load_trace_npz`) -- columnar
  numpy arrays; ~10x smaller and far faster for the multi-million-
  record traces of full-scale runs.

Externally captured traces in foreign formats (DRAMSim-style command
logs, litex-rowhammer-tester payload dumps) enter through
:mod:`repro.traces.ingest`, which reuses the parsing helpers here for
the native format and raises the same :class:`TraceFormatError` on
malformed input.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, Optional, TextIO, Union

from repro.traces.record import Trace, TraceMeta, TraceRecord

_HEADER_PREFIX = "#repro-trace:"

#: header fields every native trace must declare
_HEADER_KEYS = ("total_intervals", "interval_ns", "num_banks")


class TraceFormatError(ValueError):
    """A trace file violates its format contract.

    Carries the offending ``path`` and (when known) 1-based ``line_no``
    so callers -- and the ``--on-parse-error`` policy of the ingest
    pipeline -- can point at the exact input line.  Subclasses
    :class:`ValueError` so pre-existing ``except ValueError`` callers
    keep working.
    """

    def __init__(self, path, message: str, line_no: Optional[int] = None):
        location = f"{path}:{line_no}" if line_no is not None else str(path)
        super().__init__(f"{location}: {message}")
        self.path = str(path)
        self.line_no = line_no
        self.reason = message


def parse_trace_header(line: str, path) -> TraceMeta:
    """Parse and validate the ``#repro-trace:`` header line.

    Raises :class:`TraceFormatError` (pointing at line 1 of *path*)
    when the prefix is missing, the JSON payload does not parse, a
    required field is absent, or a field is not a positive integer.
    """
    if not line:
        raise TraceFormatError(
            path, "empty file (expected a '#repro-trace:' header line)"
        )
    if not line.startswith(_HEADER_PREFIX):
        raise TraceFormatError(
            path,
            "not a repro trace file (first line must start with "
            f"{_HEADER_PREFIX!r})",
            line_no=1,
        )
    try:
        header = json.loads(line[len(_HEADER_PREFIX):])
    except json.JSONDecodeError as exc:
        raise TraceFormatError(
            path, f"malformed header JSON: {exc}", line_no=1
        ) from exc
    if not isinstance(header, dict):
        raise TraceFormatError(
            path, f"header must be a JSON object, got {type(header).__name__}",
            line_no=1,
        )
    values = {}
    for key in _HEADER_KEYS:
        if key not in header:
            raise TraceFormatError(
                path, f"header missing required field {key!r}", line_no=1
            )
        try:
            values[key] = int(header[key])
        except (TypeError, ValueError) as exc:
            raise TraceFormatError(
                path,
                f"header field {key!r} must be an integer, "
                f"got {header[key]!r}",
                line_no=1,
            ) from exc
        if values[key] < 1:
            raise TraceFormatError(
                path, f"header field {key!r} must be positive, "
                      f"got {values[key]}", line_no=1
            )
    return TraceMeta(**values)


def parse_trace_record(line: str, path, line_no: int) -> TraceRecord:
    """Parse one ``time_ns,bank,row,is_attack`` record line.

    Raises :class:`TraceFormatError` with *path* and *line_no* on a
    field-count or integer-conversion failure.
    """
    try:
        time_ns, bank, row, is_attack = line.split(",")
        return TraceRecord(
            int(time_ns), int(bank), int(row), bool(int(is_attack))
        )
    except ValueError as exc:
        raise TraceFormatError(
            path,
            f"bad record {line!r} (expected 'time_ns,bank,row,is_attack' "
            "with integer fields)",
            line_no=line_no,
        ) from exc


def read_trace_stream(handle: TextIO, path) -> Iterator[TraceRecord]:
    """Yield the records of an already-opened native trace *handle*.

    Assumes the header line has been consumed.  Blank lines are
    ignored; anything else must parse as a record.
    """
    for line_no, line in enumerate(handle, start=2):
        line = line.strip()
        if not line:
            continue
        yield parse_trace_record(line, path, line_no)


def save_trace(trace: Trace, path: Union[str, Path]) -> int:
    """Write *trace* to *path*; returns the number of records written."""
    path = Path(path)
    count = 0
    header = {
        "total_intervals": trace.meta.total_intervals,
        "interval_ns": trace.meta.interval_ns,
        "num_banks": trace.meta.num_banks,
    }
    with path.open("w", encoding="utf-8") as handle:
        handle.write(_HEADER_PREFIX + json.dumps(header) + "\n")
        for record in trace:
            handle.write(
                f"{record.time_ns},{record.bank},{record.row},"
                f"{int(record.is_attack)}\n"
            )
            count += 1
    return count


def load_trace(path: Union[str, Path], lazy: bool = False) -> Trace:
    """Read a trace written by :func:`save_trace`.

    With ``lazy=True`` records stream from disk on iteration (one pass
    only); otherwise they are materialised into a list.  Malformed
    input raises :class:`TraceFormatError` naming the file and line.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        header_line = handle.readline()
    meta = parse_trace_header(header_line, path)

    def read_records() -> Iterator[TraceRecord]:
        with path.open("r", encoding="utf-8") as handle:
            handle.readline()  # header
            yield from read_trace_stream(handle, path)

    trace = Trace(meta=meta, records=read_records())
    if not lazy:
        trace.materialize()
    return trace


def save_trace_npz(trace: Trace, path: Union[str, Path]) -> int:
    """Write *trace* as columnar numpy arrays; returns the record count."""
    import numpy as np

    trace.materialize()
    records = trace.records
    count = len(records)
    times = np.fromiter((r.time_ns for r in records), dtype=np.int64, count=count)
    banks = np.fromiter((r.bank for r in records), dtype=np.int16, count=count)
    rows = np.fromiter((r.row for r in records), dtype=np.int32, count=count)
    attacks = np.fromiter(
        (r.is_attack for r in records), dtype=np.bool_, count=count
    )
    np.savez_compressed(
        Path(path),
        times=times,
        banks=banks,
        rows=rows,
        attacks=attacks,
        meta=np.array(
            [trace.meta.total_intervals, trace.meta.interval_ns,
             trace.meta.num_banks],
            dtype=np.int64,
        ),
    )
    return count


def load_trace_npz(path: Union[str, Path]) -> Trace:
    """Read a trace written by :func:`save_trace_npz`."""
    import numpy as np

    with np.load(Path(path)) as data:
        total_intervals, interval_ns, num_banks = (int(v) for v in data["meta"])
        records = [
            TraceRecord(int(t), int(b), int(r), bool(a))
            for t, b, r, a in zip(
                data["times"], data["banks"], data["rows"], data["attacks"]
            )
        ]
    meta = TraceMeta(
        total_intervals=total_intervals,
        interval_ns=interval_ns,
        num_banks=num_banks,
    )
    return Trace(meta=meta, records=records)
