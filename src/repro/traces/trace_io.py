"""Trace serialisation.

Two formats:

* **text** (:func:`save_trace` / :func:`load_trace`) -- a JSON header
  line followed by one CSV line per record; easy to inspect, diff, and
  stream.  This is the interchange point where externally captured
  traces (e.g. converted gem5 output) enter the pipeline.
* **npz** (:func:`save_trace_npz` / :func:`load_trace_npz`) -- columnar
  numpy arrays; ~10x smaller and far faster for the multi-million-
  record traces of full-scale runs.  numpy is optional: without it a
  pure-python codec reads and writes the same on-disk format (an npz is
  a zip archive of npy members), so caches and campaign spools written
  in one environment stay readable in the other.

Externally captured traces in foreign formats (DRAMSim-style command
logs, litex-rowhammer-tester payload dumps) enter through
:mod:`repro.traces.ingest`, which reuses the parsing helpers here for
the native format and raises the same :class:`TraceFormatError` on
malformed input.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, Optional, TextIO, Union

from repro.traces.record import Trace, TraceMeta, TraceRecord

_HEADER_PREFIX = "#repro-trace:"

#: header fields every native trace must declare
_HEADER_KEYS = ("total_intervals", "interval_ns", "num_banks")


class TraceFormatError(ValueError):
    """A trace file violates its format contract.

    Carries the offending ``path`` and (when known) 1-based ``line_no``
    so callers -- and the ``--on-parse-error`` policy of the ingest
    pipeline -- can point at the exact input line.  Subclasses
    :class:`ValueError` so pre-existing ``except ValueError`` callers
    keep working.
    """

    def __init__(self, path, message: str, line_no: Optional[int] = None):
        location = f"{path}:{line_no}" if line_no is not None else str(path)
        super().__init__(f"{location}: {message}")
        self.path = str(path)
        self.line_no = line_no
        self.reason = message


def parse_trace_header(line: str, path) -> TraceMeta:
    """Parse and validate the ``#repro-trace:`` header line.

    Raises :class:`TraceFormatError` (pointing at line 1 of *path*)
    when the prefix is missing, the JSON payload does not parse, a
    required field is absent, or a field is not a positive integer.
    """
    if not line:
        raise TraceFormatError(
            path, "empty file (expected a '#repro-trace:' header line)"
        )
    if not line.startswith(_HEADER_PREFIX):
        raise TraceFormatError(
            path,
            "not a repro trace file (first line must start with "
            f"{_HEADER_PREFIX!r})",
            line_no=1,
        )
    try:
        header = json.loads(line[len(_HEADER_PREFIX):])
    except json.JSONDecodeError as exc:
        raise TraceFormatError(
            path, f"malformed header JSON: {exc}", line_no=1
        ) from exc
    if not isinstance(header, dict):
        raise TraceFormatError(
            path, f"header must be a JSON object, got {type(header).__name__}",
            line_no=1,
        )
    values = {}
    for key in _HEADER_KEYS:
        if key not in header:
            raise TraceFormatError(
                path, f"header missing required field {key!r}", line_no=1
            )
        try:
            values[key] = int(header[key])
        except (TypeError, ValueError) as exc:
            raise TraceFormatError(
                path,
                f"header field {key!r} must be an integer, "
                f"got {header[key]!r}",
                line_no=1,
            ) from exc
        if values[key] < 1:
            raise TraceFormatError(
                path, f"header field {key!r} must be positive, "
                      f"got {values[key]}", line_no=1
            )
    return TraceMeta(**values)


def parse_trace_record(line: str, path, line_no: int) -> TraceRecord:
    """Parse one ``time_ns,bank,row,is_attack`` record line.

    Raises :class:`TraceFormatError` with *path* and *line_no* on a
    field-count or integer-conversion failure.
    """
    try:
        time_ns, bank, row, is_attack = line.split(",")
        return TraceRecord(
            int(time_ns), int(bank), int(row), bool(int(is_attack))
        )
    except ValueError as exc:
        raise TraceFormatError(
            path,
            f"bad record {line!r} (expected 'time_ns,bank,row,is_attack' "
            "with integer fields)",
            line_no=line_no,
        ) from exc


def read_trace_stream(handle: TextIO, path) -> Iterator[TraceRecord]:
    """Yield the records of an already-opened native trace *handle*.

    Assumes the header line has been consumed.  Blank lines are
    ignored; anything else must parse as a record.
    """
    for line_no, line in enumerate(handle, start=2):
        line = line.strip()
        if not line:
            continue
        yield parse_trace_record(line, path, line_no)


def save_trace(trace: Trace, path: Union[str, Path]) -> int:
    """Write *trace* to *path*; returns the number of records written."""
    path = Path(path)
    count = 0
    header = {
        "total_intervals": trace.meta.total_intervals,
        "interval_ns": trace.meta.interval_ns,
        "num_banks": trace.meta.num_banks,
    }
    with path.open("w", encoding="utf-8") as handle:
        handle.write(_HEADER_PREFIX + json.dumps(header) + "\n")
        for record in trace:
            handle.write(
                f"{record.time_ns},{record.bank},{record.row},"
                f"{int(record.is_attack)}\n"
            )
            count += 1
    return count


def load_trace(path: Union[str, Path], lazy: bool = False) -> Trace:
    """Read a trace written by :func:`save_trace`.

    With ``lazy=True`` records stream from disk on iteration (one pass
    only); otherwise they are materialised into a list.  Malformed
    input raises :class:`TraceFormatError` naming the file and line.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        header_line = handle.readline()
    meta = parse_trace_header(header_line, path)

    def read_records() -> Iterator[TraceRecord]:
        with path.open("r", encoding="utf-8") as handle:
            handle.readline()  # header
            yield from read_trace_stream(handle, path)

    trace = Trace(meta=meta, records=read_records())
    if not lazy:
        trace.materialize()
    return trace


def save_trace_npz(trace: Trace, path: Union[str, Path]) -> int:
    """Write *trace* as columnar numpy arrays; returns the record count.

    Without numpy the pure-python writer emits the same zip-of-npy
    container (:func:`_save_npz_pure`), byte-compatible with
    :func:`numpy.load`.
    """
    trace.materialize()
    records = trace.records
    count = len(records)
    try:
        import numpy as np
    except ImportError:
        _save_npz_pure(trace, path)
        return count
    times = np.fromiter((r.time_ns for r in records), dtype=np.int64, count=count)
    banks = np.fromiter((r.bank for r in records), dtype=np.int16, count=count)
    rows = np.fromiter((r.row for r in records), dtype=np.int32, count=count)
    attacks = np.fromiter(
        (r.is_attack for r in records), dtype=np.bool_, count=count
    )
    np.savez_compressed(
        Path(path),
        times=times,
        banks=banks,
        rows=rows,
        attacks=attacks,
        meta=np.array(
            [trace.meta.total_intervals, trace.meta.interval_ns,
             trace.meta.num_banks],
            dtype=np.int64,
        ),
    )
    return count


def load_trace_npz(path: Union[str, Path]) -> Trace:
    """Read a trace written by :func:`save_trace_npz`.

    Falls back to the pure-python npz reader when numpy is absent;
    either reader accepts archives written by either writer.
    """
    try:
        import numpy as np
    except ImportError:
        return _load_npz_pure(path)
    with np.load(Path(path)) as data:
        total_intervals, interval_ns, num_banks = (int(v) for v in data["meta"])
        records = [
            TraceRecord(int(t), int(b), int(r), bool(a))
            for t, b, r, a in zip(
                data["times"], data["banks"], data["rows"], data["attacks"]
            )
        ]
    meta = TraceMeta(
        total_intervals=total_intervals,
        interval_ns=interval_ns,
        num_banks=num_banks,
    )
    return Trace(meta=meta, records=records)


# ---------------------------------------------------------------------------
# pure-python npy/npz codec (numpy-free fallback)
#
# An ``.npz`` file is a zip archive whose members are ``.npy`` files;
# an ``.npy`` file is a fixed magic + ascii header dict + raw
# little-endian column bytes.  Implementing the v1.0 subset we emit
# (1-D ``<i8``/``<i4``/``<i2``/``|b1`` columns) keeps the no-numpy lane
# on the exact same interchange format -- caches written with numpy
# load without it and vice versa -- instead of forking into a
# second, incompatible spool format.
# ---------------------------------------------------------------------------

_NPY_MAGIC = b"\x93NUMPY"

#: npy descr -> struct per-element format code for the dtypes we emit
_NPY_DESCRS = {"<i8": "q", "<i4": "i", "<i2": "h", "|b1": "?"}


def _npy_bytes(values, descr: str) -> bytes:
    """Serialise a 1-D column as an npy v1.0 member body."""
    import struct

    header = (
        "{'descr': '%s', 'fortran_order': False, 'shape': (%d,), }"
        % (descr, len(values))
    )
    # pad with spaces so magic+version+len+header is 64-byte aligned,
    # ending in newline, exactly as numpy.lib.format writes it
    unpadded = len(_NPY_MAGIC) + 2 + 2 + len(header) + 1
    header = header + " " * (-unpadded % 64) + "\n"
    return b"".join([
        _NPY_MAGIC, b"\x01\x00",
        struct.pack("<H", len(header)), header.encode("ascii"),
        struct.pack("<%d%s" % (len(values), _NPY_DESCRS[descr]), *values),
    ])


def _parse_npy(data: bytes, path, name: str):
    """Decode an npy member back into a list of python scalars."""
    import ast
    import struct

    def bad(reason: str):
        return TraceFormatError(path, f"npz member {name!r}: {reason}")

    if data[: len(_NPY_MAGIC)] != _NPY_MAGIC:
        raise bad("not an npy file (bad magic)")
    major = data[len(_NPY_MAGIC)]
    offset = len(_NPY_MAGIC) + 2
    if major == 1:
        (header_len,) = struct.unpack_from("<H", data, offset)
        offset += 2
    elif major in (2, 3):
        (header_len,) = struct.unpack_from("<I", data, offset)
        offset += 4
    else:
        raise bad(f"unsupported npy version {major}")
    try:
        header = ast.literal_eval(
            data[offset:offset + header_len].decode("latin-1").strip()
        )
        descr = header["descr"]
        shape = header["shape"]
    except Exception as exc:
        raise bad(f"malformed header: {exc}") from exc
    if header.get("fortran_order") or len(shape) != 1:
        raise bad(f"expected a 1-D C-order column, got {header!r}")
    if descr not in _NPY_DESCRS:
        raise bad(f"unsupported dtype {descr!r}")
    count = shape[0]
    code = _NPY_DESCRS[descr]
    body = data[offset + header_len:]
    expected = count * struct.calcsize("<" + code)
    if len(body) < expected:
        raise bad(f"truncated data ({len(body)} bytes, need {expected})")
    return list(struct.unpack_from("<%d%s" % (count, code), body))


def _save_npz_pure(trace: Trace, path: Union[str, Path]) -> None:
    import zipfile

    trace.materialize()
    records = trace.records
    columns = [
        ("times", [r.time_ns for r in records], "<i8"),
        ("banks", [r.bank for r in records], "<i2"),
        ("rows", [r.row for r in records], "<i4"),
        ("attacks", [r.is_attack for r in records], "|b1"),
        ("meta", [trace.meta.total_intervals, trace.meta.interval_ns,
                  trace.meta.num_banks], "<i8"),
    ]
    with zipfile.ZipFile(
        Path(path), "w", compression=zipfile.ZIP_DEFLATED
    ) as archive:
        for name, values, descr in columns:
            archive.writestr(f"{name}.npy", _npy_bytes(values, descr))


def _load_npz_pure(path: Union[str, Path]) -> Trace:
    import zipfile

    path = Path(path)
    columns = {}
    try:
        with zipfile.ZipFile(path) as archive:
            for member in ("times", "banks", "rows", "attacks", "meta"):
                columns[member] = _parse_npy(
                    archive.read(f"{member}.npy"), path, f"{member}.npy"
                )
    except (zipfile.BadZipFile, KeyError) as exc:
        raise TraceFormatError(path, f"unreadable npz archive: {exc}") from exc
    total_intervals, interval_ns, num_banks = (
        int(v) for v in columns["meta"]
    )
    records = [
        TraceRecord(int(t), int(b), int(r), bool(a))
        for t, b, r, a in zip(
            columns["times"], columns["banks"],
            columns["rows"], columns["attacks"],
        )
    ]
    meta = TraceMeta(
        total_intervals=total_intervals,
        interval_ns=interval_ns,
        num_banks=num_banks,
    )
    return Trace(meta=meta, records=records)
