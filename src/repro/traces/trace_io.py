"""Trace serialisation.

Two formats:

* **text** (:func:`save_trace` / :func:`load_trace`) -- a JSON header
  line followed by one CSV line per record; easy to inspect, diff, and
  stream.  This is the interchange point where externally captured
  traces (e.g. converted gem5 output) enter the pipeline.
* **npz** (:func:`save_trace_npz` / :func:`load_trace_npz`) -- columnar
  numpy arrays; ~10x smaller and far faster for the multi-million-
  record traces of full-scale runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, Union

from repro.traces.record import Trace, TraceMeta, TraceRecord

_HEADER_PREFIX = "#repro-trace:"


def save_trace(trace: Trace, path: Union[str, Path]) -> int:
    """Write *trace* to *path*; returns the number of records written."""
    path = Path(path)
    count = 0
    header = {
        "total_intervals": trace.meta.total_intervals,
        "interval_ns": trace.meta.interval_ns,
        "num_banks": trace.meta.num_banks,
    }
    with path.open("w", encoding="utf-8") as handle:
        handle.write(_HEADER_PREFIX + json.dumps(header) + "\n")
        for record in trace:
            handle.write(
                f"{record.time_ns},{record.bank},{record.row},"
                f"{int(record.is_attack)}\n"
            )
            count += 1
    return count


def load_trace(path: Union[str, Path], lazy: bool = False) -> Trace:
    """Read a trace written by :func:`save_trace`.

    With ``lazy=True`` records stream from disk on iteration (one pass
    only); otherwise they are materialised into a list.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        header_line = handle.readline()
    if not header_line.startswith(_HEADER_PREFIX):
        raise ValueError(f"{path} is not a repro trace file")
    header = json.loads(header_line[len(_HEADER_PREFIX):])
    meta = TraceMeta(
        total_intervals=int(header["total_intervals"]),
        interval_ns=int(header["interval_ns"]),
        num_banks=int(header["num_banks"]),
    )

    def read_records() -> Iterator[TraceRecord]:
        with path.open("r", encoding="utf-8") as handle:
            handle.readline()  # header
            for line_no, line in enumerate(handle, start=2):
                line = line.strip()
                if not line:
                    continue
                try:
                    time_ns, bank, row, is_attack = line.split(",")
                    yield TraceRecord(
                        int(time_ns), int(bank), int(row), bool(int(is_attack))
                    )
                except ValueError as exc:
                    raise ValueError(f"{path}:{line_no}: bad record {line!r}") from exc

    trace = Trace(meta=meta, records=read_records())
    if not lazy:
        trace.materialize()
    return trace


def save_trace_npz(trace: Trace, path: Union[str, Path]) -> int:
    """Write *trace* as columnar numpy arrays; returns the record count."""
    import numpy as np

    trace.materialize()
    records = trace.records
    count = len(records)
    times = np.fromiter((r.time_ns for r in records), dtype=np.int64, count=count)
    banks = np.fromiter((r.bank for r in records), dtype=np.int16, count=count)
    rows = np.fromiter((r.row for r in records), dtype=np.int32, count=count)
    attacks = np.fromiter(
        (r.is_attack for r in records), dtype=np.bool_, count=count
    )
    np.savez_compressed(
        Path(path),
        times=times,
        banks=banks,
        rows=rows,
        attacks=attacks,
        meta=np.array(
            [trace.meta.total_intervals, trace.meta.interval_ns,
             trace.meta.num_banks],
            dtype=np.int64,
        ),
    )
    return count


def load_trace_npz(path: Union[str, Path]) -> Trace:
    """Read a trace written by :func:`save_trace_npz`."""
    import numpy as np

    with np.load(Path(path)) as data:
        total_intervals, interval_ns, num_banks = (int(v) for v in data["meta"])
        records = [
            TraceRecord(int(t), int(b), int(r), bool(a))
            for t, b, r, a in zip(
                data["times"], data["banks"], data["rows"], data["attacks"]
            )
        ]
    meta = TraceMeta(
        total_intervals=total_intervals,
        interval_ns=interval_ns,
        num_banks=num_banks,
    )
    return Trace(meta=meta, records=records)
