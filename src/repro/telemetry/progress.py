"""One progress vocabulary for every long-running loop.

Before this module the repo had two ad-hoc progress-callback
conventions: ``parallel_map(..., progress=fn)`` called ``fn(done,
total)`` with completed shard counts, and adversary
``run_search(..., progress=fn)`` called ``fn(evaluations, budget)``.
Both survive unchanged as thin adapters around a single
:class:`ProgressEvent` record that also carries *what kind of unit* is
being counted and arbitrary context attributes -- which is what the
status bus and the ``campaign-status --follow`` view need to render
heterogeneous producers uniformly.

Producers build a :class:`ProgressDispatcher`, hand it any mix of
legacy ``(done, total)`` callables and :class:`ProgressEvent`
listeners, and emit once per step; the dispatcher fans out and never
lets a listener's exception kill the producing loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

#: a listener receiving the full event record
ProgressListener = Callable[["ProgressEvent"], None]
#: the legacy convention: ``fn(done, total)``
LegacyProgress = Callable[[int, int], None]


@dataclass(frozen=True)
class ProgressEvent:
    """A point-in-time progress report from one producing loop.

    ``kind`` names the producer (``"campaign"``, ``"parallel_map"``,
    ``"adversary"``, ...), ``unit`` names what ``done``/``total``
    count (``"cells"``, ``"shards"``, ``"evaluations"``).
    """

    kind: str
    done: int
    total: int
    unit: str = "items"
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def fraction(self) -> Optional[float]:
        if self.total <= 0:
            return None
        return min(1.0, self.done / self.total)

    @property
    def complete(self) -> bool:
        return self.total > 0 and self.done >= self.total

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "done": self.done,
            "total": self.total,
            "unit": self.unit,
            "attrs": dict(self.attrs),
        }


def adapt_legacy(callback: LegacyProgress) -> ProgressListener:
    """Wrap an old ``fn(done, total)`` callable as an event listener."""

    def listener(event: ProgressEvent) -> None:
        callback(event.done, event.total)

    return listener


class ProgressDispatcher:
    """Fans one stream of :class:`ProgressEvent` out to many listeners.

    Legacy ``(done, total)`` callables and event listeners coexist;
    listener exceptions are swallowed so observability can never abort
    the work it is observing.
    """

    def __init__(self, kind: str, unit: str = "items") -> None:
        self.kind = kind
        self.unit = unit
        self._listeners: List[ProgressListener] = []

    def add_listener(self, listener: Optional[ProgressListener]) -> None:
        if listener is not None:
            self._listeners.append(listener)

    def add_legacy(self, callback: Optional[LegacyProgress]) -> None:
        if callback is not None:
            self._listeners.append(adapt_legacy(callback))

    def __bool__(self) -> bool:
        return bool(self._listeners)

    def emit(self, done: int, total: int, **attrs: Any) -> ProgressEvent:
        event = ProgressEvent(
            kind=self.kind, done=done, total=total, unit=self.unit,
            attrs=attrs,
        )
        for listener in self._listeners:
            try:
                listener(event)
            except Exception:  # noqa: BLE001 - observers must not kill work
                continue
        return event
