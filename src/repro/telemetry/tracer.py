"""Tracer implementations: where telemetry events go.

The engines accept any object satisfying the :class:`Tracer` protocol.
``enabled`` is checked **once** at engine start: a disabled tracer
(:class:`NullTracer`, the default behaviour of ``tracer=None``) costs
nothing on the hot path because the engine never constructs events at
all.  Enabled tracers receive every event as a plain dict (see
:mod:`repro.telemetry.events` for the schema).
"""

from __future__ import annotations

import json
from typing import IO, List, Optional

try:  # pragma: no cover - Protocol exists on every supported Python
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


from repro.telemetry.events import Event


@runtime_checkable
class Tracer(Protocol):
    """Anything that can receive telemetry events."""

    #: engines skip event construction entirely when this is False
    enabled: bool

    def emit(self, event: Event) -> None:
        """Receive one event dict (never mutated after emission)."""


class NullTracer:
    """The zero-cost default: claims to be disabled, drops everything.

    Passing ``tracer=NullTracer()`` is exactly equivalent to passing
    ``tracer=None`` -- the engines see ``enabled`` is False and never
    build a single event (a guarantee pinned by the overhead guard in
    ``benchmarks/bench_fast_engine.py``).
    """

    enabled = False

    def emit(self, event: Event) -> None:  # pragma: no cover - never called
        pass


class RecordingTracer:
    """Keeps every event in memory; the workhorse of tests and notebooks."""

    enabled = True

    def __init__(self) -> None:
        self.events: List[Event] = []

    def emit(self, event: Event) -> None:
        self.events.append(event)

    def kinds(self) -> List[str]:
        return [event["kind"] for event in self.events]

    def of_kind(self, kind: str) -> List[Event]:
        return [event for event in self.events if event["kind"] == kind]

    def __len__(self) -> int:
        return len(self.events)


class JsonlTracer:
    """Streams events to a file, one compact JSON object per line.

    Usable as a context manager; :meth:`close` is idempotent.  The
    output is append-ordered, so ``time_ns`` is non-decreasing down the
    file and line-oriented tools (``grep``, ``jq``, ``wc -l``) work
    directly on partial traces of interrupted runs.
    """

    enabled = True

    def __init__(self, path: str) -> None:
        self.path = path
        self.events_written = 0
        self._fh: Optional[IO[str]] = open(path, "w", encoding="utf-8")

    def emit(self, event: Event) -> None:
        if self._fh is None:
            raise ValueError(f"tracer for {self.path} is closed")
        self._fh.write(json.dumps(event, separators=(",", ":")))
        self._fh.write("\n")
        self.events_written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlTracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_jsonl_events(path: str) -> List[Event]:
    """Load a JSONL event trace back into a list of event dicts."""
    events: List[Event] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
