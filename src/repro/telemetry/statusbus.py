"""Filesystem status bus: live campaign progress without a server.

A :class:`StatusBus` is a directory where campaign participants
publish small JSON records with the same atomicity discipline as
:class:`~repro.campaign.store.CampaignStore` (temp file +
``os.replace``), so a reader polling the directory -- the
``campaign-status --follow`` view, a Prometheus sidecar, a human with
``cat`` -- **never observes a torn record**, no matter when a writer
is SIGKILLed::

    <status_dir>/
        campaign.json           # rolling CampaignSnapshot from the runner
        workers/
            <shard-id>.json     # one WorkerHeartbeat per active shard

Workers publish :class:`WorkerHeartbeat` records (shard id, cells
done/total, last-event monotonic stamp, retry count, degraded flag);
the runner publishes a rolling :class:`CampaignSnapshot` as shards
complete.  Heartbeat staleness uses ``time.monotonic()`` -- on Linux a
system-wide per-boot clock, so stamps from different worker processes
on one host are directly comparable and wall-clock jumps cannot fake
or mask a hang.  :meth:`StatusBus.stale_workers` is how a hung worker
surfaces *before* the retry policy's ``shard_timeout`` kill fires.

The bus is pure observation: nothing in the simulation stack reads it,
its directory defaults to ``<checkpoint_dir>/status`` but is never
part of the campaign spec or config hash, and deleting it mid-run
costs nothing but the live view -- enabling or disabling observability
can therefore never invalidate a ``--resume``.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

#: bump when the status record layout changes incompatibly
STATUS_SCHEMA_VERSION = 1

STATUS_DIRNAME = "status"
SNAPSHOT_FILENAME = "campaign.json"
WORKERS_DIRNAME = "workers"

#: a running shard with no heartbeat for this long is considered stale
DEFAULT_STALE_AFTER_S = 15.0


def write_json_atomic(path: Path, payload: Any) -> None:
    """Write *payload* as canonical JSON via temp file + ``os.replace``.

    The durability primitive shared by every persistence layer in the
    repo -- campaign shards and adversary generations import it from
    here (re-exported by :mod:`repro.campaign.store` for
    compatibility), and every status-bus record goes through it: a
    process killed mid-write leaves at worst an ignored ``*.tmp``
    file, never a torn record.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            json.dump(payload, stream, indent=2, sort_keys=True)
            stream.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@dataclass
class WorkerHeartbeat:
    """One shard's liveness/progress record (worker-published)."""

    #: shard identity, e.g. ``"PARA__s0"`` or ``"seed-1-block"``
    worker: str
    cells_done: int
    cells_total: int
    #: ``time.monotonic()`` at the last event this worker observed
    mono: float
    pid: int = 0
    #: retry attempt the shard is running as (0 = first try)
    retries: int = 0
    degraded: bool = False
    phase: str = "running"  # "running" | "done" | "failed"
    attrs: Dict[str, Any] = field(default_factory=dict)
    schema_version: int = STATUS_SCHEMA_VERSION

    def age(self, now: Optional[float] = None) -> float:
        """Seconds since the last event (monotonic clock)."""
        return (time.monotonic() if now is None else now) - self.mono

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "worker": self.worker,
            "cells_done": self.cells_done,
            "cells_total": self.cells_total,
            "mono": self.mono,
            "pid": self.pid,
            "retries": self.retries,
            "degraded": self.degraded,
            "phase": self.phase,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WorkerHeartbeat":
        return cls(
            worker=data["worker"],
            cells_done=int(data["cells_done"]),
            cells_total=int(data["cells_total"]),
            mono=float(data["mono"]),
            pid=int(data.get("pid", 0)),
            retries=int(data.get("retries", 0)),
            degraded=bool(data.get("degraded", False)),
            phase=data.get("phase", "running"),
            attrs=dict(data.get("attrs") or {}),
            schema_version=int(
                data.get("schema_version", STATUS_SCHEMA_VERSION)
            ),
        )


@dataclass
class CampaignSnapshot:
    """The runner's rolling whole-campaign progress record."""

    done: int
    total: int
    degraded: int = 0
    retries: int = 0
    stale: int = 0
    #: monotonic stamps bounding the observed run (for throughput/ETA)
    started_mono: float = 0.0
    mono: float = 0.0
    complete: bool = False
    attrs: Dict[str, Any] = field(default_factory=dict)
    schema_version: int = STATUS_SCHEMA_VERSION

    @property
    def throughput(self) -> Optional[float]:
        """Completed cells per second over the observed window."""
        elapsed = self.mono - self.started_mono
        if elapsed <= 0 or self.done <= 0:
            return None
        return self.done / elapsed

    @property
    def eta_seconds(self) -> Optional[float]:
        """Naive remaining-work estimate from the observed throughput."""
        rate = self.throughput
        if rate is None or self.complete:
            return None
        return max(0, self.total - self.done) / rate

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "done": self.done,
            "total": self.total,
            "degraded": self.degraded,
            "retries": self.retries,
            "stale": self.stale,
            "started_mono": self.started_mono,
            "mono": self.mono,
            "complete": self.complete,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignSnapshot":
        return cls(
            done=int(data["done"]),
            total=int(data["total"]),
            degraded=int(data.get("degraded", 0)),
            retries=int(data.get("retries", 0)),
            stale=int(data.get("stale", 0)),
            started_mono=float(data.get("started_mono", 0.0)),
            mono=float(data.get("mono", 0.0)),
            complete=bool(data.get("complete", False)),
            attrs=dict(data.get("attrs") or {}),
            schema_version=int(
                data.get("schema_version", STATUS_SCHEMA_VERSION)
            ),
        )


class StatusBus:
    """Atomic-write status directory for one campaign."""

    def __init__(self, root, stale_after: float = DEFAULT_STALE_AFTER_S):
        if stale_after <= 0:
            raise ValueError(f"stale_after must be positive: {stale_after}")
        self.root = Path(root)
        self.workers_dir = self.root / WORKERS_DIRNAME
        self.stale_after = stale_after

    @classmethod
    def for_checkpoint(
        cls, checkpoint_dir, stale_after: float = DEFAULT_STALE_AFTER_S
    ) -> "StatusBus":
        """The bus of a durable campaign: ``<checkpoint_dir>/status``."""
        return cls(Path(checkpoint_dir) / STATUS_DIRNAME,
                   stale_after=stale_after)

    @property
    def snapshot_path(self) -> Path:
        return self.root / SNAPSHOT_FILENAME

    @property
    def exists(self) -> bool:
        return self.root.is_dir()

    # -- worker side ---------------------------------------------------

    def heartbeat_path(self, worker: str) -> Path:
        safe = "".join(
            ch if ch.isalnum() or ch in "._-" else "_" for ch in worker
        )
        return self.workers_dir / f"{safe}.json"

    def publish_heartbeat(self, heartbeat: WorkerHeartbeat) -> Path:
        path = self.heartbeat_path(heartbeat.worker)
        write_json_atomic(path, heartbeat.as_dict())
        return path

    def beat(
        self,
        worker: str,
        cells_done: int,
        cells_total: int,
        retries: int = 0,
        degraded: bool = False,
        phase: str = "running",
        **attrs: Any,
    ) -> WorkerHeartbeat:
        """Convenience: stamp and publish a heartbeat in one call."""
        heartbeat = WorkerHeartbeat(
            worker=worker,
            cells_done=cells_done,
            cells_total=cells_total,
            mono=time.monotonic(),
            pid=os.getpid(),
            retries=retries,
            degraded=degraded,
            phase=phase,
            attrs=dict(attrs),
        )
        self.publish_heartbeat(heartbeat)
        return heartbeat

    # -- runner side ---------------------------------------------------

    def publish_snapshot(self, snapshot: CampaignSnapshot) -> Path:
        write_json_atomic(self.snapshot_path, snapshot.as_dict())
        return self.snapshot_path

    # -- reader side ---------------------------------------------------

    def read_heartbeats(self) -> List[WorkerHeartbeat]:
        """Every readable heartbeat, sorted by worker id.

        Torn or foreign files are skipped, not raised: the bus is
        advisory, and an atomic writer can only ever leave ``*.tmp``
        debris behind (ignored by the ``*.json`` glob).
        """
        heartbeats: List[WorkerHeartbeat] = []
        if not self.workers_dir.is_dir():
            return heartbeats
        for path in sorted(self.workers_dir.glob("*.json")):
            try:
                heartbeats.append(WorkerHeartbeat.from_dict(
                    json.loads(path.read_text(encoding="utf-8"))
                ))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                continue
        return heartbeats

    def read_snapshot(self) -> Optional[CampaignSnapshot]:
        if not self.snapshot_path.is_file():
            return None
        try:
            return CampaignSnapshot.from_dict(
                json.loads(self.snapshot_path.read_text(encoding="utf-8"))
            )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            return None

    def stale_workers(
        self, now: Optional[float] = None
    ) -> List[WorkerHeartbeat]:
        """Running shards whose last heartbeat is older than the budget."""
        if now is None:
            now = time.monotonic()
        return [
            heartbeat
            for heartbeat in self.read_heartbeats()
            if heartbeat.phase == "running"
            and heartbeat.age(now) > self.stale_after
        ]

    def clear_workers(self) -> None:
        """Drop every heartbeat record (fresh campaign / resume start)."""
        if not self.workers_dir.is_dir():
            return
        for path in self.workers_dir.glob("*.json"):
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing a writer
                pass


class Heartbeater:
    """Background thread that republishes one worker's heartbeat.

    The liveness half of the queue-worker protocol
    (``docs/distributed.md``): while a shard runs, a daemon thread
    re-publishes its :class:`WorkerHeartbeat` every ``interval_s``
    seconds and invokes ``on_beat`` alongside each publish -- the
    queue worker passes a lease-``touch`` callback there, so the
    heartbeat that keeps the live view fresh is the same signal that
    keeps the shard's lease from expiring.  SIGKILL the process and
    both stop together: the bus record goes stale *and* the lease
    mtime ages out, which is exactly how the runner learns to re-run
    the shard.

    Publishing is advisory: any exception from the bus or the callback
    is swallowed (a full disk must not fail the shard), and the thread
    is a daemon so a dying worker never blocks on it.  Use as a
    context manager around the shard's execution::

        with Heartbeater(bus, shard, on_beat=touch, host=hostname):
            outcome = run(...)
    """

    def __init__(
        self,
        bus: StatusBus,
        worker: str,
        cells_total: int = 1,
        interval_s: float = 1.0,
        retries: int = 0,
        on_beat: Optional[Any] = None,
        **attrs: Any,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive: {interval_s}")
        self.bus = bus
        self.worker = worker
        self.cells_total = cells_total
        self.interval_s = interval_s
        self.retries = retries
        self.on_beat = on_beat
        self.attrs = dict(attrs)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _publish(self) -> None:
        try:
            self.bus.beat(
                self.worker, 0, self.cells_total, retries=self.retries,
                **self.attrs,
            )
            if self.on_beat is not None:
                self.on_beat()
        except Exception:  # advisory: never fail the shard over telemetry
            pass

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self._publish()

    def start(self) -> "Heartbeater":
        """Publish immediately, then keep publishing until :meth:`stop`."""
        self._publish()
        self._thread = threading.Thread(
            target=self._loop, name=f"heartbeat-{self.worker}", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "Heartbeater":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
