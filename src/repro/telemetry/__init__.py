"""Observability layer: event tracing, run metrics, manifests, profiling.

Zero-cost when disabled: every entry point of the simulation stack
accepts ``tracer=None`` / ``metrics=None`` / ``profiler=None`` and the
engines skip the whole layer behind a single ``None`` check (pinned by
the overhead guard in ``benchmarks/bench_fast_engine.py``).  Enabling
it never changes simulation results -- the differential harness proves
both engines produce bit-identical :class:`~repro.sim.metrics.SimResult`
objects with telemetry on and off.

See ``docs/observability.md`` for the event schema, manifest fields
and workflow recipes.
"""

from repro.telemetry.events import EVENT_KINDS
from repro.telemetry.export import (
    registry_from_prometheus,
    to_jsonl,
    to_prometheus,
    write_metrics_export,
)
from repro.telemetry.hooks import EngineTelemetry
from repro.telemetry.manifest import (
    RunManifest,
    build_manifest,
    config_digest,
    diff_manifests,
)
from repro.telemetry.metrics import Counter, Histogram, MetricsRegistry
from repro.telemetry.profiler import Profiler, section_of
from repro.telemetry.progress import (
    ProgressDispatcher,
    ProgressEvent,
    adapt_legacy,
)
from repro.telemetry.spans import Span, SpanTracer, span_id_for, span_of
from repro.telemetry.statusbus import (
    CampaignSnapshot,
    Heartbeater,
    StatusBus,
    WorkerHeartbeat,
    write_json_atomic,
)
from repro.telemetry.tracer import (
    JsonlTracer,
    NullTracer,
    RecordingTracer,
    Tracer,
    read_jsonl_events,
)

__all__ = [
    "EVENT_KINDS",
    "EngineTelemetry",
    "RunManifest",
    "build_manifest",
    "config_digest",
    "diff_manifests",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "Profiler",
    "section_of",
    "Span",
    "SpanTracer",
    "span_id_for",
    "span_of",
    "CampaignSnapshot",
    "Heartbeater",
    "StatusBus",
    "WorkerHeartbeat",
    "write_json_atomic",
    "ProgressDispatcher",
    "ProgressEvent",
    "adapt_legacy",
    "registry_from_prometheus",
    "to_jsonl",
    "to_prometheus",
    "write_metrics_export",
    "JsonlTracer",
    "NullTracer",
    "RecordingTracer",
    "Tracer",
    "read_jsonl_events",
]
