"""Phase profiling hooks (`--profile` on the CLI).

A :class:`Profiler` accumulates named ``time.perf_counter`` sections.
The engines open a handful of coarse sections per run (setup, replay,
drain), the experiment layer adds per-technique and trace-generation
sections, and the CLI renders the breakdown after the run.  Passing
``profiler=None`` (the default) keeps every call site on a
``nullcontext`` fast path.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from typing import Any, ContextManager, Dict, Optional


class Profiler:
    """Accumulates wall-clock time per named phase."""

    def __init__(self) -> None:
        #: ``name -> {"seconds": float, "calls": int}``, insertion-ordered
        self.sections: Dict[str, Dict[str, float]] = {}

    @contextmanager
    def section(self, name: str):
        started = time.perf_counter()
        try:
            yield self
        finally:
            self.add(name, time.perf_counter() - started)

    def add(self, name: str, seconds: float) -> None:
        entry = self.sections.setdefault(name, {"seconds": 0.0, "calls": 0})
        entry["seconds"] += seconds
        entry["calls"] += 1

    @property
    def total_seconds(self) -> float:
        return sum(entry["seconds"] for entry in self.sections.values())

    def as_dict(self) -> Dict[str, Any]:
        return {name: dict(entry) for name, entry in self.sections.items()}

    def report(self) -> str:
        """Phase breakdown table, slowest phase first."""
        total = self.total_seconds or 1.0
        lines = ["phase                          seconds    calls   share",
                 "-----                          -------    -----   -----"]
        ordered = sorted(
            self.sections.items(), key=lambda item: -item[1]["seconds"]
        )
        for name, entry in ordered:
            lines.append(
                f"{name:<30} {entry['seconds']:>8.3f} {entry['calls']:>8d}"
                f"  {100.0 * entry['seconds'] / total:>5.1f}%"
            )
        lines.append(
            f"{'total':<30} {self.total_seconds:>8.3f}"
        )
        return "\n".join(lines)


def section_of(profiler: Optional[Profiler], name: str) -> ContextManager:
    """``profiler.section(name)`` or a free ``nullcontext``.

    Lets call sites write ``with section_of(profiler, "engine:replay"):``
    without branching on whether profiling is enabled.
    """
    if profiler is None:
        return nullcontext()
    return profiler.section(name)
