"""Cheap run metrics: counters, histograms and phase timers.

A :class:`MetricsRegistry` is a bag of named instruments the engines
(and the campaign runner) update at interval/trigger granularity --
never per trace record -- so enabling metrics costs a few dict updates
per refresh interval.  ``metrics=None`` (the default everywhere)
disables the whole layer.

The registry serialises to a JSON-ready dict (:meth:`MetricsRegistry.
as_dict`) that is embedded in the run manifest, and two registries can
be merged (:meth:`MetricsRegistry.merge`) to aggregate campaign shards.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Optional, Sequence, Tuple


class Counter:
    """Monotonic event counter with optional saturation.

    Python integers never overflow, but hardware counters do; passing a
    ``limit`` models a saturating register: the value clamps at
    ``limit`` and :attr:`saturated` records that the clamp happened, so
    reports can flag the count as a lower bound.
    """

    __slots__ = ("name", "value", "limit", "saturated")

    def __init__(self, name: str, limit: Optional[int] = None):
        if limit is not None and limit < 0:
            raise ValueError(f"counter limit must be non-negative: {limit}")
        self.name = name
        self.value = 0
        self.limit = limit
        self.saturated = False

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease: {amount}")
        value = self.value + amount
        if self.limit is not None and value > self.limit:
            value = self.limit
            self.saturated = True
        self.value = value

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"value": self.value}
        if self.limit is not None:
            out["limit"] = self.limit
            out["saturated"] = self.saturated
        return out


class Histogram:
    """Fixed-bucket histogram over non-negative observations.

    ``bounds`` are inclusive upper edges in increasing order: bucket
    *i* counts values ``bounds[i-1] < v <= bounds[i]`` (the first
    bucket has no lower edge), and one extra overflow bucket counts
    ``v > bounds[-1]``.  A value exactly equal to an edge lands in the
    bucket that edge closes -- the edge cases are pinned by
    ``tests/telemetry/test_metrics.py``.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float]):
        ordered = tuple(bounds)
        if not ordered:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b > a for b, a in zip(ordered, ordered[1:])):
            raise ValueError(f"histogram bounds must increase: {ordered}")
        self.name = name
        self.bounds: Tuple[float, ...] = ordered
        self.counts = [0] * (len(ordered) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, value: float) -> None:
        self.record_many(value, 1)

    def record_many(self, value: float, times: int) -> None:
        """Record the same observation *times* times in O(1).

        Used by the fast engine's interval-span skip: a span of *n*
        empty intervals contributes *n* zero-trigger observations
        without touching the histogram *n* times.
        """
        if times <= 0:
            return
        self.counts[bisect_left(self.bounds, value)] += times
        self.count += times
        self.total += value * times
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Named counters, histograms and accumulated phase timings."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.timers: Dict[str, Dict[str, float]] = {}

    def counter(self, name: str, limit: Optional[int] = None) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name, limit=limit)
        elif limit is not None and counter.limit != limit:
            # mirror histogram(): a silently ignored conflicting limit
            # would make export -> import round-trips lossy
            raise ValueError(
                f"counter {name!r} already exists with limit "
                f"{counter.limit}, requested {limit}"
            )
        return counter

    def histogram(self, name: str, bounds: Sequence[float]) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(name, bounds)
        elif histogram.bounds != tuple(bounds):
            raise ValueError(
                f"histogram {name!r} already exists with bounds "
                f"{histogram.bounds}, requested {tuple(bounds)}"
            )
        return histogram

    def add_time(self, name: str, seconds: float) -> None:
        entry = self.timers.setdefault(name, {"seconds": 0.0, "calls": 0})
        entry["seconds"] += seconds
        entry["calls"] += 1

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold *other* into this registry (campaign shard aggregation)."""
        for name, counter in other.counters.items():
            mine_c = self.counter(name, limit=counter.limit)
            mine_c.add(counter.value)
            if counter.saturated:
                # the clamp happened in the shard; the merged total is a
                # lower bound even if it sits below the limit here
                mine_c.saturated = True
        for name, histogram in other.histograms.items():
            mine = self.histogram(name, histogram.bounds)
            for index, count in enumerate(histogram.counts):
                mine.counts[index] += count
            mine.count += histogram.count
            mine.total += histogram.total
            for edge in ("min", "max"):
                theirs = getattr(histogram, edge)
                if theirs is None:
                    continue
                ours = getattr(mine, edge)
                if ours is None:
                    setattr(mine, edge, theirs)
                else:
                    pick = min if edge == "min" else max
                    setattr(mine, edge, pick(ours, theirs))
        for name, entry in other.timers.items():
            mine_t = self.timers.setdefault(name, {"seconds": 0.0, "calls": 0})
            mine_t["seconds"] += entry["seconds"]
            mine_t["calls"] += entry["calls"]

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from an :meth:`as_dict` snapshot.

        The round-trip is exact, so checkpointed campaign shards can
        restore their metrics on resume and merge into the live
        registry as if the shard had just run.
        """
        registry = cls()
        for name, entry in (data.get("counters") or {}).items():
            counter = registry.counter(name, limit=entry.get("limit"))
            # assign, don't add(): the clamp path must not re-run, and
            # the stored saturated flag is authoritative either way
            counter.value = entry.get("value", 0)
            counter.saturated = bool(entry.get("saturated", False))
        for name, entry in (data.get("histograms") or {}).items():
            histogram = registry.histogram(name, entry["bounds"])
            histogram.counts = list(entry.get("counts", histogram.counts))
            histogram.count = entry.get("count", 0)
            histogram.total = entry.get("total", 0.0)
            histogram.min = entry.get("min")
            histogram.max = entry.get("max")
        for name, entry in (data.get("timers") or {}).items():
            registry.timers[name] = {
                "seconds": entry.get("seconds", 0.0),
                "calls": entry.get("calls", 0),
            }
        return registry

    def as_dict(self) -> Dict[str, Any]:
        return {
            "counters": {
                name: counter.as_dict()
                for name, counter in sorted(self.counters.items())
            },
            "histograms": {
                name: histogram.as_dict()
                for name, histogram in sorted(self.histograms.items())
            },
            "timers": {
                name: dict(entry) for name, entry in sorted(self.timers.items())
            },
        }
