"""The engine-side telemetry hook bundle.

Both simulation engines drive their tracer and metrics through one
:class:`EngineTelemetry` object so the two layers stay consistent and
the hot-path contract stays simple:

* :meth:`EngineTelemetry.create` returns ``None`` unless a tracer is
  *enabled* or a metrics registry is present -- the engines then guard
  every hook behind a single ``if tele is not None`` check, and the
  default (no telemetry, or :class:`~repro.telemetry.tracer.NullTracer`)
  costs nothing beyond that check;
* hooks fire at **interval / trigger granularity**, never per trace
  record, so even enabled telemetry scales with refresh intervals and
  mitigation activity rather than with the 175 M-activation record
  stream;
* hooks only *observe* -- they never touch the RNG streams or any
  simulation state, which is how the differential harness can prove
  that telemetry leaves :class:`~repro.sim.metrics.SimResult` bit-for-
  bit unchanged.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.telemetry import events as ev
from repro.telemetry.metrics import MetricsRegistry

#: upper bucket edges for the per-interval trigger-count histogram
TRIGGERS_PER_INTERVAL_BOUNDS = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256)
#: upper bucket edges for the TiVaPRoMi weight-at-trigger histogram
#: (weights are powers of two under Eq. 2, so edges follow suit)
TRIGGER_WEIGHT_BOUNDS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024,
                         2048, 4096, 8192, 16384, 32768, 65536)
#: upper bucket edges for history-table occupancy (paper table: 32)
TABLE_OCCUPANCY_BOUNDS = (0, 1, 2, 4, 8, 16, 32, 64, 128)


class EngineTelemetry:
    """Tracer + metrics fan-out used by both simulation engines."""

    __slots__ = (
        "tracer", "metrics", "now",
        "_acts_seen", "_attacks_seen", "_triggers_seen", "_triggers_total",
        "_c_activations", "_c_attacks", "_c_intervals", "_c_triggers",
        "_c_refreshes", "_c_extra", "_c_fp_extra", "_c_history_hits",
        "_c_history_evictions", "_c_rng_blocks", "_c_rng_draws",
        "_h_triggers", "_h_weight", "_h_occupancy",
    )

    @classmethod
    def create(
        cls,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> Optional["EngineTelemetry"]:
        """Build the hook bundle, or ``None`` when telemetry is off.

        A tracer whose ``enabled`` is False (:class:`NullTracer`) is
        treated exactly like ``tracer=None``.
        """
        if tracer is not None and not getattr(tracer, "enabled", True):
            tracer = None
        if tracer is None and metrics is None:
            return None
        return cls(tracer, metrics)

    def __init__(self, tracer, metrics: Optional[MetricsRegistry]):
        self.tracer = tracer
        self.metrics = metrics
        #: current simulated time; engines refresh this as they advance
        self.now = 0
        self._acts_seen = 0
        self._attacks_seen = 0
        self._triggers_seen = 0
        self._triggers_total = 0
        if metrics is not None:
            self._c_activations = metrics.counter("activations")
            self._c_attacks = metrics.counter("attack_activations")
            self._c_intervals = metrics.counter("intervals")
            self._c_triggers = metrics.counter("triggers")
            self._c_refreshes = metrics.counter("mitigating_refreshes")
            self._c_extra = metrics.counter("extra_activations")
            self._c_fp_extra = metrics.counter("fp_extra_activations")
            self._c_history_hits = metrics.counter("history_hits")
            self._c_history_evictions = metrics.counter("history_evictions")
            self._c_rng_blocks = metrics.counter("rng_blocks")
            self._c_rng_draws = metrics.counter("rng_draws")
            self._h_triggers = metrics.histogram(
                "triggers_per_interval", TRIGGERS_PER_INTERVAL_BOUNDS
            )
            self._h_weight = metrics.histogram(
                "trigger_weight", TRIGGER_WEIGHT_BOUNDS
            )
            self._h_occupancy = metrics.histogram(
                "table_occupancy", TABLE_OCCUPANCY_BOUNDS
            )
        else:
            self._c_activations = None
            self._c_attacks = None
            self._c_intervals = None
            self._c_triggers = None
            self._c_refreshes = None
            self._c_extra = None
            self._c_fp_extra = None
            self._c_history_hits = None
            self._c_history_evictions = None
            self._c_rng_blocks = None
            self._c_rng_draws = None
            self._h_triggers = None
            self._h_weight = None
            self._h_occupancy = None

    # ------------------------------------------------------------------
    # engine-level hooks
    # ------------------------------------------------------------------

    def on_trigger(self, bank: int, row: int, interval: int, action: str) -> None:
        """A mitigation decided to issue one mitigating action."""
        self._triggers_seen += 1
        self._triggers_total += 1
        if self._c_activations is not None:
            self._c_triggers.add()
        if self.tracer is not None:
            self.tracer.emit(ev.trigger(self.now, interval, bank, row, action))

    def on_apply(
        self,
        bank: int,
        row: int,
        interval: int,
        cost: int,
        false_positive: bool,
    ) -> None:
        """A buffered mitigating action was applied to the device."""
        if self._c_activations is not None:
            self._c_refreshes.add()
            self._c_extra.add(cost)
            if false_positive:
                self._c_fp_extra.add(cost)
        if self.tracer is not None:
            self.tracer.emit(
                ev.mitigating_refresh(
                    self.now, interval, bank, row, cost, false_positive
                )
            )

    def on_interval(
        self,
        interval: int,
        time_ns: int,
        activations: int,
        attack_activations: int,
        occupancy: Sequence[Optional[int]] = (),
    ) -> None:
        """A ``ref`` command rolled the simulation into *interval*.

        *activations* / *attack_activations* are the engine's running
        totals; the per-interval deltas are derived here so the engines
        need no extra bookkeeping.
        """
        acts_delta = activations - self._acts_seen
        attacks_delta = attack_activations - self._attacks_seen
        self._acts_seen = activations
        self._attacks_seen = attack_activations
        triggers_delta = self._triggers_seen
        self._triggers_seen = 0
        if time_ns > self.now:
            self.now = time_ns
        known = [depth for depth in occupancy if depth is not None]
        if self._c_activations is not None:
            self._c_intervals.add()
            self._c_activations.add(acts_delta)
            self._c_attacks.add(attacks_delta)
            self._h_triggers.record(triggers_delta)
            for depth in known:
                self._h_occupancy.record(depth)
        if self.tracer is not None:
            if acts_delta:
                self.tracer.emit(
                    ev.activation_batch(
                        time_ns, interval - 1, acts_delta, attacks_delta
                    )
                )
            self.tracer.emit(
                ev.interval_rollover(
                    time_ns, interval, acts_delta, triggers_delta,
                    occupancy=known,
                )
            )

    def on_interval_skip(self, first: int, last: int, time_ns: int) -> None:
        """The fast engine jumped over ``[first, last]`` empty intervals."""
        skipped = last - first + 1
        if skipped <= 0:
            return
        if time_ns > self.now:
            self.now = time_ns
        if self._c_activations is not None:
            self._c_intervals.add(skipped)
            self._h_triggers.record_many(0, skipped)
        if self.tracer is not None:
            self.tracer.emit(
                ev.interval_rollover(time_ns, last, 0, 0, skipped=skipped)
            )

    def finish(self, activations: int, attack_activations: int) -> None:
        """Flush the tail (activations since the last rollover)."""
        acts_delta = activations - self._acts_seen
        attacks_delta = attack_activations - self._attacks_seen
        self._acts_seen = activations
        self._attacks_seen = attack_activations
        if self._c_activations is not None:
            self._c_activations.add(acts_delta)
            self._c_attacks.add(attacks_delta)
        if self.tracer is not None and acts_delta:
            self.tracer.emit(
                ev.activation_batch(self.now, -1, acts_delta, attacks_delta)
            )

    # ------------------------------------------------------------------
    # mitigation-level hooks (TiVaPRoMi history table + weights)
    # ------------------------------------------------------------------

    def on_trigger_weight(
        self, bank: int, row: int, interval: int, weight: int, hit: bool
    ) -> None:
        """A TiVaPRoMi trigger fired at *weight* (history hit if *hit*)."""
        if self._h_weight is not None:
            self._h_weight.record(weight)
            if hit:
                self._c_history_hits.add()
        if self.tracer is not None and hit:
            self.tracer.emit(
                ev.history_hit(self.now, interval, bank, row, weight)
            )

    def on_history_evict(self, bank: int, row: int, interval: int) -> None:
        if self._c_activations is not None:
            self._c_history_evictions.add()
        if self.tracer is not None:
            self.tracer.emit(ev.history_evict(self.now, interval, bank, row))

    def on_rng_block(self, bank: int, count: int) -> None:
        """The fast engine pre-drew *count* RNG values in one block."""
        if self._c_activations is not None:
            self._c_rng_blocks.add()
            self._c_rng_draws.add(count)
        if self.tracer is not None:
            self.tracer.emit(ev.rng_block(self.now, bank, count))
