"""Metrics and span-summary export: Prometheus text format and JSONL.

Two serialisations of the same state, chosen by file suffix in
:func:`write_metrics_export` (wired to ``--metrics-out`` in the CLI):

* ``*.prom`` -- Prometheus text exposition format, for node-exporter
  textfile collectors or any scrape pipeline.  The encoding is
  **lossless**: metric identity rides in a ``name`` label
  (``repro_counter_total{name="campaign.shards_completed"}``), bucket
  bounds become ``le`` labels with int/float distinction preserved,
  and :func:`registry_from_prometheus` reconstructs a registry whose
  ``as_dict()`` is bit-identical to the source's -- pinned by a
  Hypothesis property test.
* ``*.jsonl`` (anything else) -- one JSON record per line mirroring
  :meth:`MetricsRegistry.as_dict`, plus ``span_path`` records from a
  :meth:`SpanTracer.summary`, for ad-hoc ``jq`` analysis.

Numbers are formatted with ``repr`` (shortest float round-trip) and
parsed int-first, so integer bucket bounds and counter values survive
the text round-trip without float contamination.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.telemetry.metrics import MetricsRegistry

EXPORT_SCHEMA_VERSION = 1

#: metric families emitted by :func:`to_prometheus`
_FAMILIES = (
    ("repro_counter_total", "counter", "Counter value."),
    ("repro_counter_limit", "gauge", "Counter saturation limit."),
    ("repro_counter_saturated", "gauge", "1 if the counter clamped at its limit."),
    ("repro_histogram_bucket", "histogram", "Cumulative bucket counts."),
    ("repro_histogram_sum", "gauge", "Sum of histogram observations."),
    ("repro_histogram_count", "gauge", "Number of histogram observations."),
    ("repro_histogram_min", "gauge", "Smallest observation."),
    ("repro_histogram_max", "gauge", "Largest observation."),
    ("repro_timer_seconds_total", "counter", "Accumulated phase seconds."),
    ("repro_timer_calls_total", "counter", "Accumulated phase calls."),
    ("repro_span_count", "gauge", "Occurrences of a span path."),
)

Number = Union[int, float]


def _format_number(value: Number) -> str:
    """``repr`` keeps int/float identity and shortest float round-trip."""
    if isinstance(value, bool):  # bools are ints; be explicit
        return "1" if value else "0"
    return repr(value)


def _parse_number(text: str) -> Number:
    """Int first, so ``"2"`` comes back ``int`` and ``"2.0"`` ``float``."""
    try:
        return int(text)
    except ValueError:
        return float(text)


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _unescape_label(value: str) -> str:
    out: List[str] = []
    index = 0
    while index < len(value):
        ch = value[index]
        if ch == "\\" and index + 1 < len(value):
            nxt = value[index + 1]
            out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, nxt))
            index += 2
        else:
            out.append(ch)
            index += 1
    return "".join(out)


def _labels(**labels: str) -> str:
    inner = ",".join(
        f'{key}="{_escape_label(value)}"' for key, value in labels.items()
    )
    return "{" + inner + "}"


def to_prometheus(
    registry: Optional[MetricsRegistry],
    span_summary: Optional[Dict[str, Any]] = None,
) -> str:
    """Render a registry (+ optional span summary) as Prometheus text."""
    lines: List[str] = []
    for family, kind, help_text in _FAMILIES:
        lines.append(f"# HELP {family} {help_text}")
        lines.append(f"# TYPE {family} {kind}")
    data = registry.as_dict() if registry is not None else {}
    for name, entry in (data.get("counters") or {}).items():
        label = _labels(name=name)
        lines.append(
            f"repro_counter_total{label} {_format_number(entry['value'])}"
        )
        if "limit" in entry:
            lines.append(
                f"repro_counter_limit{label} {_format_number(entry['limit'])}"
            )
            lines.append(
                f"repro_counter_saturated{label} "
                f"{1 if entry.get('saturated') else 0}"
            )
    for name, entry in (data.get("histograms") or {}).items():
        bounds = entry["bounds"]
        counts = entry["counts"]
        cumulative = 0
        for bound, count in zip(bounds, counts):
            cumulative += count
            label = _labels(name=name, le=_format_number(bound))
            lines.append(f"repro_histogram_bucket{label} {cumulative}")
        cumulative += counts[len(bounds)]
        label = _labels(name=name, le="+Inf")
        lines.append(f"repro_histogram_bucket{label} {cumulative}")
        label = _labels(name=name)
        lines.append(
            f"repro_histogram_sum{label} {_format_number(entry['total'])}"
        )
        lines.append(
            f"repro_histogram_count{label} {_format_number(entry['count'])}"
        )
        for edge in ("min", "max"):
            if entry.get(edge) is not None:
                lines.append(
                    f"repro_histogram_{edge}{label} "
                    f"{_format_number(entry[edge])}"
                )
    for name, entry in (data.get("timers") or {}).items():
        label = _labels(name=name)
        lines.append(
            f"repro_timer_seconds_total{label} "
            f"{_format_number(entry['seconds'])}"
        )
        lines.append(
            f"repro_timer_calls_total{label} "
            f"{_format_number(entry['calls'])}"
        )
    for path, entry in ((span_summary or {}).get("paths") or {}).items():
        label = _labels(path=path)
        lines.append(
            f"repro_span_count{label} {_format_number(entry['count'])}"
        )
    return "\n".join(lines) + "\n"


def _parse_sample(line: str):
    """Split one exposition line into (family, labels dict, value text)."""
    open_brace = line.index("{")
    close_brace = line.rindex("}")
    family = line[:open_brace]
    value_text = line[close_brace + 1:].strip()
    labels: Dict[str, str] = {}
    body = line[open_brace + 1:close_brace]
    index = 0
    while index < len(body):
        eq = body.index("=", index)
        key = body[index:eq].strip().lstrip(",").strip()
        assert body[eq + 1] == '"', f"unquoted label value in {line!r}"
        cursor = eq + 2
        raw: List[str] = []
        while body[cursor] != '"':
            if body[cursor] == "\\":
                raw.append(body[cursor:cursor + 2])
                cursor += 2
            else:
                raw.append(body[cursor])
                cursor += 1
        labels[key] = _unescape_label("".join(raw))
        index = cursor + 1
    return family, labels, value_text


def parse_prometheus(text: str) -> Dict[str, Any]:
    """Invert :func:`to_prometheus` into an ``as_dict``-shaped mapping.

    Returns ``{"counters": ..., "histograms": ..., "timers": ...,
    "span_paths": {path: count}}``; feed the first three to
    :meth:`MetricsRegistry.from_dict` (or use
    :func:`registry_from_prometheus`).
    """
    counters: Dict[str, Dict[str, Any]] = {}
    histograms: Dict[str, Dict[str, Any]] = {}
    timers: Dict[str, Dict[str, Any]] = {}
    span_paths: Dict[str, int] = {}
    # bucket samples keyed by histogram name, in emission order
    buckets: Dict[str, List[Any]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        family, labels, value_text = _parse_sample(line)
        name = labels.get("name", "")
        if family == "repro_counter_total":
            counters.setdefault(name, {})["value"] = _parse_number(value_text)
        elif family == "repro_counter_limit":
            entry = counters.setdefault(name, {})
            entry["limit"] = _parse_number(value_text)
            entry.setdefault("saturated", False)
        elif family == "repro_counter_saturated":
            entry = counters.setdefault(name, {})
            entry["limit"] = entry.get("limit")
            entry["saturated"] = value_text.strip() == "1"
        elif family == "repro_histogram_bucket":
            buckets.setdefault(name, []).append(
                (labels["le"], _parse_number(value_text))
            )
        elif family == "repro_histogram_sum":
            histograms.setdefault(name, {})["total"] = _parse_number(value_text)
        elif family == "repro_histogram_count":
            histograms.setdefault(name, {})["count"] = _parse_number(value_text)
        elif family == "repro_histogram_min":
            histograms.setdefault(name, {})["min"] = _parse_number(value_text)
        elif family == "repro_histogram_max":
            histograms.setdefault(name, {})["max"] = _parse_number(value_text)
        elif family == "repro_timer_seconds_total":
            timers.setdefault(name, {})["seconds"] = _parse_number(value_text)
        elif family == "repro_timer_calls_total":
            timers.setdefault(name, {})["calls"] = _parse_number(value_text)
        elif family == "repro_span_count":
            span_paths[labels.get("path", "")] = int(value_text)
    for name, samples in buckets.items():
        bounds: List[Number] = []
        counts: List[int] = []
        previous = 0
        for le, cumulative in samples:
            counts.append(int(cumulative) - previous)
            previous = int(cumulative)
            if le != "+Inf":
                bounds.append(_parse_number(le))
        entry = histograms.setdefault(name, {})
        entry["bounds"] = bounds
        entry["counts"] = counts
        entry.setdefault("min", None)
        entry.setdefault("max", None)
    # drop the placeholder None limit left by a saturated line arriving
    # before (or without) its limit line
    for entry in counters.values():
        if entry.get("limit") is None and "limit" in entry:
            del entry["limit"]
            entry.pop("saturated", None)
    return {
        "counters": counters,
        "histograms": histograms,
        "timers": timers,
        "span_paths": span_paths,
    }


def registry_from_prometheus(text: str) -> MetricsRegistry:
    """Parse exposition text back into a :class:`MetricsRegistry`."""
    return MetricsRegistry.from_dict(parse_prometheus(text))


def to_jsonl(
    registry: Optional[MetricsRegistry],
    span_summary: Optional[Dict[str, Any]] = None,
) -> str:
    """One JSON record per line: meta, counters, histograms, timers, spans."""
    records: List[Dict[str, Any]] = [
        {"record": "meta", "schema_version": EXPORT_SCHEMA_VERSION}
    ]
    data = registry.as_dict() if registry is not None else {}
    for kind in ("counters", "histograms", "timers"):
        for name, entry in (data.get(kind) or {}).items():
            records.append({"record": kind[:-1], "name": name, **entry})
    for path, entry in ((span_summary or {}).get("paths") or {}).items():
        records.append({"record": "span_path", "path": path, **entry})
    return "\n".join(
        json.dumps(record, sort_keys=True) for record in records
    ) + "\n"


def parse_jsonl(text: str) -> Dict[str, Any]:
    """Invert :func:`to_jsonl` into the same shape as :func:`parse_prometheus`."""
    counters: Dict[str, Dict[str, Any]] = {}
    histograms: Dict[str, Dict[str, Any]] = {}
    timers: Dict[str, Dict[str, Any]] = {}
    span_paths: Dict[str, int] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.pop("record", None)
        if kind == "counter":
            counters[record.pop("name")] = record
        elif kind == "histogram":
            histograms[record.pop("name")] = record
        elif kind == "timer":
            timers[record.pop("name")] = record
        elif kind == "span_path":
            span_paths[record["path"]] = int(record.get("count", 0))
    return {
        "counters": counters,
        "histograms": histograms,
        "timers": timers,
        "span_paths": span_paths,
    }


def write_metrics_export(
    path,
    registry: Optional[MetricsRegistry],
    span_summary: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write *registry* (+ span summary) to *path*, format by suffix.

    ``.prom`` / ``.txt`` selects the Prometheus exposition format;
    anything else writes JSONL.  Returns the path written.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.suffix in (".prom", ".txt"):
        payload = to_prometheus(registry, span_summary)
    else:
        payload = to_jsonl(registry, span_summary)
    path.write_text(payload, encoding="utf-8")
    return path
