"""Run manifests: every campaign result becomes reproducible and diffable.

A :class:`RunManifest` is a JSON document written next to campaign
output that records *everything needed to reproduce and compare* a
run: the full configuration (plus a stable hash of it), the seeds, the
engine, the git revision of the code, the host's Python/platform, the
per-technique result summaries, the metrics registry snapshot, and the
profiler's phase timings.

Two manifests can be compared with :func:`diff_manifests`, which
returns the leaf-level differences (ignoring fields that legitimately
vary between identical runs, such as timestamps and wall-clock
timings) -- so "did this refactor change any result?" is one function
call or one ``python -m repro manifest-diff A B``.
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
import sys
from dataclasses import asdict, dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.config import SimConfig

#: bump when the manifest layout changes incompatibly
SCHEMA_VERSION = 1

#: fields that legitimately differ between two runs of the same
#: experiment (timestamps and wall-clock timings); ignored by
#: :func:`diff_manifests` by default.  Entries match a top-level field,
#: a dotted-path prefix, or a leaf key anywhere in the tree.
VOLATILE_FIELDS = ("created_at", "timings", "host", "wall_seconds")


def config_as_dict(config: SimConfig) -> Dict[str, Any]:
    """Nested plain-dict view of a :class:`SimConfig`."""
    return asdict(config)


def config_from_dict(data: Mapping[str, Any]) -> SimConfig:
    """Exact inverse of :func:`config_as_dict`.

    Rebuilds the frozen dataclass tree (geometry and timing included)
    from the nested plain-dict view, so a config that travelled through
    JSON -- a campaign spec, a queue ticket -- hashes identically to
    the original: ``config_digest(config_from_dict(config_as_dict(c)))
    == config_digest(c)`` for every valid config.
    """
    from repro.config import DRAMGeometry, DRAMTiming

    rest = {
        key: value
        for key, value in data.items()
        if key not in ("geometry", "timing")
    }
    return SimConfig(
        geometry=DRAMGeometry(**dict(data["geometry"])),
        timing=DRAMTiming(**dict(data["timing"])),
        **rest,
    )


def config_digest(config: SimConfig) -> str:
    """Stable short hash of the full configuration.

    Canonical JSON (sorted keys, no whitespace) hashed with SHA-256;
    two configs share a digest iff every parameter matches.
    """
    canonical = json.dumps(config_as_dict(config), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def git_revision() -> Optional[str]:
    """Current git commit of the source tree, or None outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def _host_info() -> Dict[str, str]:
    return {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
    }


@dataclass
class RunManifest:
    """The reproducibility record of one simulation run or campaign."""

    engine: str
    seeds: List[int]
    techniques: List[str]
    config: Dict[str, Any]
    config_hash: str
    schema_version: int = SCHEMA_VERSION
    created_at: str = ""
    git_rev: Optional[str] = None
    host: Dict[str, str] = field(default_factory=dict)
    total_intervals: Optional[int] = None
    #: per-technique result summaries (overhead, FPR, flips, ...)
    results: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: :meth:`MetricsRegistry.as_dict` snapshot (may be empty)
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: shards a fault-tolerant campaign skipped after exhausting their
    #: retries (``ShardFailure.as_dict`` entries; empty = healthy run)
    degraded: List[Dict[str, Any]] = field(default_factory=list)
    #: profiler phase breakdown (may be empty)
    timings: Dict[str, Any] = field(default_factory=dict)
    #: caller-supplied context (CLI args, workload knobs, ...)
    extra: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunManifest":
        return cls(**dict(data))

    def write(self, path: str) -> str:
        """Write the manifest as indented JSON; returns the path."""
        target = Path(path)
        if target.parent and not target.parent.exists():
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return str(target)

    @classmethod
    def load(cls, path: str) -> "RunManifest":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


def technique_summary(aggregate) -> Dict[str, Any]:
    """JSON-ready summary of one :class:`TechniqueAggregate`."""
    results = aggregate.results
    return {
        "runs": len(results),
        "seeds": [result.seed for result in results],
        "overhead_mean_pct": aggregate.overhead_mean,
        "overhead_std_pct": aggregate.overhead_std,
        "fpr_mean_pct": aggregate.fpr_mean,
        "total_flips": aggregate.total_flips,
        "mitigation_triggers": sum(r.mitigation_triggers for r in results),
        "extra_activations": sum(r.extra_activations for r in results),
        "normal_activations": sum(r.normal_activations for r in results),
        "table_bytes": aggregate.table_bytes,
        "wall_seconds": sum(r.wall_seconds for r in results),
    }


def build_manifest(
    config: SimConfig,
    engine: str,
    seeds: Sequence[int],
    comparison: Optional[Mapping[str, Any]] = None,
    metrics=None,
    profiler=None,
    total_intervals: Optional[int] = None,
    extra: Optional[Mapping[str, Any]] = None,
    failures: Optional[Sequence[Any]] = None,
) -> RunManifest:
    """Assemble a :class:`RunManifest` from a finished run.

    *comparison* is a ``{technique: TechniqueAggregate}`` mapping as
    returned by ``compare_techniques``/``run_campaign``; *metrics* a
    :class:`~repro.telemetry.metrics.MetricsRegistry`; *profiler* a
    :class:`~repro.telemetry.profiler.Profiler`; *failures* the
    degraded-shard records of a fault-tolerant campaign
    (:class:`~repro.sim.parallel.ShardFailure`).
    """
    comparison = comparison or {}
    return RunManifest(
        engine=engine,
        seeds=list(seeds),
        techniques=list(comparison),
        config=config_as_dict(config),
        config_hash=config_digest(config),
        created_at=datetime.now(timezone.utc).isoformat(),
        git_rev=git_revision(),
        host=_host_info(),
        total_intervals=total_intervals,
        results={
            name: technique_summary(aggregate)
            for name, aggregate in comparison.items()
        },
        metrics=metrics.as_dict() if metrics is not None else {},
        degraded=[failure.as_dict() for failure in failures or []],
        timings=profiler.as_dict() if profiler is not None else {},
        extra=dict(extra) if extra else {},
    )


def diff_manifests(
    a: RunManifest,
    b: RunManifest,
    ignore: Sequence[str] = VOLATILE_FIELDS,
) -> Dict[str, Tuple[Any, Any]]:
    """Leaf-level differences between two manifests.

    Returns ``{dotted.path: (a_value, b_value)}``; empty means the runs
    are equivalent up to the *ignore* fields.  A path present in only
    one manifest reports the sentinel string ``"<missing>"`` on the
    other side.
    """
    skip = set(ignore)
    differences: Dict[str, Tuple[Any, Any]] = {}

    def skipped(path: str, key: str) -> bool:
        return (
            path in skip
            or key in skip
            or any(path.startswith(entry + ".") for entry in skip)
        )

    def walk(prefix: str, left: Any, right: Any) -> None:
        if isinstance(left, dict) and isinstance(right, dict):
            for key in sorted(set(left) | set(right)):
                path = f"{prefix}.{key}" if prefix else str(key)
                if skipped(path, str(key)):
                    continue
                walk(
                    path,
                    left.get(key, "<missing>"),
                    right.get(key, "<missing>"),
                )
            return
        if left != right:
            differences[prefix] = (left, right)

    walk("", a.as_dict(), b.as_dict())
    return differences
