"""Structured telemetry event schema.

Events are plain dicts (JSON-ready, cheap to build) with a ``kind``
field naming the event type and a ``time_ns`` field carrying the
simulated time at which the event happened.  Within one run the
``time_ns`` values of the emitted stream are non-decreasing, so a
JSONL trace can be replayed or windowed without sorting.

The full field-by-field schema is documented in
``docs/observability.md``; the constants below are the authoritative
list of kinds.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

#: a contiguous span of trace activations, aggregated per refresh
#: interval (and once more for the tail after the last rollover)
ACTIVATION_BATCH = "activation-batch"
#: a mitigation decided to issue one mitigating action
TRIGGER = "trigger"
#: a mitigating action was applied to the device (its extra
#: activations were spent)
MITIGATING_REFRESH = "mitigating-refresh"
#: a trigger found its row already in the TiVaPRoMi history table
HISTORY_HIT = "history-hit"
#: recording a trigger evicted the oldest history-table entry (FIFO)
HISTORY_EVICT = "history-evict"
#: a ``ref`` command started the next refresh interval
INTERVAL_ROLLOVER = "interval-rollover"
#: the fast engine pre-drew a block of RNG values
RNG_BLOCK = "rng-block"

EVENT_KINDS = (
    ACTIVATION_BATCH,
    TRIGGER,
    MITIGATING_REFRESH,
    HISTORY_HIT,
    HISTORY_EVICT,
    INTERVAL_ROLLOVER,
    RNG_BLOCK,
)

Event = Dict[str, Any]


def activation_batch(
    time_ns: int, interval: int, count: int, attack_count: int
) -> Event:
    return {
        "kind": ACTIVATION_BATCH,
        "time_ns": time_ns,
        "interval": interval,
        "count": count,
        "attack_count": attack_count,
    }


def trigger(
    time_ns: int, interval: int, bank: int, row: int, action: str
) -> Event:
    return {
        "kind": TRIGGER,
        "time_ns": time_ns,
        "interval": interval,
        "bank": bank,
        "row": row,
        "action": action,
    }


def mitigating_refresh(
    time_ns: int,
    interval: int,
    bank: int,
    row: int,
    cost: int,
    false_positive: bool,
) -> Event:
    return {
        "kind": MITIGATING_REFRESH,
        "time_ns": time_ns,
        "interval": interval,
        "bank": bank,
        "row": row,
        "cost": cost,
        "false_positive": false_positive,
    }


def history_hit(
    time_ns: int, interval: int, bank: int, row: int, weight: int
) -> Event:
    return {
        "kind": HISTORY_HIT,
        "time_ns": time_ns,
        "interval": interval,
        "bank": bank,
        "row": row,
        "weight": weight,
    }


def history_evict(time_ns: int, interval: int, bank: int, row: int) -> Event:
    return {
        "kind": HISTORY_EVICT,
        "time_ns": time_ns,
        "interval": interval,
        "bank": bank,
        "row": row,
    }


def interval_rollover(
    time_ns: int,
    interval: int,
    activations: int,
    triggers: int,
    skipped: int = 0,
    occupancy: Optional[Sequence[int]] = None,
) -> Event:
    event: Event = {
        "kind": INTERVAL_ROLLOVER,
        "time_ns": time_ns,
        "interval": interval,
        "activations": activations,
        "triggers": triggers,
    }
    if skipped:
        event["skipped"] = skipped
    if occupancy:
        event["occupancy"] = list(occupancy)
    return event


def rng_block(time_ns: int, bank: int, count: int) -> Event:
    return {
        "kind": RNG_BLOCK,
        "time_ns": time_ns,
        "bank": bank,
        "count": count,
    }
