"""Hierarchical spans: deterministic, process-portable timing trees.

A :class:`SpanTracer` records a tree of named :class:`Span` sections --
wall-clock (monotonic) and CPU timing plus arbitrary attributes -- with
context-manager ergonomics::

    spans = SpanTracer(id_seed=config_digest(config))
    with spans.span("campaign", techniques=9):
        with spans.span("shard", technique="PARA", seed=0):
            ...

Three properties make spans safe for the campaign stack:

* **Deterministic identity.**  A span's id is a hash of the tracer's
  ``id_seed`` (callers pass the config hash), the span's *path* (names
  from the root, ``/``-joined) and its occurrence ordinal -- never of a
  clock or a pid.  Two runs of the same campaign produce the same span
  ids, so span records can be compared across runs like shard records.
* **Process portability.**  Workers record into their own tracer and
  ship :meth:`SpanTracer.as_dict` back over the pool boundary; the
  runner re-parents the remote tree under a local span with
  :meth:`SpanTracer.adopt`, mirroring how :class:`MetricsRegistry`
  shards merge.  Ids survive adoption unchanged (they were derived
  from the shard's own seed), only parentage and paths are rewritten.
* **Resume-safe summaries.**  :meth:`SpanTracer.summary` aggregates
  counts and attributes per path and **excludes every clock reading**,
  so the summary of a killed-and-resumed campaign (rebuilt from
  checkpointed shard spans) is bit-identical to an uninterrupted run's
  -- monotonic timestamps never leak into resume-compared state.

``spans=None`` (the default everywhere) disables the layer; a tracer
constructed with ``enabled=False`` is a cheap no-op whose cost is
guarded next to the NullTracer guard in
``benchmarks/bench_fused_engine.py``.
"""

from __future__ import annotations

import hashlib
import os
import time
from contextlib import contextmanager, nullcontext
from typing import Any, Dict, Iterator, List, Optional

#: bump when the serialised span layout changes incompatibly
SPAN_SCHEMA_VERSION = 1


def span_id_for(id_seed: str, path: str, ordinal: int) -> str:
    """Deterministic span id: hash of (tracer seed, path, occurrence)."""
    payload = f"{id_seed}|{path}|{ordinal}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class Span:
    """One timed section of a span tree."""

    __slots__ = (
        "name", "span_id", "parent_id", "path", "attributes",
        "started_mono", "ended_mono", "cpu_seconds", "pid", "_started_cpu",
    )

    def __init__(
        self,
        name: str,
        span_id: str,
        parent_id: Optional[str],
        path: str,
        attributes: Dict[str, Any],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.path = path
        self.attributes = attributes
        #: monotonic-clock readings -- comparable across processes on
        #: one host, excluded from :meth:`as_summary_key` state
        self.started_mono: Optional[float] = None
        self.ended_mono: Optional[float] = None
        self.cpu_seconds: Optional[float] = None
        self.pid = os.getpid()
        self._started_cpu: Optional[float] = None

    @property
    def wall_seconds(self) -> Optional[float]:
        if self.started_mono is None or self.ended_mono is None:
            return None
        return self.ended_mono - self.started_mono

    @property
    def finished(self) -> bool:
        return self.ended_mono is not None

    def set_attributes(self, **attributes: Any) -> None:
        self.attributes.update(attributes)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "path": self.path,
            "attributes": dict(self.attributes),
            "started_mono": self.started_mono,
            "ended_mono": self.ended_mono,
            "cpu_seconds": self.cpu_seconds,
            "pid": self.pid,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        span = cls(
            name=data["name"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            path=data.get("path", data["name"]),
            attributes=dict(data.get("attributes") or {}),
        )
        span.started_mono = data.get("started_mono")
        span.ended_mono = data.get("ended_mono")
        span.cpu_seconds = data.get("cpu_seconds")
        span.pid = int(data.get("pid", 0))
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        wall = self.wall_seconds
        timing = f" {wall:.4f}s" if wall is not None else " open"
        return f"<Span {self.path}#{self.span_id}{timing}>"


class SpanTracer:
    """Records a tree of spans; serialisable and mergeable across processes."""

    def __init__(self, id_seed: str = "", enabled: bool = True) -> None:
        self.id_seed = id_seed
        self.enabled = enabled
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._ordinals: Dict[str, int] = {}

    # -- recording -----------------------------------------------------

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, or ``None`` at the root."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Optional[Span]]:
        """Open a child span of the innermost open span (or a root)."""
        if not self.enabled:
            yield None
            return
        span = self.start(name, **attributes)
        try:
            yield span
        finally:
            self.finish()

    def start(self, name: str, **attributes: Any) -> Optional[Span]:
        """Open a span without a ``with`` block; pair with :meth:`finish`.

        For spans whose extent does not fit one lexical scope (e.g. a
        campaign root that must stay open across a try/finally the
        caller cannot re-indent).  Returns ``None`` when disabled.
        """
        if not self.enabled:
            return None
        span = self._open(name, attributes)
        span._started_cpu = time.process_time()
        span.started_mono = time.monotonic()
        self._stack.append(span)
        return span

    def finish(self) -> Optional[Span]:
        """Close the innermost open span (no-op when none is open)."""
        if not self.enabled or not self._stack:
            return None
        span = self._stack.pop()
        span.ended_mono = time.monotonic()
        if span._started_cpu is not None:
            span.cpu_seconds = time.process_time() - span._started_cpu
        return span

    def _open(self, name: str, attributes: Dict[str, Any]) -> Span:
        parent = self.current
        path = f"{parent.path}/{name}" if parent is not None else name
        ordinal = self._ordinals.get(path, 0)
        self._ordinals[path] = ordinal + 1
        span = Span(
            name=name,
            span_id=span_id_for(self.id_seed, path, ordinal),
            parent_id=parent.span_id if parent is not None else None,
            path=path,
            attributes=dict(attributes),
        )
        self.spans.append(span)
        return span

    # -- serialisation and cross-process merge -------------------------

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": SPAN_SCHEMA_VERSION,
            "id_seed": self.id_seed,
            "spans": [span.as_dict() for span in self.spans],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpanTracer":
        tracer = cls(id_seed=data.get("id_seed", ""))
        for entry in data.get("spans") or []:
            tracer.spans.append(Span.from_dict(entry))
        for span in tracer.spans:
            tracer._ordinals[span.path] = tracer._ordinals.get(span.path, 0) + 1
        return tracer

    def adopt(
        self, data: Optional[Dict[str, Any]], parent: Optional[Span] = None
    ) -> int:
        """Merge a serialised remote tree, re-parenting its roots.

        *parent* defaults to the innermost open span, so a runner can
        adopt worker spans while its own ``campaign`` span is open.
        Remote root spans become children of *parent* and every remote
        path gains the parent's path prefix; remote span ids are kept
        verbatim (they are deterministic in the worker's own seed).
        Returns the number of spans adopted.
        """
        if not self.enabled or not data:
            return 0
        if parent is None:
            parent = self.current
        adopted = 0
        for entry in data.get("spans") or []:
            span = Span.from_dict(entry)
            if span.parent_id is None and parent is not None:
                span.parent_id = parent.span_id
            if parent is not None:
                span.path = f"{parent.path}/{span.path}"
            self.spans.append(span)
            self._ordinals[span.path] = self._ordinals.get(span.path, 0) + 1
            adopted += 1
        return adopted

    # -- reporting -----------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """Deterministic per-path aggregate with **no clock readings**.

        Keyed by span path in sorted order; each entry carries the
        occurrence count and the sorted union of attribute keys.  The
        output is a pure function of the recorded structure -- never of
        timing, adoption order, or process ids -- which is what lets a
        resumed campaign rebuild a bit-identical span summary from its
        checkpointed shards.
        """
        paths: Dict[str, Dict[str, Any]] = {}
        for span in self.spans:
            entry = paths.setdefault(
                span.path, {"count": 0, "attribute_keys": set()}
            )
            entry["count"] += 1
            entry["attribute_keys"].update(span.attributes)
        return {
            "schema_version": SPAN_SCHEMA_VERSION,
            "paths": {
                path: {
                    "count": entry["count"],
                    "attribute_keys": sorted(entry["attribute_keys"]),
                }
                for path, entry in sorted(paths.items())
            },
        }

    def timing_report(self) -> List[Dict[str, Any]]:
        """Per-path wall/CPU totals (volatile; for humans, not resume)."""
        totals: Dict[str, Dict[str, float]] = {}
        for span in self.spans:
            wall = span.wall_seconds
            if wall is None:
                continue
            entry = totals.setdefault(
                span.path, {"count": 0, "wall_seconds": 0.0, "cpu_seconds": 0.0}
            )
            entry["count"] += 1
            entry["wall_seconds"] += wall
            entry["cpu_seconds"] += span.cpu_seconds or 0.0
        return [
            {"path": path, **entry} for path, entry in sorted(totals.items())
        ]

    def __len__(self) -> int:
        return len(self.spans)


def span_of(spans: Optional[SpanTracer], name: str, **attributes: Any):
    """``spans.span(name, ...)`` or a free no-op context.

    The spans counterpart of
    :func:`repro.telemetry.profiler.section_of`: call sites never
    branch on whether span tracing is enabled.
    """
    if spans is None or not spans.enabled:
        return nullcontext()
    return spans.span(name, **attributes)
