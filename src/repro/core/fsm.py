"""Executable FSMs of Fig. 2 and Fig. 3.

:mod:`repro.core.timing` accounts cycles arithmetically; this module
goes one level lower and *executes* the paper's FSMs state by state,
with each state bound to the datapath operation the VHDL performs.
Two uses:

* a hardware-faithful alternative implementation of the TiVaPRoMi
  variants, differentially tested against the behavioural classes in
  :mod:`repro.core.tivapromi` (same inputs + same random stream must
  give identical decisions);
* cycle accounting cross-validation: the cycles consumed by an executed
  loop must equal the Table II model.

The FSM walks Fig. 2 for the probabilistic variants:

    idle -> init -> search in table -> calculate weight -> decide
         -> [activate neighbor & update table] -> idle        (on act)
    idle -> update refresh interval -> same/new window check
         -> [reset table] -> idle                             (on ref)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.config import SimConfig
from repro.core.history_table import HistoryTable
from repro.core.weights import linear_weight, log_weight, probability
from repro.rng import stream


@dataclass
class FSMTrace:
    """Record of one executed FSM loop."""

    states: List[str] = field(default_factory=list)
    cycles: int = 0

    def enter(self, state: str, cycles: int) -> None:
        self.states.append(state)
        self.cycles += cycles


class Fig2FSM:
    """The Fig. 2 FSM, executing one of the three weighting variants.

    The datapath mirrors the hardware: the table search walks one entry
    per cycle; the weight unit computes linear and (for the log
    variants) logarithmic weights; the decide state compares the scaled
    weight against the random source; a positive decision performs the
    table update in the same pass.
    """

    #: per-variant cycles of the "calculate weight" state (Table II:
    #: LoLi selects between two speculative weights in one cycle)
    WEIGHT_CYCLES = {"linear": 2, "log": 2, "loli": 1}

    def __init__(self, config: SimConfig, weighting: str, bank: int = 0,
                 seed: int = 0):
        if weighting not in self.WEIGHT_CYCLES:
            raise ValueError(f"unknown weighting {weighting!r}")
        self.config = config
        self.weighting = weighting
        self.refint = config.geometry.refint
        self.table = HistoryTable(
            entries=config.history_table_entries, refint=self.refint
        )
        self.rng = stream(seed, "fig2-fsm", weighting, bank)
        self.last_trace: Optional[FSMTrace] = None

    # -- the two FSM loops --------------------------------------------------

    def on_act(self, row: int, interval: int) -> bool:
        """Process an ``act``; returns True when act_n is issued."""
        fsm_trace = FSMTrace()
        fsm_trace.enter("init", 1)

        # search in table: sequential, one entry per cycle; the search
        # always scans the full table (search_cm fires at the end)
        stored = self.table.lookup(row)
        fsm_trace.enter("search in table", self.table.capacity)

        # calculate weight
        window_now = interval % self.refint
        if stored is not None:
            raw = linear_weight(window_now, stored, self.refint)
        else:
            raw = linear_weight(
                window_now,
                self.config.geometry.refresh_interval_of(row),
                self.refint,
            )
        if self.weighting == "linear":
            weight = raw
        elif self.weighting == "log":
            weight = log_weight(raw)
        else:  # loli: mux between the two speculative weights
            weight = raw if stored is not None else log_weight(raw)
        fsm_trace.enter("calculate weight", self.WEIGHT_CYCLES[self.weighting])

        # decide: compare w * Pbase against the random source
        trigger = self.rng.random() < probability(weight, self.config.pbase)
        fsm_trace.enter("decide", 1)

        if trigger:
            self.table.record(row, window_now)
            fsm_trace.enter("activate neighbor & update table", 1)
        else:
            # the negative edge still spends the transition cycle back
            # to idle, matching the Table II totals
            fsm_trace.enter("return to idle", 1)
        self.last_trace = fsm_trace
        return trigger

    def on_ref(self, interval: int) -> None:
        """Process a ``ref``: interval bookkeeping and window reset."""
        fsm_trace = FSMTrace()
        fsm_trace.enter("update refresh interval", 1)
        new_window = interval % self.refint == 0
        fsm_trace.enter("same/new refresh window", 1)
        if new_window:
            self.table.clear()
        fsm_trace.enter("reset table" if new_window else "idle", 1)
        self.last_trace = fsm_trace

    # -- introspection -------------------------------------------------------

    @property
    def last_cycles(self) -> int:
        return self.last_trace.cycles if self.last_trace else 0


class Fig3FSM:
    """The Fig. 3 FSM (CaPRoMi's counter-assisted datapath).

    ``act`` path: search/increase the counter table (two entries per
    cycle) while the history table is searched for a link; insert or
    randomly replace on a miss (lock bits protect hot entries).
    ``ref`` path: a 4-cycle-per-entry sweep computing
    ``p = cnt * w_log * Pbase`` for every live counter, issuing act_n
    on positive decisions and updating the history table.
    """

    def __init__(self, config: SimConfig, bank: int = 0, seed: int = 0):
        from repro.core.counter_table import CounterTable

        self.config = config
        self.refint = config.geometry.refint
        self.history = HistoryTable(
            entries=config.history_table_entries, refint=self.refint
        )
        self.counters = CounterTable(
            entries=config.counter_table_entries,
            lock_threshold=config.capromi_lock_threshold,
            seed=seed,
        )
        self.rng = stream(seed, "CaPRoMi", bank)
        self.last_trace: Optional[FSMTrace] = None

    def on_act(self, row: int, interval: int) -> None:
        fsm_trace = FSMTrace()
        fsm_trace.enter(
            "search/increase",
            -(-self.config.counter_table_entries // 2),
        )
        link = self.history.lookup_index(row)
        fsm_trace.enter(
            "find linked", -(-self.config.history_table_entries // 2)
        )
        self.counters.observe(row, history_link=link)
        fsm_trace.enter("insert/replace", 1)
        fsm_trace.enter("link/update", 1)
        self.last_trace = fsm_trace

    def on_ref(self, interval: int) -> List[int]:
        """Collective decision; returns rows issued as act_n."""
        fsm_trace = FSMTrace()
        fsm_trace.enter("init", 1)
        window_now = interval % self.refint
        issued: List[int] = []
        if window_now == 0:
            self.history.clear()
            self.counters.clear()
        else:
            for entry in self.counters.entries():
                weight = self._entry_weight(entry, window_now)
                trigger_p = probability(
                    entry.count * log_weight(weight), self.config.pbase
                )
                if self.rng.random() < trigger_p:
                    issued.append(entry.row)
                    self.history.record(entry.row, window_now)
            self.counters.clear()
        fsm_trace.enter(
            "weight/decision sweep", self.config.counter_table_entries * 4
        )
        fsm_trace.enter("clear counters", 1)
        self.last_trace = fsm_trace
        return issued

    def _entry_weight(self, entry, window_now: int) -> int:
        if entry.history_link >= 0:
            linked = self.history.entry_at(entry.history_link)
            if linked is not None and linked.row == entry.row:
                return linear_weight(window_now, linked.interval, self.refint)
        return linear_weight(
            window_now,
            self.config.geometry.refresh_interval_of(entry.row),
            self.refint,
        )

    @property
    def last_cycles(self) -> int:
        return self.last_trace.cycles if self.last_trace else 0
