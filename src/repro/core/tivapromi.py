"""The purely probabilistic TiVaPRoMi variants (Sections III-A..C).

All three share the FSM of Fig. 2: on every ``act`` the history table
is searched, the weight is computed (from the stored mitigation
interval on a hit, from the periodic-refresh slot ``f_r`` otherwise),
the probability ``p_r = w * Pbase`` is compared against a random
number, and a positive decision issues ``act_n`` and records the row in
the history table.  On ``ref`` the current interval advances and the
table is cleared at window boundaries.

The variants differ only in the weighting applied:

* **LiPRoMi** -- linear ``w`` (Eq. 1).  Finest-grained, but weights grow
  slowly, so an attacker who knows the refresh mapping (or floods one
  row) hammers under a tiny probability for a long time: the documented
  vulnerability of Section III-A.
* **LoPRoMi** -- logarithmic ``w_log`` (Eq. 2).  Weights jump to the
  next power of two, closing the low-weight window at the price of more
  extra activations.
* **LoLiPRoMi** -- linear for rows found in the history table (they were
  just refreshed; the low probability is justified), logarithmic for
  unknown rows.
"""

from __future__ import annotations

from typing import ClassVar, Sequence, Tuple

from repro.config import SimConfig
from repro.core.history_table import HistoryTable
from repro.core.weights import linear_weight, log_weight, probability
from repro.mitigations.base import ActivateNeighbors, Mitigation, MitigationAction
from repro.rng import stream


class TiVaPRoMiBase(Mitigation):
    """Common engine of LiPRoMi, LoPRoMi and LoLiPRoMi.

    ``refresh_slot_fn`` maps a row to the window-relative interval that
    refreshes it (``f_r``).  The default is the paper's sequential
    assumption ``r / RowsPI``; passing a refresh policy's exact inverse
    mapping instead lets the Section IV robustness experiment quantify
    how much the assumption costs when the device's real refresh order
    differs.
    """

    #: 'linear', 'log', or 'loli' -- fixed by the subclass
    weighting: ClassVar[str] = "linear"
    #: Eq. 1 compares ``w * Pbase`` against the seeded stream, so both
    #: grid axes genuinely change behaviour (stated explicitly rather
    #: than inherited so the fused-engine dedup contract is visible)
    consumes_rng: ClassVar[bool] = True
    consumes_pbase: ClassVar[bool] = True

    def __init__(
        self,
        config: SimConfig,
        bank: int = 0,
        seed: int = 0,
        refresh_slot_fn=None,
    ):
        super().__init__(config, bank)
        self.pbase = config.pbase
        self.history = HistoryTable(
            entries=config.history_table_entries, refint=self.refint
        )
        self.refresh_slot_fn = (
            refresh_slot_fn or config.geometry.refresh_interval_of
        )
        self._rng = stream(seed, self.name, bank)

    def raw_weight(self, row: int, interval: int) -> Tuple[int, bool]:
        """Eq. 1 weight of *row* and whether the history table supplied it."""
        window_now = self.window_interval(interval)
        stored = self.history.lookup(row)
        if stored is not None:
            return linear_weight(window_now, stored, self.refint), True
        f_r = self.refresh_slot_fn(row)
        return linear_weight(window_now, f_r, self.refint), False

    def effective_weight(self, raw: int, in_table: bool) -> int:
        if self.weighting == "linear":
            return raw
        if self.weighting == "log":
            return log_weight(raw)
        # 'loli': linear when the history table knows the row
        return raw if in_table else log_weight(raw)

    def trigger_probability(self, row: int, interval: int) -> float:
        """The probability an activation of *row* triggers ``act_n`` now."""
        raw, in_table = self.raw_weight(row, interval)
        return probability(self.effective_weight(raw, in_table), self.pbase)

    def on_activation(self, row: int, interval: int) -> Sequence[MitigationAction]:
        # same arithmetic as trigger_probability(), unrolled so the
        # telemetry hooks can observe the weight without recomputing it
        raw, in_table = self.raw_weight(row, interval)
        weight = self.effective_weight(raw, in_table)
        if self._rng.random() >= probability(weight, self.pbase):
            return ()
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.on_trigger_weight(
                self.bank, row, interval, weight, in_table
            )
        evicted = self.history.record(row, self.window_interval(interval))
        if telemetry is not None and evicted is not None:
            telemetry.on_history_evict(self.bank, evicted, interval)
        return (ActivateNeighbors(row=row),)

    def on_refresh(self, interval: int) -> Sequence[MitigationAction]:
        if self.window_interval(interval) == 0:
            self.history.clear()
        return ()

    @property
    def table_bytes(self) -> int:
        return self.history.table_bytes

    @property
    def table_occupancy(self) -> int:
        """Live history-table entries (telemetry occupancy histogram)."""
        return len(self.history)


class LiPRoMi(TiVaPRoMiBase):
    name: ClassVar[str] = "LiPRoMi"
    weighting: ClassVar[str] = "linear"
    known_vulnerabilities: ClassVar[Tuple[str, ...]] = (
        "weight-aware flooding: hammering a row just after its refresh "
        "slot keeps the linear weight (and so p_r) small for ~40 K "
        "activations (Sections III-A and IV)",
    )


class LoPRoMi(TiVaPRoMiBase):
    name: ClassVar[str] = "LoPRoMi"
    weighting: ClassVar[str] = "log"
    known_vulnerabilities: ClassVar[Tuple[str, ...]] = ()


class LoLiPRoMi(TiVaPRoMiBase):
    name: ClassVar[str] = "LoLiPRoMi"
    weighting: ClassVar[str] = "loli"
    known_vulnerabilities: ClassVar[Tuple[str, ...]] = ()
