"""CaPRoMi's per-interval counter table (Section III-D).

Tracks activation counts *within one refresh interval*.  64 entries in
the paper -- sized between the measured average (40) and physical
maximum (165) activations per DDR4 refresh interval.  Replacement is
random among unlocked entries; an entry whose count reaches the lock
threshold sets a lock bit and can no longer be evicted, so heavy
hitters are never lost.

Each entry can also carry a *link* to a history-table index, filled in
when the activated row was found in the history table; at decision time
the linked entry supplies the last-mitigation interval for Eq. 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.rng import stream

ROW_BITS = 17
COUNT_BITS = 8
LOCK_BITS = 1


@dataclass
class CounterEntry:
    row: int
    count: int = 1
    locked: bool = False
    #: index into the history table, -1 when unlinked
    history_link: int = -1


class CounterTable:
    """Fixed-capacity activation counters for one refresh interval."""

    def __init__(self, entries: int, lock_threshold: int, seed: int = 0):
        if entries < 1:
            raise ValueError("counter table needs at least one entry")
        if lock_threshold < 1:
            raise ValueError("lock threshold must be positive")
        self.capacity = entries
        self.lock_threshold = lock_threshold
        self._rng = stream(seed, "counter-table")
        self._entries: Dict[int, CounterEntry] = {}
        #: activations dropped because the table was full of locked rows
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._entries)

    def observe(self, row: int, history_link: int = -1) -> Optional[CounterEntry]:
        """Count an activation of *row*; returns its entry (or None if
        the table was full of locked entries and the row was dropped)."""
        entry = self._entries.get(row)
        if entry is not None:
            entry.count += 1
            if entry.count >= self.lock_threshold:
                entry.locked = True
            if history_link >= 0:
                entry.history_link = history_link
            return entry
        if len(self._entries) >= self.capacity and not self._evict():
            self.dropped += 1
            return None
        entry = CounterEntry(row=row, history_link=history_link)
        if entry.count >= self.lock_threshold:
            entry.locked = True
        self._entries[row] = entry
        return entry

    def _evict(self) -> bool:
        """Randomly remove an unlocked entry; False if all are locked."""
        unlocked = [row for row, entry in self._entries.items() if not entry.locked]
        if not unlocked:
            return False
        victim = unlocked[self._rng.randrange(len(unlocked))]
        del self._entries[victim]
        return True

    def entries(self) -> List[CounterEntry]:
        return list(self._entries.values())

    def get(self, row: int) -> Optional[CounterEntry]:
        return self._entries.get(row)

    def clear(self) -> None:
        """End of the refresh interval: restart counting."""
        self._entries.clear()

    def table_bytes(self, history_entries: int) -> int:
        """Storage footprint; the link field addresses the history table.

        With 64 entries of (17-bit row + 8-bit count + lock + 5-bit
        link + valid) this reproduces the paper's 374 B total when added
        to the 120 B history table.
        """
        link_bits = max(1, (history_entries - 1).bit_length())
        entry_bits = ROW_BITS + COUNT_BITS + LOCK_BITS + link_bits + 1
        return (self.capacity * entry_bits + 7) // 8
