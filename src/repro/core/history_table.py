"""The TiVaPRoMi history table (Section III).

A small per-bank table recording *(row, refresh interval)* pairs for
rows that already received a mitigating ``act_n`` in the current
refresh window.  When such a row is activated again, its weight is
computed from the stored interval instead of its periodic-refresh slot,
so it does not immediately trigger further (unneeded) extra
activations.

Properties modelled after the hardware:

* fixed capacity (paper: 32 entries, 120 B per 1 GB bank);
* FIFO replacement when full;
* sequential search (the cycle cost appears in the Table II model);
* cleared when a new refresh window starts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

#: row-address width for a 64 K-row bank; with the 13-bit interval field
#: this gives the paper's 32 * 30 bits = 120 B table.
ROW_BITS = 17


@dataclass
class HistoryEntry:
    row: int
    interval: int


class HistoryTable:
    """Fixed-capacity FIFO table of (row, interval) records."""

    def __init__(self, entries: int, refint: int):
        if entries < 1:
            raise ValueError("history table needs at least one entry")
        self.capacity = entries
        self.refint = refint
        self._entries: List[HistoryEntry] = []
        #: sequential-search effort of the most recent lookup (cycles
        #: proxy, used by the timing model tests)
        self.last_search_steps = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, row: int) -> Optional[int]:
        """Sequentially search for *row*; return its stored interval."""
        for steps, entry in enumerate(self._entries, start=1):
            if entry.row == row:
                self.last_search_steps = steps
                return entry.interval
        self.last_search_steps = len(self._entries)
        return None

    def lookup_index(self, row: int) -> int:
        """Index of *row*'s entry, or -1 (CaPRoMi links by index)."""
        for index, entry in enumerate(self._entries):
            if entry.row == row:
                return index
        return -1

    def entry_at(self, index: int) -> Optional[HistoryEntry]:
        if 0 <= index < len(self._entries):
            return self._entries[index]
        return None

    def record(self, row: int, interval: int) -> Optional[int]:
        """Store that *row* got a mitigating refresh during *interval*.

        Updates the row's entry in place when present; otherwise
        appends, evicting the oldest entry when at capacity (FIFO).
        Returns the evicted row, or ``None`` when nothing was evicted
        (telemetry uses this to emit history-evict events).
        """
        if not 0 <= interval < self.refint:
            raise ValueError(f"interval {interval} outside [0, {self.refint})")
        for entry in self._entries:
            if entry.row == row:
                entry.interval = interval
                return None
        evicted: Optional[int] = None
        if len(self._entries) >= self.capacity:
            evicted = self._entries.pop(0).row
        self._entries.append(HistoryEntry(row=row, interval=interval))
        return evicted

    def clear(self) -> None:
        """New refresh window: forget everything."""
        self._entries.clear()

    @property
    def interval_bits(self) -> int:
        return max(1, (self.refint - 1).bit_length())

    @property
    def table_bytes(self) -> int:
        """Storage footprint (paper: 32 entries -> 120 B)."""
        return (self.capacity * (ROW_BITS + self.interval_bits) + 7) // 8
