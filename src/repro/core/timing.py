"""FSM cycle-accounting model (Table II).

The paper implements each variant's FSM (Figs. 2 and 3) in VHDL and
reports the clock cycles of one ``idle -> ... -> idle`` loop after an
``act`` or ``ref`` command, against the DDR4 budgets of 54 cycles
(45 ns at 1.2 GHz) and 420 cycles (350 ns).  We reproduce those numbers
with an explicit state-walk model:

* table searches are sequential, ``ceil(entries / parallelism)``
  cycles; CaPRoMi's VHDL searches the counter table and the history
  table two entries per cycle ("in parallel, the history table is
  searched", Section III-D);
* weight calculation costs 2 cycles for linear (subtract + wrap) and
  logarithmic (subtract + modified priority encoder) weighting, and 1
  for LoLiPRoMi, whose mux selects between the two speculatively
  computed weights;
* CaPRoMi's ``ref`` decision loop spends 4 cycles per counter entry
  (weight, Eq. 2 encode, multiply, compare).

The same model answers the DDR3 retargeting question of Section IV:
how much extra search parallelism each technique needs to fit the
320 MHz budgets, which drives the area model's DDR3 LUT counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.config import DRAMTiming, SimConfig

#: variants of the Fig. 2 FSM and their weight-calculation cycles
_WEIGHT_CYCLES = {"LiPRoMi": 2, "LoPRoMi": 2, "LoLiPRoMi": 1}


@dataclass(frozen=True)
class FSMStep:
    """One state of an FSM loop and the cycles spent in it."""

    state: str
    cycles: int


@dataclass(frozen=True)
class CyclePlan:
    """A full FSM loop: its steps and their total."""

    steps: Tuple[FSMStep, ...]

    @property
    def total(self) -> int:
        return sum(step.cycles for step in self.steps)


def _ceil_div(amount: int, parallelism: int) -> int:
    if parallelism < 1:
        raise ValueError("parallelism must be >= 1")
    return math.ceil(amount / parallelism)


def probabilistic_act_plan(
    variant: str,
    history_entries: int = 32,
    search_parallelism: int = 1,
) -> CyclePlan:
    """Fig. 2 loop after ``act`` for LiPRoMi / LoPRoMi / LoLiPRoMi."""
    if variant not in _WEIGHT_CYCLES:
        raise ValueError(f"unknown Fig. 2 variant: {variant}")
    return CyclePlan(
        steps=(
            FSMStep("init", 1),
            FSMStep("search in table", _ceil_div(history_entries, search_parallelism)),
            FSMStep("calculate weight", _WEIGHT_CYCLES[variant]),
            FSMStep("decide", 1),
            FSMStep("activate neighbor & update table", 1),
        )
    )


def probabilistic_ref_plan(variant: str) -> CyclePlan:
    """Fig. 2 loop after ``ref``: interval bookkeeping only."""
    if variant not in _WEIGHT_CYCLES:
        raise ValueError(f"unknown Fig. 2 variant: {variant}")
    return CyclePlan(
        steps=(
            FSMStep("update refresh interval", 1),
            FSMStep("same/new refresh window", 1),
            FSMStep("reset table", 1),
        )
    )


def capromi_act_plan(
    counter_entries: int = 64,
    history_entries: int = 32,
    counter_search_parallelism: int = 2,
    history_search_parallelism: int = 2,
) -> CyclePlan:
    """Fig. 3 loop after ``act`` for CaPRoMi."""
    return CyclePlan(
        steps=(
            FSMStep(
                "search/increase",
                _ceil_div(counter_entries, counter_search_parallelism),
            ),
            FSMStep(
                "find linked",
                _ceil_div(history_entries, history_search_parallelism),
            ),
            FSMStep("insert/replace", 1),
            FSMStep("link/update", 1),
        )
    )


def capromi_ref_plan(
    counter_entries: int = 64,
    decision_parallelism: int = 1,
    cycles_per_entry: int = 4,
) -> CyclePlan:
    """Fig. 3 loop after ``ref``: the collective decision sweep."""
    return CyclePlan(
        steps=(
            FSMStep("init", 1),
            FSMStep(
                "weight/decision sweep",
                _ceil_div(counter_entries * cycles_per_entry, decision_parallelism),
            ),
            FSMStep("clear counters", 1),
        )
    )


def act_cycles(variant: str, config: SimConfig, parallelism: int = 1) -> int:
    """Cycles of one FSM loop after ``act`` (any of the four variants)."""
    if variant == "CaPRoMi":
        return capromi_act_plan(
            counter_entries=config.counter_table_entries,
            history_entries=config.history_table_entries,
            counter_search_parallelism=2 * parallelism,
            history_search_parallelism=2 * parallelism,
        ).total
    return probabilistic_act_plan(
        variant,
        history_entries=config.history_table_entries,
        search_parallelism=parallelism,
    ).total


def ref_cycles(variant: str, config: SimConfig, parallelism: int = 1) -> int:
    """Cycles of one FSM loop after ``ref``."""
    if variant == "CaPRoMi":
        return capromi_ref_plan(
            counter_entries=config.counter_table_entries,
            decision_parallelism=parallelism,
        ).total
    return probabilistic_ref_plan(variant).total


def table2(config: SimConfig) -> Dict[str, Dict[str, int]]:
    """Reproduce Table II: cycles per observed ``act``/``ref`` command."""
    variants = ("CaPRoMi", "LoLiPRoMi", "LoPRoMi", "LiPRoMi")
    return {
        variant: {
            "act": act_cycles(variant, config),
            "ref": ref_cycles(variant, config),
        }
        for variant in variants
    }


def budget_check(config: SimConfig, timing: DRAMTiming = None) -> Dict[str, bool]:
    """Verify no variant violates the act/ref cycle budgets (Section IV)."""
    timing = timing or config.timing
    act_budget = timing.act_cycle_budget
    ref_budget = timing.ref_cycle_budget
    result = {}
    for variant, cycles in table2(config).items():
        result[variant] = (
            cycles["act"] <= act_budget and cycles["ref"] <= ref_budget
        )
    return result


def required_parallelism(
    variant: str, config: SimConfig, timing: DRAMTiming
) -> int:
    """Minimal search parallelism fitting *timing*'s cycle budgets.

    This is the Section IV DDR3 retargeting: at 320 MHz only 14 act /
    112 ref cycles are available, so table-searching techniques must
    check several entries per cycle, growing their area.
    """
    act_budget = timing.act_cycle_budget
    ref_budget = timing.ref_cycle_budget
    for parallelism in range(1, 4097):
        if (
            act_cycles(variant, config, parallelism) <= act_budget
            and ref_cycles(variant, config, parallelism) <= ref_budget
        ):
            return parallelism
    raise ValueError(
        f"{variant} cannot fit act<={act_budget}/ref<={ref_budget} cycles "
        "at any modelled parallelism"
    )


def cycle_report(config: SimConfig) -> List[str]:
    """Human-readable Table II with budget verdicts."""
    lines = ["variant      act  ref  (budgets: "
             f"act<={config.timing.act_cycle_budget}, "
             f"ref<={config.timing.ref_cycle_budget})"]
    for variant, cycles in table2(config).items():
        ok = (
            cycles["act"] <= config.timing.act_cycle_budget
            and cycles["ref"] <= config.timing.ref_cycle_budget
        )
        lines.append(
            f"{variant:<12} {cycles['act']:>3}  {cycles['ref']:>3}  "
            f"{'ok' if ok else 'VIOLATION'}"
        )
    return lines
