"""CaPRoMi -- counter-assisted probabilistic weighting (Section III-D).

CaPRoMi combines counters with time-varying probabilities (the paper
notes no prior work had tried the combination):

* During a refresh interval, a small counter table counts activations
  per row.  On first sight a row is inserted (randomly evicting an
  unlocked entry when full); entries whose count reaches a threshold
  lock themselves against eviction.  In parallel the history table is
  searched and, on a hit, the matching history index is linked into the
  counter entry.
* When the ``ref`` command arrives, the decision is made *collectively*
  for the interval just finished: every counter entry computes
  ``w_log`` (Eq. 2, from the linked history interval when available,
  else the row's refresh slot) and triggers ``act_n`` with probability
  ``p = cnt * w_log * Pbase``.  Positive decisions update the history
  table; the counter table is then cleared for the next interval.

The paper issues the resulting extra activations "during the next
refresh interval"; we apply them at the decision point -- the
sub-interval scheduling slack has no observable effect on the
disturbance model (a row refreshed a few microseconds later is still
refreshed thousands of activations before the threshold).
"""

from __future__ import annotations

from typing import ClassVar, List, Sequence, Tuple

from repro.config import SimConfig
from repro.core.counter_table import CounterTable
from repro.core.history_table import HistoryTable
from repro.core.weights import linear_weight, log_weight, probability
from repro.mitigations.base import ActivateNeighbors, Mitigation, MitigationAction
from repro.rng import stream


class CaPRoMi(Mitigation):
    name: ClassVar[str] = "CaPRoMi"
    known_vulnerabilities: ClassVar[Tuple[str, ...]] = ()
    #: trigger decisions compare counter-scaled ``Pbase`` against the
    #: seeded stream; both fused-grid axes are live
    consumes_rng: ClassVar[bool] = True
    consumes_pbase: ClassVar[bool] = True

    def __init__(self, config: SimConfig, bank: int = 0, seed: int = 0):
        super().__init__(config, bank)
        self.pbase = config.pbase
        self.history = HistoryTable(
            entries=config.history_table_entries, refint=self.refint
        )
        self.counters = CounterTable(
            entries=config.counter_table_entries,
            lock_threshold=config.capromi_lock_threshold,
            seed=seed,
        )
        self._rng = stream(seed, self.name, bank)

    def on_activation(self, row: int, interval: int) -> Sequence[MitigationAction]:
        link = self.history.lookup_index(row)
        self.counters.observe(row, history_link=link)
        return ()

    def on_refresh(self, interval: int) -> Sequence[MitigationAction]:
        """Collective decision for the interval that just ended."""
        window_now = self.window_interval(interval)
        if window_now == 0:
            self.history.clear()
            self.counters.clear()
            return ()
        actions: List[MitigationAction] = []
        for entry in self.counters.entries():
            weight = self._entry_weight(entry.row, entry.history_link, window_now)
            trigger_p = probability(entry.count * log_weight(weight), self.pbase)
            if self._rng.random() < trigger_p:
                actions.append(ActivateNeighbors(row=entry.row))
                self.history.record(entry.row, window_now)
        self.counters.clear()
        return tuple(actions)

    def _entry_weight(self, row: int, history_link: int, window_now: int) -> int:
        """Eq. 1 weight from the linked history entry, else from f_r."""
        if history_link >= 0:
            linked = self.history.entry_at(history_link)
            if linked is not None and linked.row == row:
                return linear_weight(window_now, linked.interval, self.refint)
        f_r = self.config.geometry.refresh_interval_of(row)
        return linear_weight(window_now, f_r, self.refint)

    @property
    def table_bytes(self) -> int:
        return self.history.table_bytes + self.counters.table_bytes(
            self.history.capacity
        )
