"""Weight functions of TiVaPRoMi (Eq. 1 and Eq. 2 of the paper).

The *weight* of a row is the number of refresh intervals since the row
was last restored -- by the periodic refresh by default, or by a
mitigating refresh recorded in the history table.  The activation
probability is ``p_r = w_r * Pbase``, so the weight is the "time
varying" part of the technique.
"""

from __future__ import annotations


def linear_weight(current_interval: int, last_refresh_interval: int, refint: int) -> int:
    """Eq. 1: intervals elapsed since *last_refresh_interval*.

    Both arguments are window-relative interval indices in
    ``[0, refint)``; the wrap-around branch covers rows whose refresh
    slot lies later in the window than the current interval (they were
    last refreshed in the *previous* window).
    """
    if not 0 <= current_interval < refint:
        raise ValueError(f"current interval {current_interval} outside [0, {refint})")
    if not 0 <= last_refresh_interval < refint:
        raise ValueError(
            f"refresh interval {last_refresh_interval} outside [0, {refint})"
        )
    delta = current_interval - last_refresh_interval
    if delta < 0:
        delta += refint
    return delta


def log_weight(weight: int) -> int:
    """Eq. 2: ``2 ** ceil(log2(w + 1))``.

    Quantises the linear weight up to the next power of two, so weights
    grow quickly while small (every value in ``[16, 31]`` maps to 32,
    as the paper's example states).  The ``+ 1`` handles ``w = 0``,
    which maps to 1 rather than an undefined logarithm.
    """
    if weight < 0:
        raise ValueError(f"weight must be non-negative: {weight}")
    # ceil(log2(x)) == (x - 1).bit_length() for x >= 1, so with
    # x = weight + 1 the exponent is weight.bit_length().
    return 1 << weight.bit_length()


def probability(weight: int, pbase: float) -> float:
    """Trigger probability ``p_r = w * Pbase``, capped at 1."""
    return min(1.0, weight * pbase)


def trigger_probability(
    current_interval: int,
    last_refresh_interval: int,
    refint: int,
    pbase: float,
    weighting: str = "linear",
    in_table: bool = False,
) -> float:
    """Eq. 1 + Eq. 2 + cap in one call.

    ``weighting`` selects the variant: ``"linear"`` uses the raw Eq. 1
    weight, ``"log"`` always quantises it with Eq. 2, and ``"loli"``
    quantises only rows *not* held in the history table (the LoLiPRoMi
    hybrid).  The fast engine uses this to materialise per-interval
    probability vectors from the same math the reference mitigation
    evaluates row-by-row.
    """
    weight = linear_weight(current_interval, last_refresh_interval, refint)
    if weighting == "log" or (weighting == "loli" and not in_table):
        weight = log_weight(weight)
    elif weighting not in ("linear", "loli"):
        raise ValueError(f"unknown weighting: {weighting}")
    return probability(weight, pbase)
