"""TiVaPRoMi core: weights, tables, the four variants, FSM timing."""

from repro.core.capromi import CaPRoMi
from repro.core.counter_table import CounterEntry, CounterTable
from repro.core.history_table import HistoryEntry, HistoryTable
from repro.core.timing import (
    act_cycles,
    budget_check,
    cycle_report,
    ref_cycles,
    required_parallelism,
    table2,
)
from repro.core.tivapromi import LiPRoMi, LoLiPRoMi, LoPRoMi, TiVaPRoMiBase
from repro.core.weights import linear_weight, log_weight, probability

__all__ = [
    "CaPRoMi",
    "CounterEntry",
    "CounterTable",
    "HistoryEntry",
    "HistoryTable",
    "LiPRoMi",
    "LoLiPRoMi",
    "LoPRoMi",
    "TiVaPRoMiBase",
    "act_cycles",
    "budget_check",
    "cycle_report",
    "linear_weight",
    "log_weight",
    "probability",
    "ref_cycles",
    "required_parallelism",
    "table2",
]
