"""The streaming evaluation service behind ``repro serve``.

A session-sharded asyncio server (:mod:`repro.serve.server`), its
NDJSON wire protocol (:mod:`repro.serve.protocol`) and a blocking
client (:mod:`repro.serve.client`).  See ``docs/serve.md`` for the
protocol specification and a runnable quickstart.
"""

from repro.serve.client import (
    ServeClient,
    ServeDisconnected,
    ServeError,
    SessionOutcome,
)
from repro.serve.protocol import (
    DEFAULT_CHUNK_BYTES,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_chunk,
    decode_frame,
    encode_chunk,
    encode_frame,
    error_frame,
)
from repro.serve.server import ServeServer, ServeSettings

__all__ = [
    "DEFAULT_CHUNK_BYTES",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServeClient",
    "ServeDisconnected",
    "ServeError",
    "ServeServer",
    "ServeSettings",
    "SessionOutcome",
    "decode_chunk",
    "decode_frame",
    "encode_chunk",
    "encode_frame",
    "error_frame",
]
