"""Blocking client for the ``repro serve`` evaluation service.

:class:`ServeClient` opens one session per :meth:`ServeClient.submit`
call: it streams a trace file to the server in ``chunk`` frames and
iterates the server's reply frames until ``done`` or ``error``.  The
client is deliberately synchronous (plain sockets, no asyncio): it is
what the ``repro submit`` CLI, the docs quickstart and the CI smoke
job use, and those callers want a simple loop, not an event loop.

    from repro.serve.client import ServeClient

    client = ServeClient("127.0.0.1", 7777)
    outcome = client.submit(
        "trace.gz", techniques=["PARA"], seeds=[0], clock_ns=45.0,
    )
    for verdict in outcome.verdicts:
        print(verdict["result"]["bit_flips"])

Streaming consumers pass ``on_frame`` to observe every frame as it
arrives (progress bars, live verdict printing) while ``submit`` still
collects the session outcome.

Failure taxonomy:

* :class:`ServeError` -- the server answered with an ``error`` frame;
  carries the protocol ``code``.
* :class:`ServeDisconnected` -- the connection died without a
  terminal frame (server killed, network gone, or the client was shed
  for falling behind).
"""

from __future__ import annotations

import socket
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from repro.serve.protocol import (
    DEFAULT_CHUNK_BYTES,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_chunk,
    encode_frame,
)


class ServeError(RuntimeError):
    """The server reported a session-terminating ``error`` frame."""

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.server_message = message


class ServeDisconnected(ConnectionError):
    """The connection closed without a terminal ``done``/``error`` frame.

    Raised when the server process dies mid-session (the CI smoke job
    SIGKILLs a server to pin this), when the network drops, or when the
    server shed this client for not reading fast enough.
    """


@dataclass
class SessionOutcome:
    """Everything a completed session streamed back."""

    session: str = ""
    hello: Dict[str, Any] = field(default_factory=dict)
    accepted: Dict[str, Any] = field(default_factory=dict)
    provenance: Dict[str, Any] = field(default_factory=dict)
    verdicts: List[Dict[str, Any]] = field(default_factory=list)
    session_metrics: Dict[str, Any] = field(default_factory=dict)
    done: Dict[str, Any] = field(default_factory=dict)

    @property
    def cache_hit(self) -> bool:
        """Did the server satisfy ingest from the shared cache?"""
        return bool(self.provenance.get("cache", {}).get("hit"))

    def results(self) -> List[Dict[str, Any]]:
        """The per-cell ``SimResult.as_dict()`` payloads, in cell order."""
        return [v["result"] for v in self.verdicts]


class ServeClient:
    """One server endpoint; each :meth:`submit` is one fresh session."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: Optional[float] = 60.0,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ):
        if chunk_bytes < 1:
            raise ValueError(f"chunk_bytes must be >= 1: {chunk_bytes}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.chunk_bytes = chunk_bytes

    # -- public API ----------------------------------------------------

    def submit(
        self,
        trace_path,
        techniques: Sequence[str] = ("PARA",),
        seeds: Sequence[int] = (0,),
        format: str = "auto",
        mapper: str = "layout",
        clock_ns: float = 1.0,
        mark_attacks: Optional[bool] = None,
        on_parse_error: str = "raise",
        session: str = "",
        on_frame: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> SessionOutcome:
        """Stream *trace_path* for evaluation; block until the verdicts.

        Raises :class:`ServeError` on a server-reported failure,
        :class:`ServeDisconnected` when the connection dies first, and
        ``FileNotFoundError`` before connecting if the trace is absent.
        """
        path = Path(trace_path)
        if not path.is_file():
            raise FileNotFoundError(f"trace file not found: {path}")
        open_frame = {
            "type": "open",
            "protocol": PROTOCOL_VERSION,
            "format": format,
            "techniques": list(techniques),
            "seeds": [int(seed) for seed in seeds],
            "mapper": mapper,
            "clock_ns": float(clock_ns),
            "mark_attacks": mark_attacks,
            "on_parse_error": on_parse_error,
            "session": session,
        }
        outcome = SessionOutcome(session=session)
        with socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        ) as sock:
            reader = sock.makefile("rb")
            try:
                outcome.hello = self._expect(reader, "hello")
                self._send(sock, open_frame)
                outcome.accepted = self._expect(reader, "accepted")
                outcome.session = outcome.accepted.get("session", session)
                if on_frame is not None:
                    on_frame(outcome.accepted)
                with path.open("rb") as trace:
                    while True:
                        chunk = trace.read(self.chunk_bytes)
                        if not chunk:
                            break
                        self._send(sock, encode_chunk(chunk))
                self._send(sock, {"type": "end"})
                for frame in self._frames(reader):
                    if on_frame is not None:
                        on_frame(frame)
                    kind = frame["type"]
                    if kind == "ingest":
                        outcome.provenance = frame.get("provenance", {})
                    elif kind == "verdict":
                        outcome.verdicts.append(frame)
                    elif kind == "metrics":
                        outcome.session_metrics = frame.get("session", {})
                    elif kind == "done":
                        outcome.done = frame
                        return outcome
                    elif kind == "error":
                        raise ServeError(
                            frame.get("code", "protocol"),
                            frame.get("message", "unspecified server error"),
                        )
                    # progress and future frame types: observed via
                    # on_frame, otherwise ignored
                raise ServeDisconnected(
                    f"server {self.host}:{self.port} closed the connection "
                    "before a done/error frame"
                )
            finally:
                reader.close()

    # -- wire helpers --------------------------------------------------

    def _send(self, sock: socket.socket, frame: Dict[str, Any]) -> None:
        try:
            sock.sendall(encode_frame(frame))
        except (ConnectionError, OSError) as exc:
            raise ServeDisconnected(
                f"connection to {self.host}:{self.port} lost mid-upload: "
                f"{exc}"
            ) from exc

    def _frames(self, reader) -> Iterator[Dict[str, Any]]:
        while True:
            frame = self._read(reader)
            if frame is None:
                return
            yield frame

    def _read(self, reader) -> Optional[Dict[str, Any]]:
        try:
            line = reader.readline(MAX_FRAME_BYTES + 1)
        except (ConnectionError, OSError, socket.timeout) as exc:
            raise ServeDisconnected(
                f"connection to {self.host}:{self.port} lost: {exc}"
            ) from exc
        if not line or not line.endswith(b"\n"):
            return None
        return decode_frame(line)

    def _expect(self, reader, kind: str) -> Dict[str, Any]:
        frame = self._read(reader)
        if frame is None:
            raise ServeDisconnected(
                f"server {self.host}:{self.port} closed the connection "
                f"while awaiting {kind!r}"
            )
        if frame["type"] == "error":
            raise ServeError(
                frame.get("code", "protocol"),
                frame.get("message", "unspecified server error"),
            )
        if frame["type"] != kind:
            raise ProtocolError(
                f"expected {kind!r} frame, got {frame['type']!r}"
            )
        return frame
