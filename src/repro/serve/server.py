"""The ``repro serve`` evaluation service.

A long-running asyncio TCP server that accepts trace uploads over the
NDJSON protocol of :mod:`repro.serve.protocol`, evaluates each session
against a ``technique x seed`` cell grid, and streams verdict frames
back incrementally.  The design mirrors the campaign stack one layer
up:

* **Session-sharded workers.**  Accepted sessions are assigned
  round-robin to one of ``shards`` worker lanes; each lane owns a
  single-thread executor, so one session's cells evaluate in order on
  one shard while the event loop keeps every other connection live.
  The evaluation itself is the fused grid engine
  (:func:`~repro.sim.fused_engine.run_simulation_grid`) by default --
  one trace decode serves the whole cell grid -- with ``fast`` /
  ``reference`` per-cell fallbacks that stream verdicts as they finish.
* **Shared ingest cache.**  Uploads are spooled byte-for-byte, so the
  content digest (and therefore the PR5
  :class:`~repro.traces.ingest.cache.IngestCache` key) is identical to
  an offline ``repro run --trace-file`` of the same file.  All
  sessions share one cache root: the second upload of a trace is a
  cache hit no matter which client sent it first.
* **Backpressure, not buffers.**  Every session owns a bounded
  outbound frame queue drained by a writer task that honours TCP flow
  control.  When the queue is full the shard worker *throttles* --
  large grids never overflow just because the engine outruns the
  client's parser -- burning a per-session grace budget
  (``shed_grace_s``); a client that stays stuck past the budget is
  *shed* -- connection aborted, ``serve.sessions_shed`` incremented --
  so one genuinely dead consumer cannot hold its shard lane or memory
  hostage.  Queue depths are sampled into the ``serve.queue_depth``
  histogram on every enqueue.
* **Observability plane.**  Each session records a
  :class:`~repro.telemetry.spans.SpanTracer` tree and its own
  :class:`~repro.telemetry.metrics.MetricsRegistry`; both fold into
  the service-level registry when the session ends (the same
  adopt/merge discipline as campaign shards).  With ``--status-dir``
  the server publishes per-session
  :class:`~repro.telemetry.statusbus.WorkerHeartbeat` records and a
  rolling :class:`~repro.telemetry.statusbus.CampaignSnapshot` under
  ``<status_dir>/status``, so ``repro campaign-status <status_dir>
  --follow`` works unchanged against a live server; with
  ``--metrics-out`` the merged registry (plus span summary) is
  re-exported after every session, so the file on disk is always a
  consistent snapshot even if the server is later SIGKILLed.

The protocol spec and a runnable client/server quickstart live in
``docs/serve.md``.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import socket
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.config import SimConfig
from repro.mitigations.registry import make_factory, resolve_technique
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_chunk,
    decode_frame,
    encode_frame,
    error_frame,
)
from repro.sim.engine import ENGINE_NAMES, get_engine
from repro.sim.fused_engine import GridCell, run_simulation_grid
from repro.telemetry.export import write_metrics_export
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import SpanTracer
from repro.telemetry.statusbus import CampaignSnapshot, StatusBus
from repro.traces.ingest.cache import IngestCache, default_cache_dir
from repro.traces.ingest.pipeline import ingest_trace
from repro.traces.ingest.readers import FORMAT_NAMES
from repro.traces.ingest.streaming import ChunkDecoder
from repro.traces.trace_io import TraceFormatError

#: queue sentinel asking a session's writer task to exit cleanly
_CLOSE = object()

#: ``serve.queue_depth`` histogram bucket bounds (frames)
_QUEUE_DEPTH_BOUNDS = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


@dataclass
class ServeSettings:
    """Tunables of one :class:`ServeServer` (CLI flags map 1:1)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick a free port; read it back via server.port
    shards: int = 2
    engine: str = "fused"
    #: outbound frames buffered per session before the client is shed
    session_queue: int = 256
    #: chunk frames between ``progress`` frames during an upload
    progress_every: int = 16
    #: transport write-buffer high-water mark (small values surface
    #: slow clients quickly; the shed tests rely on this being small)
    write_buffer_bytes: int = 256 * 1024
    #: cells a single session may request
    max_cells: int = 4096
    #: ``campaign-status``-compatible status directory (None = off)
    status_dir: Optional[str] = None
    #: metrics/span export rewritten after every session (None = off)
    metrics_out: Optional[str] = None
    #: shared ingest-cache root (None = $REPRO_INGEST_CACHE default)
    ingest_cache: Optional[str] = None
    #: kernel SO_SNDBUF per connection (None = OS default).  Shrinking
    #: it bounds how many frames the kernel absorbs for a non-reading
    #: client, which is how the shed tests make backpressure prompt.
    so_sndbuf: Optional[int] = None
    #: cumulative seconds a session's worker may stall on a full
    #: outbound queue before the client is shed.  The throttle lets a
    #: compliant-but-slower client absorb grids far larger than
    #: ``session_queue``; only a client that stays stuck this long in
    #: total is dropped.
    shed_grace_s: float = 20.0

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1: {self.shards}")
        if self.session_queue < 1:
            raise ValueError(
                f"session_queue must be >= 1: {self.session_queue}"
            )
        if self.shed_grace_s < 0:
            raise ValueError(
                f"shed_grace_s must be >= 0: {self.shed_grace_s}"
            )
        if self.engine not in ENGINE_NAMES:
            raise ValueError(
                f"unknown engine {self.engine!r} (expected one of "
                f"{', '.join(ENGINE_NAMES)})"
            )


class _SessionError(RuntimeError):
    """A session-terminating failure with a protocol error code."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


class _Session:
    """Book-keeping for one connected evaluation session."""

    def __init__(
        self,
        session_id: str,
        shard: int,
        writer: asyncio.StreamWriter,
        spec: Dict[str, Any],
        cells: List[GridCell],
        queue_size: int,
    ):
        self.id = session_id
        self.shard = shard
        self.writer = writer
        self.spec = spec
        self.cells = cells
        self.queue: "asyncio.Queue" = asyncio.Queue(maxsize=queue_size)
        self.decoder = ChunkDecoder(source=f"session:{session_id}")
        self.spans = SpanTracer(id_seed=f"serve:{session_id}")
        self.registry = MetricsRegistry()
        self.spool_path: Optional[str] = None
        self.drain_task: Optional["asyncio.Task"] = None
        self.finished = asyncio.Event()
        self.shed = False
        self.outcome: Optional[str] = None
        self.cells_done = 0
        # worker-side frame accounting for the producer throttle: each
        # field has exactly one writer thread (worker bumps scheduled,
        # event loop bumps landed), so the difference -- frames posted
        # but not yet enqueued -- is race-free without a lock
        self.frames_scheduled = 0
        self.frames_landed = 0


class ServeServer:
    """The evaluation service (see module docstring).

    Thread-friendly lifecycle: :meth:`run` blocks (own event loop);
    :meth:`wait_started` lets another thread wait for the bound port;
    :meth:`shutdown` is safe to call from any thread and triggers a
    graceful stop (final snapshot + metrics export).
    """

    def __init__(
        self,
        config: Optional[SimConfig] = None,
        settings: Optional[ServeSettings] = None,
    ):
        self.config = config if config is not None else SimConfig()
        self.settings = settings if settings is not None else ServeSettings()
        self.port: Optional[int] = None
        self.metrics = MetricsRegistry()
        self.spans = SpanTracer(id_seed="repro-serve")
        self.bus: Optional[StatusBus] = (
            StatusBus.for_checkpoint(self.settings.status_dir)
            if self.settings.status_dir
            else None
        )
        self.cache_root = (
            Path(self.settings.ingest_cache)
            if self.settings.ingest_cache
            else default_cache_dir()
        )
        # backpressure metrics exist (at zero) from the first export on
        self.metrics.counter("serve.sessions_shed")
        self.metrics.counter("serve.sessions_opened")
        self.metrics.counter("serve.sessions_completed")
        self.metrics.counter("serve.sessions_failed")
        self.metrics.counter("serve.sessions_aborted")
        self._queue_depth = self.metrics.histogram(
            "serve.queue_depth", _QUEUE_DEPTH_BOUNDS
        )
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._root_span = None
        self._started_mono = 0.0
        self._sessions_opened = 0
        self._sessions_done = 0
        self._shard_queues: List["asyncio.Queue"] = []
        self._executors: List[ThreadPoolExecutor] = []

    # -- lifecycle -----------------------------------------------------

    def run(self) -> None:
        """Run the server until :meth:`shutdown` (blocking)."""
        try:
            asyncio.run(self.serve())
        except KeyboardInterrupt:  # pragma: no cover - interactive stop
            pass
        except BaseException as exc:
            self._startup_error = exc
            raise
        finally:
            self._started.set()  # never leave wait_started() hanging

    def wait_started(self, timeout: Optional[float] = None) -> bool:
        """Block until the port is bound (True) or *timeout* (False)."""
        ok = self._started.wait(timeout)
        if self._startup_error is not None:
            raise RuntimeError(
                f"server failed to start: {self._startup_error}"
            ) from self._startup_error
        return ok and self.port is not None

    def shutdown(self) -> None:
        """Request a graceful stop; safe from any thread."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            loop.call_soon_threadsafe(stop.set)

    async def serve(self) -> None:
        """Bind, accept sessions, and block until shutdown."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._started_mono = time.monotonic()
        with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
            # CLI runs in the main thread; embedded/test servers do not
            self._loop.add_signal_handler(signal.SIGTERM, self._stop.set)
        self._shard_queues = [
            asyncio.Queue() for _ in range(self.settings.shards)
        ]
        self._executors = [
            ThreadPoolExecutor(
                max_workers=1, thread_name_prefix=f"serve-shard-{index}"
            )
            for index in range(self.settings.shards)
        ]
        workers = [
            asyncio.ensure_future(self._shard_worker(index))
            for index in range(self.settings.shards)
        ]
        server = await asyncio.start_server(
            self._handle,
            host=self.settings.host,
            port=self.settings.port,
            limit=MAX_FRAME_BYTES,
        )
        self.port = server.sockets[0].getsockname()[1]
        self._root_span = self.spans.start(
            "serve", shards=self.settings.shards, engine=self.settings.engine
        )
        self._publish_snapshot(complete=False)
        self._export_metrics()
        self._started.set()
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            for queue in self._shard_queues:
                queue.put_nowait(None)
            await asyncio.gather(*workers, return_exceptions=True)
            for executor in self._executors:
                executor.shutdown(wait=False)
            if self._root_span is not None:
                self.spans.finish()
            self._publish_snapshot(complete=True)
            self._export_metrics()

    # -- connection handling -------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        transport = writer.transport
        with contextlib.suppress(AttributeError, NotImplementedError):
            transport.set_write_buffer_limits(
                high=self.settings.write_buffer_bytes
            )
        if self.settings.so_sndbuf:
            sock = writer.get_extra_info("socket")
            if sock is not None:
                with contextlib.suppress(OSError):
                    sock.setsockopt(
                        socket.SOL_SOCKET, socket.SO_SNDBUF,
                        self.settings.so_sndbuf,
                    )
        session: Optional[_Session] = None
        try:
            writer.write(encode_frame(self._hello()))
            await writer.drain()
            frame = await self._read_frame(reader)
            if frame is None:
                return
            if frame.get("type") != "open":
                raise _SessionError(
                    "protocol",
                    f"expected an 'open' frame, got {frame.get('type')!r}",
                )
            session = self._open_session(frame, writer)
            session.drain_task = asyncio.ensure_future(self._drain(session))
            self._emit(session, {
                "type": "accepted",
                "session": session.id,
                "shard": session.shard,
                "cells": len(session.cells),
                "engine": self.settings.engine,
            })
            self._beat(session)
            uploaded = await self._receive(session, reader)
            if not uploaded:
                self._finish(session, "aborted")
                session.finished.set()
            else:
                self._shard_queues[session.shard].put_nowait(session)
                await session.finished.wait()
        except _SessionError as exc:
            if session is not None:
                self._emit(session, error_frame(exc.code, str(exc)))
                self._finish(session, "error")
                session.finished.set()
            else:
                with contextlib.suppress(ConnectionError, OSError):
                    writer.write(encode_frame(error_frame(exc.code, str(exc))))
                    await writer.drain()
        except ProtocolError as exc:
            with contextlib.suppress(ConnectionError, OSError):
                writer.write(
                    encode_frame(error_frame("protocol", str(exc)))
                )
                await writer.drain()
            if session is not None:
                self._finish(session, "error")
                session.finished.set()
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            if session is not None:
                self._finish(session, "aborted")
                session.finished.set()
        finally:
            if session is not None:
                await self._close_session(session)
            else:
                with contextlib.suppress(ConnectionError, OSError):
                    writer.close()
                    await writer.wait_closed()

    def _hello(self) -> Dict[str, Any]:
        return {
            "type": "hello",
            "protocol": PROTOCOL_VERSION,
            "server": "repro-serve",
            "engine": self.settings.engine,
            "shards": self.settings.shards,
            "formats": ["auto", *FORMAT_NAMES],
        }

    async def _read_frame(
        self, reader: asyncio.StreamReader
    ) -> Optional[Dict[str, Any]]:
        try:
            line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError) as exc:
            raise ProtocolError(f"oversized frame: {exc}") from exc
        if not line or not line.endswith(b"\n"):
            return None  # EOF (possibly mid-line): peer went away
        return decode_frame(line)

    def _open_session(
        self, frame: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> _Session:
        protocol = frame.get("protocol", PROTOCOL_VERSION)
        if protocol != PROTOCOL_VERSION:
            raise _SessionError(
                "protocol",
                f"protocol version {protocol!r} unsupported "
                f"(server speaks {PROTOCOL_VERSION})",
            )
        fmt = str(frame.get("format", "auto")).lower()
        if fmt not in ("auto", *FORMAT_NAMES):
            raise _SessionError("bad-request", f"unknown format {fmt!r}")
        on_parse_error = str(frame.get("on_parse_error", "raise"))
        if on_parse_error not in ("raise", "skip"):
            raise _SessionError(
                "bad-request",
                f"on_parse_error must be raise|skip, got {on_parse_error!r}",
            )
        mark_attacks = frame.get("mark_attacks")
        if mark_attacks is not None and not isinstance(mark_attacks, bool):
            raise _SessionError(
                "bad-request", "mark_attacks must be true, false or null"
            )
        try:
            clock_ns = float(frame.get("clock_ns", 1.0))
        except (TypeError, ValueError):
            raise _SessionError("bad-request", "clock_ns must be a number")
        if clock_ns <= 0:
            raise _SessionError("bad-request", "clock_ns must be positive")
        raw_techniques = frame.get("techniques", ["PARA"])
        raw_seeds = frame.get("seeds", [0])
        if not isinstance(raw_techniques, list) or not raw_techniques:
            raise _SessionError(
                "bad-request", "techniques must be a non-empty list"
            )
        if not isinstance(raw_seeds, list) or not raw_seeds:
            raise _SessionError("bad-request", "seeds must be a non-empty list")
        techniques: List[Optional[str]] = []
        for name in raw_techniques:
            if name is None or str(name).lower() == "none":
                techniques.append(None)
                continue
            try:
                techniques.append(resolve_technique(str(name)))
            except ValueError as exc:
                raise _SessionError("bad-request", str(exc)) from exc
        try:
            seeds = [int(seed) for seed in raw_seeds]
        except (TypeError, ValueError):
            raise _SessionError("bad-request", "seeds must be integers")
        cells = [
            GridCell(technique=technique, seed=seed)
            for technique in techniques
            for seed in seeds
        ]
        if len(cells) > self.settings.max_cells:
            raise _SessionError(
                "overloaded",
                f"{len(cells)} cells exceed the per-session limit of "
                f"{self.settings.max_cells}",
            )
        self._sessions_opened += 1
        self.metrics.counter("serve.sessions_opened").add()
        label = "".join(
            ch for ch in str(frame.get("session") or "")
            if ch.isalnum() or ch in "._-"
        )[:32]
        session_id = (
            f"{label}-{self._sessions_opened:04d}"
            if label
            else f"{self._sessions_opened:04d}"
        )
        shard = (self._sessions_opened - 1) % self.settings.shards
        spec = {
            "format": fmt,
            "mapper": str(frame.get("mapper", "layout")),
            "clock_ns": clock_ns,
            "mark_attacks": mark_attacks,
            "on_parse_error": on_parse_error,
        }
        return _Session(
            session_id, shard, writer, spec, cells,
            queue_size=self.settings.session_queue,
        )

    async def _receive(
        self, session: _Session, reader: asyncio.StreamReader
    ) -> bool:
        """Spool chunk frames until ``end``; False when the peer vanishes."""
        handle, spool = tempfile.mkstemp(
            prefix=f"repro-serve-{session.id}-", suffix=".trace"
        )
        session.spool_path = spool
        chunks = 0
        session.spans.start("session", session=session.id)
        session.spans.start("receive")
        try:
            with os.fdopen(handle, "wb") as out:
                while True:
                    frame = await self._read_frame(reader)
                    if frame is None:
                        return False
                    kind = frame.get("type")
                    if kind == "chunk":
                        data = decode_chunk(frame)
                        out.write(data)
                        try:
                            session.decoder.feed(data)
                        except TraceFormatError as exc:
                            raise _SessionError("ingest", str(exc)) from exc
                        chunks += 1
                        self.metrics.counter("serve.chunks_received").add()
                        if chunks % self.settings.progress_every == 0:
                            self._emit(session, {
                                "type": "progress",
                                "bytes": session.decoder.bytes_seen,
                                "lines": session.decoder.lines_seen,
                            })
                            self._beat(session)
                    elif kind == "end":
                        try:
                            session.decoder.flush()
                        except TraceFormatError as exc:
                            raise _SessionError("ingest", str(exc)) from exc
                        return True
                    else:
                        raise _SessionError(
                            "protocol",
                            f"unexpected frame type {kind!r} during upload",
                        )
        finally:
            session.spans.finish()  # receive (the session span stays open
            # until the evaluation job closes it; on error paths
            # _close_session finishes any remainder)

    # -- evaluation ----------------------------------------------------

    async def _shard_worker(self, index: int) -> None:
        queue = self._shard_queues[index]
        executor = self._executors[index]
        while True:
            session = await queue.get()
            if session is None:
                return
            if session.shed or session.outcome is not None:
                continue
            failure = await self._loop.run_in_executor(
                executor, self._run_job, session
            )
            if failure is not None:
                code, message = failure
                self._emit(session, error_frame(code, message))
                self._finish(session, "error")
            else:
                self._emit(session, {
                    "type": "done",
                    "session": session.id,
                    "cells": len(session.cells),
                })
                self._finish(session, "done")
            session.finished.set()

    def _run_job(
        self, session: _Session
    ) -> Optional[Tuple[str, str]]:
        """Ingest + evaluate one session (runs on its shard's thread).

        Frames are handed back to the event loop with
        ``call_soon_threadsafe``; the return value is ``None`` on
        success or ``(error_code, message)``.
        """

        queue_size = self.settings.session_queue
        grace = [self.settings.shed_grace_s]

        def emit(frame: Dict[str, Any]) -> None:
            # Producer throttle: while every queue slot is either
            # occupied or spoken for by an in-flight callback, stall
            # here (the shard thread's time is this session's own lane)
            # instead of overflowing the queue.  The stall draws down a
            # cumulative grace budget; once it is spent the frame is
            # posted anyway and the QueueFull path in _emit sheds the
            # client -- distinguishing "parses slower than the engine"
            # (fine) from "stopped reading" (dropped).
            while not session.shed:
                pending = session.frames_scheduled - session.frames_landed
                if pending + session.queue.qsize() < queue_size:
                    break
                if grace[0] <= 0:
                    break
                time.sleep(0.002)
                grace[0] -= 0.002
            if session.shed:
                return
            session.frames_scheduled += 1
            self._loop.call_soon_threadsafe(self._emit_verdictish, session, frame)

        spans = session.spans
        try:
            result = ingest_trace(
                session.spool_path,
                self.config,
                format=session.spec["format"],
                mapper=session.spec["mapper"],
                clock_ns=session.spec["clock_ns"],
                mark_attacks=session.spec["mark_attacks"],
                on_parse_error=session.spec["on_parse_error"],
                cache=IngestCache(
                    root=self.cache_root, metrics=session.registry
                ),
                metrics=session.registry,
                spans=spans,
            )
            provenance = dict(result.provenance)
            provenance["source"] = f"session:{session.id}"  # spool path is
            # server-private; the digests identify the upload
            emit({"type": "ingest", "provenance": provenance})
            trace = result.trace.materialize()
            engine = self.settings.engine
            with spans.span("evaluate", engine=engine, cells=len(session.cells)):
                if engine == "fused":
                    results = run_simulation_grid(
                        self.config, trace, session.cells,
                        metrics=session.registry,
                    )
                    for index, sim in enumerate(results):
                        emit(self._verdict_frame(session, index, sim))
                else:
                    run = get_engine(engine)
                    for index, cell in enumerate(session.cells):
                        if session.shed:
                            break
                        factory = (
                            make_factory(cell.technique)
                            if cell.technique is not None
                            else None
                        )
                        sim = run(
                            self.config, trace, factory, seed=cell.seed,
                            metrics=session.registry,
                        )
                        emit(self._verdict_frame(session, index, sim))
            emit({
                "type": "metrics",
                "session": {
                    "records": result.trace.count(),
                    "cache_hit": result.cache_hit,
                    "cells": len(session.cells),
                    "skipped_records": provenance.get("skipped", 0),
                },
            })
            return None
        except TraceFormatError as exc:
            return ("ingest", str(exc))
        except Exception as exc:  # engine/internal failure: report, survive
            return ("evaluate", f"{type(exc).__name__}: {exc}")
        finally:
            # close the session span opened by _receive (plus any span
            # a mid-flight exception left open)
            while spans.current is not None:
                spans.finish()

    def _verdict_frame(
        self, session: _Session, index: int, sim
    ) -> Dict[str, Any]:
        cell = session.cells[index]
        return {
            "type": "verdict",
            "index": index,
            "technique": cell.technique or "none",
            "seed": cell.seed,
            "result": sim.as_dict(),
        }

    def _emit_verdictish(self, session: _Session, frame: Dict[str, Any]) -> None:
        """Loop-thread landing pad for worker-thread frames."""
        session.frames_landed += 1
        if self._emit(session, frame) and frame.get("type") == "verdict":
            session.cells_done += 1
            self._beat(session)

    # -- outbound queue / backpressure ---------------------------------

    def _emit(self, session: _Session, frame: Dict[str, Any]) -> bool:
        if session.shed or session.drain_task is None:
            return False
        self._queue_depth.record(session.queue.qsize())
        try:
            session.queue.put_nowait(frame)
        except asyncio.QueueFull:
            self._shed(session)
            return False
        self.metrics.counter("serve.frames_sent").add()
        return True

    def _shed(self, session: _Session) -> None:
        """Drop a client that stopped reading its frames."""
        if session.shed:
            return
        session.shed = True
        self.metrics.counter("serve.sessions_shed").add()
        self._finish(session, "shed")
        if session.drain_task is not None:
            session.drain_task.cancel()
        with contextlib.suppress(Exception):
            session.writer.transport.abort()
        session.finished.set()

    async def _drain(self, session: _Session) -> None:
        """Writer task: bounded queue -> transport, honouring drain()."""
        writer = session.writer
        try:
            while True:
                frame = await session.queue.get()
                if frame is _CLOSE:
                    return
                writer.write(encode_frame(frame))
                await writer.drain()
        except (ConnectionError, OSError):
            pass  # receiver went away; _handle notices on its next read

    async def _close_session(self, session: _Session) -> None:
        if session.drain_task is not None and not session.drain_task.done():
            if session.shed:
                session.drain_task.cancel()
            else:
                with contextlib.suppress(asyncio.QueueFull):
                    session.queue.put_nowait(_CLOSE)
            with contextlib.suppress(asyncio.CancelledError):
                await session.drain_task
        with contextlib.suppress(ConnectionError, OSError):
            session.writer.close()
            await session.writer.wait_closed()
        if session.spool_path is not None:
            with contextlib.suppress(OSError):
                os.unlink(session.spool_path)

    # -- accounting / observability ------------------------------------

    def _finish(self, session: _Session, outcome: str) -> None:
        """Fold a finished session into the service plane (idempotent)."""
        if session.outcome is not None:
            return
        session.outcome = outcome
        self._sessions_done += 1
        counter = {
            "done": "serve.sessions_completed",
            "error": "serve.sessions_failed",
            "aborted": "serve.sessions_aborted",
        }.get(outcome)
        if counter is not None:
            self.metrics.counter(counter).add()
        # close any span the session left open before adopting the tree
        while session.spans.current is not None:
            session.spans.finish()
        self.metrics.merge(session.registry)
        self.spans.adopt(session.spans.as_dict(), parent=self._root_span)
        self._beat(
            session, phase="done" if outcome == "done" else "failed"
        )
        self._publish_snapshot(complete=False)
        self._export_metrics()

    def _beat(self, session: _Session, phase: str = "running") -> None:
        if self.bus is None:
            return
        self.bus.beat(
            f"session-{session.id}",
            cells_done=session.cells_done,
            cells_total=len(session.cells),
            degraded=session.shed,
            phase=phase,
            bytes=session.decoder.bytes_seen,
            lines=session.decoder.lines_seen,
            outcome=session.outcome or "running",
        )

    def _publish_snapshot(self, complete: bool) -> None:
        if self.bus is None:
            return
        self.bus.publish_snapshot(CampaignSnapshot(
            done=self._sessions_done,
            total=self._sessions_opened,
            degraded=self.metrics.counters["serve.sessions_shed"].value,
            started_mono=self._started_mono,
            mono=time.monotonic(),
            complete=complete,
            attrs={"service": "repro-serve", "port": self.port},
        ))

    def _export_metrics(self) -> None:
        if not self.settings.metrics_out:
            return
        write_metrics_export(
            self.settings.metrics_out, self.metrics, self.spans.summary()
        )
