"""The ``repro serve`` wire protocol: newline-delimited JSON frames.

One TCP connection carries one evaluation *session*.  Every frame is a
single JSON object terminated by ``\\n`` -- no length prefixes, no
binary framing -- so the protocol is debuggable with ``nc`` and
composable with line-oriented tools.  Trace bytes ride in ``chunk``
frames as base64 (raw file bytes, gzip container included, so the
server's content digest equals the offline ingest digest and the
shared ingest cache hits across transports).

Client -> server::

    {"type": "open", "protocol": 1, "format": "auto", "techniques":
     ["PARA"], "seeds": [0], "mapper": "layout", "clock_ns": 45.0,
     "mark_attacks": null, "on_parse_error": "raise", "session": "s1"}
    {"type": "chunk", "data": "<base64>"}
    ...
    {"type": "end"}

Server -> client::

    {"type": "hello", "protocol": 1, "server": "repro-serve", ...}
    {"type": "accepted", "session": "...", "shard": 0, "cells": 2}
    {"type": "progress", "bytes": ..., "lines": ...}       (periodic)
    {"type": "ingest", "provenance": {...}}                (once)
    {"type": "verdict", "technique": "PARA", "seed": 0,
     "index": 0, "result": {...SimResult.as_dict()...}}    (per cell)
    {"type": "metrics", "session": {...}}                  (once)
    {"type": "done", "session": "...", "cells": 2}
    {"type": "error", "code": "...", "message": "..."}     (terminal)

The full field-by-field specification lives in ``docs/serve.md``.
"""

from __future__ import annotations

import base64
import binascii
import json
from typing import Any, Dict

#: bump on incompatible frame-layout changes; ``open`` frames carrying
#: a different major version are rejected with ``code="protocol"``
PROTOCOL_VERSION = 1

#: frame types a client may send
CLIENT_FRAME_TYPES = ("open", "chunk", "end")
#: frame types a server may send
SERVER_FRAME_TYPES = (
    "hello", "accepted", "progress", "ingest", "verdict", "metrics",
    "done", "error",
)

#: ``error`` frame codes
ERROR_CODES = (
    "protocol",      # malformed frame / bad handshake
    "bad-request",   # open frame validation failed
    "ingest",        # trace failed to parse
    "evaluate",      # engine raised
    "overloaded",    # session rejected or shed under load
    "shutdown",      # server is stopping
)

#: upper bound on one encoded frame (guards the reader's line buffer)
MAX_FRAME_BYTES = 4 * 1024 * 1024

#: default raw-byte payload per ``chunk`` frame (b64 expands by 4/3)
DEFAULT_CHUNK_BYTES = 64 * 1024


class ProtocolError(ValueError):
    """A frame violated the wire protocol."""


def encode_frame(frame: Dict[str, Any]) -> bytes:
    """Serialise *frame* to one NDJSON line (canonical key order)."""
    line = json.dumps(frame, sort_keys=True, separators=(",", ":"))
    data = line.encode("utf-8") + b"\n"
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(data)} bytes exceeds MAX_FRAME_BYTES"
        )
    return data


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Parse one received line into a frame dict.

    Raises :class:`ProtocolError` on anything that is not a JSON
    object with a string ``type``.
    """
    try:
        frame = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed frame: {exc}") from exc
    if not isinstance(frame, dict) or not isinstance(frame.get("type"), str):
        raise ProtocolError("frame must be a JSON object with a 'type'")
    return frame


def encode_chunk(data: bytes) -> Dict[str, Any]:
    """Wrap raw trace bytes into a ``chunk`` frame."""
    return {
        "type": "chunk",
        "data": base64.b64encode(data).decode("ascii"),
    }


def decode_chunk(frame: Dict[str, Any]) -> bytes:
    """Extract the raw bytes of a ``chunk`` frame."""
    data = frame.get("data")
    if not isinstance(data, str):
        raise ProtocolError("chunk frame missing base64 'data'")
    try:
        return base64.b64decode(data.encode("ascii"), validate=True)
    except (binascii.Error, UnicodeEncodeError) as exc:
        raise ProtocolError(f"chunk payload is not base64: {exc}") from exc


def error_frame(code: str, message: str) -> Dict[str, Any]:
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    return {"type": "error", "code": code, "message": message}
