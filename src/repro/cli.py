"""Command-line interface: regenerate any paper artifact from a shell.

    python -m repro table1                 # Table I
    python -m repro table2                 # Table II + budgets
    python -m repro table3 [--intervals N --seeds K]
    python -m repro fig4   [--intervals N --seeds K]
    python -m repro flood  [--start-weights 0 384 4096 --seeds K]
    python -m repro policies [--intervals N]
    python -m repro trace --out FILE [--intervals N --seed S]
    python -m repro ingest FILE [--format auto --mapper layout]
    python -m repro run --technique NAME --trace FILE
    python -m repro run --technique NAME --trace-file CAPTURE[.gz]
    python -m repro compare [--trace-file CAPTURE] [--techniques ...]
    python -m repro campaign --checkpoint-dir DIR [--resume]
    python -m repro campaign --checkpoint-dir DIR --executor queue \
        --queue-dir SHARED [--queue-workers N]
    python -m repro campaign-worker SHARED [--idle-exit SECONDS]
    python -m repro campaign-status DIR
    python -m repro adversary --technique NAME [--strategy evolve]
    python -m repro serve [--port 7777 --shards N --status-dir DIR]
    python -m repro submit FILE --port 7777 [--techniques NAME ...]

``ingest`` parses an externally captured trace (DRAMSim/Ramulator
command logs, litex-rowhammer-tester JSON dumps, or the native format;
gzip transparent) and prints its provenance and statistics.  The same
``--trace-file`` family of flags on ``run``/``compare``/``campaign``
replays such a capture through the mitigations instead of the
synthetic paper workload (see docs/trace-formats.md).

The heavy subcommands accept the same scale knobs as the benchmarks,
plus ``--engine {reference,fast,fused}`` to pick the simulation engine
(both alternatives are result-identical to the reference; ``fused``
additionally shares one trace decode across a campaign's whole
technique grid -- see docs/architecture.md), and the
observability flags (see docs/observability.md):

    --trace-events FILE    stream telemetry events as JSON lines
    --manifest FILE        write a reproducibility manifest (config
                           hash, seeds, git rev, results, metrics)
    --profile              print a wall-clock phase breakdown

    python -m repro manifest-diff A.json B.json   # compare two runs

``campaign`` runs the full technique comparison with per-shard
checkpointing: kill it at any point and re-run with ``--resume`` to
continue from the completed shards (see docs/campaigns.md).  Worker
faults are handled by ``--max-retries/--shard-timeout`` with
exponential backoff, and ``--on-shard-failure skip`` degrades failed
shards instead of aborting the campaign.  ``--executor`` picks the
execution lane (serial, local pool, or a shared filesystem work
queue); with ``--executor queue`` the shards are leased by
``campaign-worker`` processes -- start any number of them, on any
host that mounts the queue directory, and the campaign's aggregates
stay bit-identical to a single-host run (see docs/distributed.md).

``serve`` starts the streaming evaluation service: a long-running
server that accepts trace uploads over newline-delimited JSON,
multiplexes concurrent client sessions onto sharded workers running
the fused engine, and streams verdicts back incrementally.  ``submit``
is its client: it uploads a capture and prints the same per-technique
summary lines an offline ``run`` would.  Protocol spec and quickstart
in docs/serve.md; with ``--status-dir`` a live server is observable
through ``campaign-status DIR --follow`` like any campaign.

``adversary`` runs the red-team pattern fuzzer against one mitigation:
a deterministic random or (mu+lambda) evolutionary search over attack
genomes, reporting the Pareto frontier of (activation budget,
activations before first mitigation).  ``--checkpoint-dir``/``--resume``
give it the same kill/resume durability as ``campaign`` (see
docs/adversary.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.config import SimConfig


def _add_scale_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--intervals", type=int, default=2048,
                        help="refresh intervals per run (8192 = full window)")
    parser.add_argument("--seeds", type=int, default=2,
                        help="seeds per technique")
    _add_engine_arg(parser)
    _add_telemetry_args(parser)


def _add_telemetry_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-events", metavar="FILE", default=None,
        help="write telemetry events (triggers, refreshes, interval "
             "rollovers) to FILE as JSON lines",
    )
    parser.add_argument(
        "--manifest", metavar="FILE", default=None,
        help="write a run manifest (config hash, seeds, engine, git "
             "rev, per-technique results, metrics) to FILE",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print a wall-clock phase breakdown after the run",
    )
    _add_metrics_out_arg(parser)


def _add_metrics_out_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out", metavar="FILE", default=None,
        help="export the run's metrics (and span summary, where the "
             "command records spans) to FILE: .prom writes Prometheus "
             "text format, anything else JSON lines",
    )


def _telemetry_from_args(args):
    """Build (tracer, metrics, profiler) from the CLI flags, or Nones."""
    from repro.telemetry import JsonlTracer, MetricsRegistry, Profiler

    tracer = JsonlTracer(args.trace_events) if args.trace_events else None
    # the manifest embeds the metrics snapshot and --metrics-out exports
    # it, so both imply metrics collection (interval-granular, near-free)
    metrics = (
        MetricsRegistry()
        if (args.manifest or args.trace_events
            or getattr(args, "metrics_out", None))
        else None
    )
    profiler = Profiler() if args.profile else None
    return tracer, metrics, profiler


def _spans_from_args(args, config):
    """A :class:`SpanTracer` when ``--metrics-out`` wants a summary."""
    if not getattr(args, "metrics_out", None):
        return None
    from repro.telemetry import SpanTracer, config_digest

    return SpanTracer(id_seed=config_digest(config))


def _finish_telemetry(
    args, config, tracer, metrics, profiler,
    comparison=None, total_intervals=None, extra=None, failures=None,
    spans=None,
) -> None:
    """Close the tracer, export metrics, write the manifest and profile."""
    from repro.telemetry import build_manifest

    if tracer is not None:
        tracer.close()
        print(f"wrote {tracer.events_written:,} events to {tracer.path}",
              file=sys.stderr)
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        from repro.telemetry import write_metrics_export

        path = write_metrics_export(
            metrics_out, metrics,
            spans.summary() if spans is not None else None,
        )
        print(f"wrote metrics export to {path}", file=sys.stderr)
        extra = dict(extra or {})
        extra["metrics_export"] = {
            "path": str(path),
            "format": "prometheus" if path.suffix in (".prom", ".txt")
            else "jsonl",
        }
    if args.manifest:
        manifest = build_manifest(
            config,
            engine=getattr(args, "engine", "reference"),
            seeds=tuple(range(args.seeds)) if hasattr(args, "seeds") else (),
            comparison=comparison,
            metrics=metrics,
            profiler=profiler,
            total_intervals=total_intervals,
            extra=extra,
            failures=failures,
        )
        print(f"wrote manifest to {manifest.write(args.manifest)}",
              file=sys.stderr)
    if profiler is not None:
        print("\n" + profiler.report())


def _add_ingest_args(
    parser: argparse.ArgumentParser,
    with_trace_file: bool = True,
    with_cache: bool = True,
) -> None:
    """Flags controlling external-trace ingestion (docs/trace-formats.md).

    ``with_cache=False`` omits the cache-location flags -- ``submit``
    streams to a server whose cache lives server-side.
    """
    if with_trace_file:
        parser.add_argument(
            "--trace-file", metavar="FILE", default=None,
            help="replay an externally captured trace (DRAMSim/Ramulator, "
                 "litex-rowhammer-tester JSON, or native; gzip OK) instead "
                 "of the synthetic workload",
        )
    parser.add_argument(
        "--trace-format", choices=("auto", "dramsim", "litex", "native"),
        default="auto",
        help="source format ('auto' sniffs the file contents)",
    )
    parser.add_argument(
        "--mapper", default="layout", metavar="SPEC",
        help="address-mapper preset name or literal bit-field spec, e.g. "
             "'row:30-15 bank:14-13 column:12-0' (dramsim format only)",
    )
    parser.add_argument(
        "--clock-ns", type=float, default=1.0, metavar="NS",
        help="nanoseconds per dramsim trace cycle",
    )
    parser.add_argument(
        "--mark-attacks", choices=("auto", "yes", "no"), default="auto",
        help="override the is_attack flag on ingested records (auto: "
             "dramsim=no, litex=yes, native keeps its per-record flags)",
    )
    parser.add_argument(
        "--on-parse-error", choices=("raise", "skip"), default="raise",
        help="malformed records abort the ingest (raise) or are counted "
             "and dropped (skip)",
    )
    if with_cache:
        _add_ingest_cache_arg(parser)
        parser.add_argument(
            "--no-ingest-cache", action="store_true",
            help="bypass the npz ingest cache (always re-parse)",
        )


def _add_ingest_cache_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--ingest-cache", metavar="DIR", default=None,
        help="ingest cache directory (default: $REPRO_INGEST_CACHE or "
             "~/.cache/repro/ingest)",
    )


_MARK_ATTACKS = {"auto": None, "yes": True, "no": False}


def _ingest_from_args(args, config, metrics=None):
    """Run the ingest pipeline for ``--trace-file``-style flags."""
    from repro.traces.ingest import IngestCache, ingest_trace

    cache = IngestCache(root=args.ingest_cache, metrics=metrics)
    return ingest_trace(
        args.trace_file,
        config,
        format=args.trace_format,
        mapper=args.mapper,
        clock_ns=args.clock_ns,
        mark_attacks=_MARK_ATTACKS[args.mark_attacks],
        on_parse_error=args.on_parse_error,
        cache=cache,
        use_cache=not args.no_ingest_cache,
        metrics=metrics,
    )


def _add_engine_arg(parser: argparse.ArgumentParser) -> None:
    from repro.sim.engine import ENGINE_NAMES

    parser.add_argument(
        "--engine", choices=ENGINE_NAMES, default="reference",
        help="simulation engine: 'fast' and 'fused' are result-identical "
             "to 'reference' (pinned by the differential tests); 'fast' "
             "is several times faster per run, 'fused' additionally "
             "evaluates a whole technique/seed/pbase grid in one trace "
             "pass (campaigns, sweeps, adversary searches)",
    )


def _cmd_table1(args) -> int:
    from repro.analysis.report import render_table1

    print(render_table1(SimConfig()))
    return 0


def _cmd_table2(args) -> int:
    from repro.analysis.report import render_table2

    print(render_table2(SimConfig()))
    return 0


def _cmd_techniques(args) -> int:
    from repro.analysis.report import render_techniques

    print(render_techniques(
        SimConfig(),
        include_extended=not args.paper_only,
        include_modern=not args.paper_only,
    ))
    return 0


def _comparison(args, tracer=None, metrics=None, profiler=None):
    from repro.mitigations.registry import technique_names
    from repro.sim.experiment import compare_techniques, default_trace_factory

    config = SimConfig()
    factory = default_trace_factory(config, total_intervals=args.intervals)
    techniques = None
    if getattr(args, "include_modern", False):
        techniques = technique_names(include_modern=True)
    return config, compare_techniques(
        config, factory, techniques=techniques, seeds=tuple(range(args.seeds)),
        include_unmitigated=True, engine=args.engine,
        tracer=tracer, metrics=metrics, profiler=profiler,
    )


def _cmd_table3(args) -> int:
    from repro.analysis.area import table3_resources
    from repro.analysis.report import render_table3

    tracer, metrics, profiler = _telemetry_from_args(args)
    config, comparison = _comparison(args, tracer, metrics, profiler)
    full_comparison = dict(comparison)
    unmitigated = comparison.pop("none")
    print(f"unmitigated flips: {unmitigated.total_flips}\n")
    resources = table3_resources(config, include_modern=args.include_modern)
    print(render_table3(config, comparison, resources))
    _finish_telemetry(
        args, config, tracer, metrics, profiler,
        comparison=full_comparison, total_intervals=args.intervals,
        extra={"command": "table3"},
    )
    return 0


def _cmd_fig4(args) -> int:
    from repro.analysis.area import fig4_points
    from repro.analysis.report import render_fig4

    tracer, metrics, profiler = _telemetry_from_args(args)
    config, comparison = _comparison(args, tracer, metrics, profiler)
    full_comparison = dict(comparison)
    comparison.pop("none")
    overheads = {name: agg.overhead_mean for name, agg in comparison.items()}
    print(render_fig4(fig4_points(config, overheads)))
    _finish_telemetry(
        args, config, tracer, metrics, profiler,
        comparison=full_comparison, total_intervals=args.intervals,
        extra={"command": "fig4"},
    )
    return 0


def _cmd_flood(args) -> int:
    from repro.analysis.report import render_flooding
    from repro.mitigations.registry import TIVAPROMI_VARIANTS
    from repro.sim.attacks import flooding_experiment

    config = SimConfig()
    outcomes = []
    for start_weight in args.start_weights:
        for technique in TIVAPROMI_VARIANTS:
            outcomes.append(
                flooding_experiment(
                    config, technique, start_weight=start_weight,
                    seeds=tuple(range(args.seeds)),
                )
            )
    print(render_flooding(outcomes))
    return 0


def _cmd_policies(args) -> int:
    from repro.analysis.report import render_table
    from repro.dram.refresh import all_policies
    from repro.sim.experiment import default_trace_factory, run_technique

    tracer, metrics, profiler = _telemetry_from_args(args)
    config = SimConfig()
    factory = default_trace_factory(config, total_intervals=args.intervals)
    rows = []
    comparison = {}
    for policy in all_policies(config.geometry, seed=0):
        aggregate = run_technique(
            config, args.technique, factory,
            seeds=tuple(range(args.seeds)),
            policy_factory=lambda seed, p=policy: p,
            engine=args.engine,
            tracer=tracer, metrics=metrics, profiler=profiler,
        )
        comparison[f"{args.technique}@{policy.name}"] = aggregate
        rows.append(
            (policy.name, aggregate.overhead_cell(),
             str(aggregate.total_flips))
        )
    print(render_table(("policy", "overhead", "flips"), rows))
    _finish_telemetry(
        args, config, tracer, metrics, profiler,
        comparison=comparison, total_intervals=args.intervals,
        extra={"command": "policies", "technique": args.technique},
    )
    return 0


def _cmd_trace(args) -> int:
    from repro.traces.mixer import paper_mixed_workload
    from repro.traces.trace_io import save_trace

    config = SimConfig()
    trace = paper_mixed_workload(
        config, total_intervals=args.intervals, seed=args.seed
    )
    count = save_trace(trace, args.out)
    print(f"wrote {count:,} activations to {args.out}")
    return 0


def _cmd_ingest(args) -> int:
    from repro.analysis.report import render_ingest
    from repro.traces.trace_io import save_trace_npz

    tracer, metrics, profiler = _telemetry_from_args(args)
    config = SimConfig()
    result = _ingest_from_args(args, config, metrics)
    print(render_ingest(result))
    if args.out:
        count = save_trace_npz(result.trace, args.out)
        print(f"wrote {count:,} records to {args.out}", file=sys.stderr)
    args.seeds = 0  # no simulation seeds in an ingest-only manifest
    _finish_telemetry(
        args, config, tracer, metrics, profiler,
        extra={"command": "ingest", "ingest": result.provenance},
    )
    return 0


def _cmd_compare(args) -> int:
    from repro.analysis.report import render_comparison, render_ingest
    from repro.sim.experiment import compare_techniques, default_trace_factory

    tracer, metrics, profiler = _telemetry_from_args(args)
    config = SimConfig()
    extra = {"command": "compare"}
    if args.trace_file:
        result = _ingest_from_args(args, config, metrics)
        print(render_ingest(result))
        print()
        trace = result.trace.materialize()
        factory = lambda seed: trace  # noqa: E731 - same capture, all seeds
        extra["ingest"] = result.provenance
    else:
        factory = default_trace_factory(config, total_intervals=args.intervals)
    comparison = compare_techniques(
        config, factory,
        techniques=args.techniques,
        seeds=tuple(range(args.seeds)),
        include_unmitigated=args.include_unmitigated,
        engine=args.engine,
        tracer=tracer, metrics=metrics, profiler=profiler,
    )
    print(render_comparison(comparison))
    _finish_telemetry(
        args, config, tracer, metrics, profiler,
        comparison=comparison, total_intervals=args.intervals,
        extra=extra,
    )
    return 0


def _cmd_run(args) -> int:
    from repro.mitigations.registry import make_factory, resolve_technique
    from repro.sim.engine import get_engine
    from repro.sim.experiment import TechniqueAggregate
    from repro.traces.trace_io import load_trace

    if bool(args.trace) == bool(args.trace_file):
        print("run: pass exactly one of --trace / --trace-file",
              file=sys.stderr)
        return 2
    if args.technique != "none":
        args.technique = resolve_technique(args.technique)
    tracer, metrics, profiler = _telemetry_from_args(args)
    config = SimConfig()
    ingest_provenance = None
    if args.trace_file:
        ingested = _ingest_from_args(args, config, metrics)
        trace = ingested.trace
        ingest_provenance = ingested.provenance
    else:
        trace = load_trace(args.trace)
    factory = make_factory(args.technique) if args.technique != "none" else None
    result = get_engine(args.engine)(
        config, trace, factory, seed=args.seed,
        tracer=tracer, metrics=metrics, profiler=profiler,
    )
    print(result.summary())
    aggregate = TechniqueAggregate(technique=args.technique)
    aggregate.results.append(result)
    args.seeds = 1  # manifest seed range for a single run
    extra = {
        "command": "run",
        "trace": args.trace or args.trace_file,
        "seed": args.seed,
    }
    if ingest_provenance is not None:
        extra["ingest"] = ingest_provenance
    _finish_telemetry(
        args, config, tracer, metrics, profiler,
        comparison={args.technique: aggregate},
        extra=extra,
    )
    return 1 if result.attack_succeeded else 0


def _cmd_campaign(args) -> int:
    import os

    from repro.analysis.report import render_campaign
    from repro.campaign import FaultInjector, run_durable_campaign
    from repro.sim.parallel import RetryPolicy

    tracer, metrics, profiler = _telemetry_from_args(args)
    config = SimConfig()
    spans = _spans_from_args(args, config)
    retry = None
    if (
        args.max_retries
        or args.shard_timeout is not None
        or args.on_shard_failure != "raise"
    ):
        retry = RetryPolicy(
            max_retries=args.max_retries,
            backoff_base=args.backoff_base,
            shard_timeout=args.shard_timeout,
            on_failure=args.on_shard_failure,
        )
    executor = None
    if args.executor == "queue" or args.queue_dir:
        from repro.campaign import QueueExecutor

        queue_dir = args.queue_dir or os.path.join(
            args.checkpoint_dir, "queue"
        )
        executor = QueueExecutor(
            queue_dir,
            workers=args.queue_workers,
            lease_timeout=args.lease_timeout,
        )
    elif args.executor != "auto":
        executor = args.executor
    extra = {"command": "campaign"}
    trace_path = trace_digest = None
    tmp_npz = None
    if args.trace_file:
        import tempfile

        from repro.traces.trace_io import save_trace_npz

        ingested = _ingest_from_args(args, config, metrics)
        extra["ingest"] = ingested.provenance
        trace_digest = "{}:{}".format(
            ingested.provenance["source_digest"],
            ingested.provenance["spec_digest"],
        )
        total_intervals = ingested.trace.meta.total_intervals
        cache_info = ingested.provenance.get("cache", {})
        if cache_info.get("enabled"):
            # workers replay the npz the ingest cache already holds
            trace_path = cache_info["path"]
        else:
            fd, tmp_npz = tempfile.mkstemp(
                prefix="repro-ingest-", suffix=".npz"
            )
            os.close(fd)
            save_trace_npz(ingested.trace, tmp_npz)
            trace_path = tmp_npz
    else:
        total_intervals = args.intervals
    try:
        aggregates = run_durable_campaign(
            config,
            total_intervals=total_intervals,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
            techniques=args.techniques,
            seeds=tuple(range(args.seeds)),
            include_unmitigated=args.include_unmitigated,
            workers=args.workers,
            engine=args.engine,
            retry=retry,
            fault_injector=FaultInjector.from_env(),
            tracer=tracer,
            metrics=metrics,
            profiler=profiler,
            spans=spans,
            trace_path=trace_path,
            trace_digest=trace_digest,
            executor=executor,
        )
    finally:
        if tmp_npz is not None:
            try:
                os.unlink(tmp_npz)
            except OSError:
                pass
    print(render_campaign(aggregates, aggregates.failures))
    _finish_telemetry(
        args, config, tracer, metrics, profiler,
        comparison=aggregates, total_intervals=total_intervals,
        extra=extra, failures=aggregates.failures, spans=spans,
    )
    return 1 if aggregates.failures else 0


def _cmd_campaign_worker(args) -> int:
    """Drain campaign shards from a shared queue directory.

    The worker half of ``--executor queue`` (spec: docs/distributed.md):
    leases one ticket at a time by atomic rename, runs it with the
    same shard function every executor uses, heartbeats its lease and
    the queue's status bus while the shard runs, and pushes the result
    (or a failure report) back into the queue.  Start any number of
    these, on any host that mounts the queue directory, before or
    after the campaign itself starts.
    """
    from repro.campaign import run_worker

    def log(message: str) -> None:
        print(message, file=sys.stderr)

    return run_worker(
        args.queue_dir,
        poll_interval=args.poll_interval,
        idle_exit=args.idle_exit,
        max_shards=args.max_shards,
        lease_refresh=args.lease_refresh,
        log=None if args.quiet else log,
    )


def _cmd_adversary(args) -> int:
    import time
    from dataclasses import replace

    from repro.adversary import SearchSettings, run_search
    from repro.analysis.report import render_adversary
    from repro.config import small_test_config

    args.trace_events = None  # search fans out; no per-event stream
    tracer, metrics, profiler = _telemetry_from_args(args)
    config = SimConfig() if args.preset == "paper" else small_test_config()
    if args.pbase_exp is not None:
        config = replace(config, pbase=2.0 ** -args.pbase_exp)
    spans = _spans_from_args(args, config)
    settings = SearchSettings(
        technique=args.technique,
        strategy=args.strategy,
        budget=args.budget,
        population=args.population,
        offspring=args.offspring,
        eval_seeds=args.eval_seeds,
        windows=args.windows,
        engine=args.engine,
        seed=args.seed,
    )

    def progress(evaluations: int, budget: int) -> None:
        print(f"adversary: {evaluations}/{budget} evaluations",
              file=sys.stderr)

    started = time.perf_counter()
    outcome = run_search(
        config,
        settings,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        workers=args.workers,
        metrics=metrics,
        progress=progress,
        spans=spans,
    )
    if profiler is not None:
        profiler.add("adversary.search", time.perf_counter() - started)
    print(render_adversary(outcome))
    if args.frontier_out:
        with open(args.frontier_out, "w", encoding="utf-8") as stream:
            stream.write(outcome.frontier.to_json())
        print(f"wrote frontier to {args.frontier_out}", file=sys.stderr)
    args.seeds = settings.eval_seeds  # manifest seed range
    _finish_telemetry(
        args, config, tracer, metrics, profiler,
        total_intervals=config.geometry.refint * settings.windows,
        extra={
            "command": "adversary",
            "technique": outcome.technique,
            "strategy": outcome.strategy,
            "budget": outcome.budget,
            "search_seed": settings.seed,
            "frontier": outcome.frontier.as_dict(),
            "best": outcome.best.as_dict(),
            "corpus_best_fitness": outcome.corpus_best.fitness,
            "improvement": outcome.improvement,
        },
        spans=spans,
    )
    return 0


def _cmd_serve(args) -> int:
    import threading

    from repro.serve import ServeServer, ServeSettings

    settings = ServeSettings(
        host=args.host,
        port=args.port,
        shards=args.shards,
        engine=args.engine,
        session_queue=args.session_queue,
        shed_grace_s=args.shed_grace,
        write_buffer_bytes=args.write_buffer_bytes,
        status_dir=args.status_dir,
        metrics_out=args.metrics_out,
        ingest_cache=args.ingest_cache,
    )
    server = ServeServer(config=SimConfig(), settings=settings)
    thread = threading.Thread(
        target=server.run, name="repro-serve", daemon=True
    )
    thread.start()
    try:
        if not server.wait_started(30):
            print("serve: server failed to start within 30s",
                  file=sys.stderr)
            return 1
    except RuntimeError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 1
    # one parseable line on stdout: scripts (and the CI smoke job)
    # read the bound port from it when --port 0 picked a free one
    print(
        f"repro-serve listening on {settings.host}:{server.port} "
        f"shards={settings.shards} engine={settings.engine}",
        flush=True,
    )
    try:
        while thread.is_alive():
            thread.join(0.5)
        return 0
    except KeyboardInterrupt:
        server.shutdown()
        thread.join(10)
        return 0


def _cmd_submit(args) -> int:
    import os

    from repro.analysis.report import render_serve_session
    from repro.serve import ServeClient, ServeError

    if not os.path.isfile(args.trace_file):
        print(f"submit: trace file not found: {args.trace_file}",
              file=sys.stderr)
        return 2
    client = ServeClient(args.host, args.port, timeout=args.timeout)

    def on_frame(frame) -> None:
        if frame.get("type") == "progress":
            print(
                f"submit: uploaded {frame.get('bytes', 0):,} bytes "
                f"({frame.get('lines', 0):,} lines)",
                file=sys.stderr,
            )

    try:
        outcome = client.submit(
            args.trace_file,
            techniques=args.techniques or ["PARA"],
            seeds=list(range(args.seeds)),
            format=args.trace_format,
            mapper=args.mapper,
            clock_ns=args.clock_ns,
            mark_attacks=_MARK_ATTACKS[args.mark_attacks],
            on_parse_error=args.on_parse_error,
            session=args.session,
            on_frame=on_frame if args.progress else None,
        )
    except ServeError as exc:
        print(f"submit: server error {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        # ServeDisconnected included: no terminal frame ever arrived
        print(f"submit: connection to {args.host}:{args.port} failed: "
              f"{exc}", file=sys.stderr)
        return 3
    if args.summary_only:
        from repro.sim.metrics import SimResult

        for verdict in outcome.verdicts:
            print(SimResult.from_dict(verdict["result"]).summary())
    else:
        print(render_serve_session(outcome))
    return 0


def _status_frame_json(store, bus):
    """One machine-readable ``campaign-status`` poll as a dict."""
    snapshot = bus.read_snapshot()
    heartbeats = bus.read_heartbeats()
    stale = {beat.worker for beat in bus.stale_workers()}
    frame = {
        "snapshot": snapshot.as_dict() if snapshot is not None else None,
        "workers": [beat.as_dict() for beat in heartbeats],
        "stale": sorted(stale),
    }
    if store.exists:
        from repro.telemetry.manifest import technique_summary

        status = store.status()
        frame["store"] = {
            "completed": len(status.completed),
            "total": status.total,
            "complete": status.complete,
            "failures": len(status.failures),
        }
        # incremental aggregation: the canonical-order fold of whatever
        # shards have landed so far -- the same numbers the finished
        # campaign will report for these cells, available mid-run
        frame["aggregates"] = {
            name: technique_summary(aggregate)
            for name, aggregate in store.partial_aggregates().items()
            if aggregate.results
        }
    else:
        frame["store"] = None
        frame["aggregates"] = {}
    return frame


def _cmd_campaign_status(args) -> int:
    import json
    import time

    from repro.analysis.report import (
        render_campaign_live,
        render_campaign_status,
    )
    from repro.campaign import CampaignStore
    from repro.telemetry import StatusBus

    store = CampaignStore(args.checkpoint_dir)
    follow = args.follow or args.once
    if not follow:
        if not store.exists:
            print(f"no campaign checkpoint at {args.checkpoint_dir}",
                  file=sys.stderr)
            return 2
        print(render_campaign_status(
            store.status(), aggregates=store.partial_aggregates()
        ))
        return 0

    bus = StatusBus.for_checkpoint(args.checkpoint_dir,
                                   stale_after=args.stale_after)
    # without a terminal, a refreshing table is useless -- emit JSON
    # frames instead so scripts (and the CI smoke job) can parse them
    as_json = args.json or not sys.stdout.isatty()
    if as_json and hasattr(sys.stdout, "reconfigure"):
        # non-TTY stdout is block-buffered: force line buffering so a
        # polling consumer sees every frame the moment it is printed
        sys.stdout.reconfigure(line_buffering=True)
    try:
        while True:
            if as_json:
                frame = _status_frame_json(store, bus)
                print(json.dumps(frame, sort_keys=True), flush=True)
                complete = bool(
                    (frame["snapshot"] or {}).get("complete")
                    or (frame["store"] or {}).get("complete")
                )
            else:
                snapshot = bus.read_snapshot()
                stale = {beat.worker for beat in bus.stale_workers()}
                frame_text = render_campaign_live(
                    snapshot, bus.read_heartbeats(), stale=stale
                )
                # in-place refresh: home the cursor and clear downwards
                print("\x1b[H\x1b[J" + frame_text, flush=True)
                complete = snapshot is not None and snapshot.complete
            if args.once or complete:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    except BrokenPipeError:
        # a downstream consumer (`... --follow | head -1`) closed the
        # pipe after taking what it needed: that is a clean stop, not
        # an error.  Point stdout at devnull so the interpreter-exit
        # flush cannot raise a second BrokenPipeError traceback.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _cmd_manifest_diff(args) -> int:
    from repro.analysis.report import render_manifest_diff
    from repro.telemetry import RunManifest, diff_manifests
    from repro.telemetry.manifest import VOLATILE_FIELDS

    left = RunManifest.load(args.a)
    right = RunManifest.load(args.b)
    ignore = tuple(VOLATILE_FIELDS) + tuple(args.ignore or ())
    differences = diff_manifests(left, right, ignore=ignore)
    print(render_manifest_diff(args.a, args.b, differences))
    return 1 if differences else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TiVaPRoMi (DATE 2021) reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("table1", help="Table I").set_defaults(func=_cmd_table1)
    subparsers.add_parser("table2", help="Table II").set_defaults(func=_cmd_table2)

    table3 = subparsers.add_parser("table3", help="Table III comparison")
    _add_scale_args(table3)
    table3.add_argument(
        "--include-modern", action="store_true",
        help="append the modern tracker families (LoadedDice, RVC, PVAC, "
             "PRAC, PRACtical, ProbTracker) to the paper's nine rows",
    )
    table3.set_defaults(func=_cmd_table3)

    techniques = subparsers.add_parser(
        "techniques",
        help="list registered techniques with traits and area estimates",
    )
    techniques.add_argument(
        "--paper-only", action="store_true",
        help="restrict to the nine techniques from the paper's Table III",
    )
    techniques.set_defaults(func=_cmd_techniques)

    fig4 = subparsers.add_parser("fig4", help="Fig. 4 tradeoff")
    _add_scale_args(fig4)
    fig4.set_defaults(func=_cmd_fig4)

    flood = subparsers.add_parser("flood", help="flooding experiment")
    flood.add_argument("--start-weights", type=int, nargs="+",
                       default=[0, 384, 4096])
    flood.add_argument("--seeds", type=int, default=5)
    flood.set_defaults(func=_cmd_flood)

    policies = subparsers.add_parser(
        "policies", help="refresh-policy robustness"
    )
    _add_scale_args(policies)
    policies.add_argument("--technique", default="LoLiPRoMi")
    policies.set_defaults(func=_cmd_policies)

    trace = subparsers.add_parser("trace", help="generate a workload trace")
    trace.add_argument("--out", required=True)
    trace.add_argument("--intervals", type=int, default=1024)
    trace.add_argument("--seed", type=int, default=0)
    trace.set_defaults(func=_cmd_trace)

    ingest = subparsers.add_parser(
        "ingest",
        help="parse an external trace file and report its statistics",
    )
    ingest.add_argument(
        "trace_file", metavar="FILE",
        help="DRAMSim/Ramulator, litex-rowhammer-tester JSON, or native "
             "trace (gzip transparent; see docs/trace-formats.md)",
    )
    _add_ingest_args(ingest, with_trace_file=False)
    ingest.add_argument(
        "--out", metavar="FILE.npz", default=None,
        help="also export the ingested trace as columnar npz",
    )
    _add_telemetry_args(ingest)
    ingest.set_defaults(func=_cmd_ingest, engine="reference")

    run = subparsers.add_parser("run", help="run one technique on a trace")
    run.add_argument("--technique", required=True,
                     help="technique name, or 'none' for unmitigated")
    run.add_argument("--trace", default=None,
                     help="native trace written by 'repro trace'")
    run.add_argument("--seed", type=int, default=0)
    _add_ingest_args(run)
    _add_engine_arg(run)
    _add_telemetry_args(run)
    run.set_defaults(func=_cmd_run)

    compare = subparsers.add_parser(
        "compare",
        help="compare techniques on one workload (synthetic or ingested)",
    )
    _add_scale_args(compare)
    _add_ingest_args(compare)
    compare.add_argument(
        "--techniques", nargs="+", default=None, metavar="NAME",
        help="techniques to compare (default: all nine)",
    )
    compare.add_argument(
        "--include-unmitigated", action="store_true",
        help="also run the unprotected baseline",
    )
    compare.set_defaults(func=_cmd_compare)

    campaign = subparsers.add_parser(
        "campaign",
        help="checkpointed technique-comparison campaign (resumable)",
    )
    campaign.add_argument(
        "--checkpoint-dir", required=True, metavar="DIR",
        help="directory for the campaign spec and per-shard checkpoints",
    )
    campaign.add_argument(
        "--resume", action="store_true",
        help="continue an existing checkpoint (validates its config "
             "hash and grid, then runs only the missing shards)",
    )
    _add_scale_args(campaign)
    campaign.add_argument(
        "--techniques", nargs="+", default=None, metavar="NAME",
        help="techniques to run (default: all nine)",
    )
    campaign.add_argument(
        "--include-unmitigated", action="store_true",
        help="also run the unprotected baseline",
    )
    campaign.add_argument(
        "--workers", type=int, default=None,
        help="pool width (default: one per CPU; 0 runs inline)",
    )
    campaign.add_argument(
        "--executor", choices=("auto", "serial", "pool", "queue"),
        default="auto",
        help="execution lane: auto follows --workers (0 = serial, "
             "else pool); queue leases shards to campaign-worker "
             "processes over a shared directory (docs/distributed.md)",
    )
    campaign.add_argument(
        "--queue-dir", metavar="DIR", default=None,
        help="work-queue directory for the queue executor -- share it "
             "(e.g. over NFS) with every campaign-worker (default: "
             "<checkpoint-dir>/queue; setting it implies "
             "--executor queue)",
    )
    campaign.add_argument(
        "--queue-workers", type=int, default=0, metavar="N",
        help="campaign-worker subprocesses to spawn locally against "
             "the queue (default 0: rely on externally started "
             "workers)",
    )
    campaign.add_argument(
        "--lease-timeout", type=float, default=60.0, metavar="SECONDS",
        help="re-ticket a leased shard after this long without a "
             "worker heartbeat -- the queue lane's hung/vanished-"
             "worker bound (default %(default)s)",
    )
    campaign.add_argument(
        "--max-retries", type=int, default=0,
        help="extra attempts per crashed/hung/failed shard "
             "(exponential backoff between attempts)",
    )
    campaign.add_argument(
        "--backoff-base", type=float, default=0.5, metavar="SECONDS",
        help="first retry delay; doubles per subsequent retry",
    )
    campaign.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="declare a shard hung after this long (pool mode only; "
             "see docs/campaigns.md for round semantics)",
    )
    campaign.add_argument(
        "--on-shard-failure", choices=("raise", "skip"), default="raise",
        help="after retries are exhausted: abort the campaign (raise) "
             "or record a degraded shard and continue (skip)",
    )
    _add_ingest_args(campaign)
    campaign.set_defaults(func=_cmd_campaign)

    campaign_worker = subparsers.add_parser(
        "campaign-worker",
        help="lease and run campaign shards from a shared queue "
             "directory (docs/distributed.md)",
    )
    campaign_worker.add_argument(
        "queue_dir", metavar="DIR",
        help="queue directory of a '--executor queue' campaign; the "
             "worker creates the layout if it starts first",
    )
    campaign_worker.add_argument(
        "--poll-interval", type=float, default=0.5, metavar="SECONDS",
        help="sleep between empty ticket polls (default %(default)s)",
    )
    campaign_worker.add_argument(
        "--idle-exit", type=float, default=None, metavar="SECONDS",
        help="exit after this long without available work (default: "
             "keep polling until the campaign raises the stop "
             "sentinel)",
    )
    campaign_worker.add_argument(
        "--max-shards", type=int, default=None, metavar="N",
        help="exit after completing N shards (default: unlimited)",
    )
    campaign_worker.add_argument(
        "--lease-refresh", type=float, default=1.0, metavar="SECONDS",
        help="heartbeat period while a shard runs; keep well under "
             "the campaign's --lease-timeout (default %(default)s)",
    )
    campaign_worker.add_argument(
        "--quiet", action="store_true",
        help="suppress the per-shard progress lines on stderr",
    )
    campaign_worker.set_defaults(func=_cmd_campaign_worker)

    adversary = subparsers.add_parser(
        "adversary",
        help="red-team search for worst-case patterns vs one technique",
    )
    adversary.add_argument(
        "--technique", required=True,
        help="mitigation under attack (case-insensitive)",
    )
    adversary.add_argument(
        "--strategy", choices=("random", "evolve"), default="evolve",
        help="random genome draws, or (mu+lambda) evolution from the "
             "canned seed corpus",
    )
    adversary.add_argument(
        "--budget", type=int, default=64,
        help="total candidate evaluations",
    )
    adversary.add_argument("--population", type=int, default=4,
                           help="survivors kept between generations (mu)")
    adversary.add_argument("--offspring", type=int, default=8,
                           help="children bred per generation (lambda)")
    adversary.add_argument("--eval-seeds", type=int, default=2,
                           help="simulation seeds per candidate")
    adversary.add_argument("--windows", type=int, default=2,
                           help="refresh windows per evaluation")
    adversary.add_argument("--seed", type=int, default=0,
                           help="search seed (proposals and evaluation)")
    adversary.add_argument(
        "--preset", choices=("paper", "small"), default="paper",
        help="paper-scale config, or the small test geometry (fast; "
             "used by CI and the determinism tests)",
    )
    adversary.add_argument(
        "--pbase-exp", type=int, default=None, metavar="N",
        help="override Pbase to 2^-N (larger trigger probabilities "
             "sharpen the weight-alignment signal at tiny budgets)",
    )
    adversary.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="checkpoint every evaluated generation for kill/resume",
    )
    adversary.add_argument(
        "--resume", action="store_true",
        help="continue an existing search checkpoint (validates its "
             "spec, replays stored generations bit-identically)",
    )
    adversary.add_argument(
        "--workers", type=int, default=0,
        help="pool width for candidate evaluation (0 runs inline)",
    )
    adversary.add_argument(
        "--frontier-out", metavar="FILE", default=None,
        help="write the Pareto frontier as canonical JSON",
    )
    _add_engine_arg(adversary)
    adversary.set_defaults(func=_cmd_adversary, engine="fast")
    adversary.add_argument(
        "--manifest", metavar="FILE", default=None,
        help="write a run manifest embedding the frontier",
    )
    adversary.add_argument(
        "--profile", action="store_true",
        help="print a wall-clock phase breakdown after the run",
    )
    _add_metrics_out_arg(adversary)

    serve = subparsers.add_parser(
        "serve",
        help="run the streaming evaluation service (docs/serve.md)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default %(default)s)")
    serve.add_argument(
        "--port", type=int, default=7777,
        help="TCP port; 0 picks a free one, reported on stdout "
             "(default %(default)s)",
    )
    serve.add_argument(
        "--shards", type=int, default=2,
        help="worker lanes; sessions are assigned round-robin "
             "(default %(default)s)",
    )
    serve.add_argument(
        "--session-queue", type=int, default=256, metavar="FRAMES",
        help="outbound frames buffered per session; when full the "
             "worker throttles instead of overflowing "
             "(default %(default)s)",
    )
    serve.add_argument(
        "--shed-grace", type=float, default=20.0, metavar="SECONDS",
        help="cumulative seconds a session's worker may stall on a "
             "full outbound queue before the client is shed "
             "(default %(default)s)",
    )
    serve.add_argument(
        "--write-buffer-bytes", type=int, default=256 * 1024,
        metavar="BYTES",
        help="transport write-buffer high-water mark; smaller values "
             "surface slow clients sooner (default %(default)s)",
    )
    serve.add_argument(
        "--status-dir", metavar="DIR", default=None,
        help="publish a campaign-status-compatible status bus under "
             "DIR/status ('repro campaign-status DIR --follow' then "
             "shows live sessions)",
    )
    _add_ingest_cache_arg(serve)
    _add_metrics_out_arg(serve)
    _add_engine_arg(serve)
    serve.set_defaults(func=_cmd_serve, engine="fused")

    submit = subparsers.add_parser(
        "submit",
        help="stream a trace to a repro-serve server for evaluation",
    )
    submit.add_argument(
        "trace_file", metavar="FILE",
        help="trace to upload (DRAMSim/Ramulator, litex JSON, or "
             "native; gzip travels as-is)",
    )
    submit.add_argument("--host", default="127.0.0.1",
                        help="server address (default %(default)s)")
    submit.add_argument("--port", type=int, default=7777,
                        help="server port (default %(default)s)")
    submit.add_argument(
        "--techniques", nargs="+", default=None, metavar="NAME",
        help="techniques to evaluate, or 'none' for the unmitigated "
             "baseline (default: PARA)",
    )
    submit.add_argument(
        "--seeds", type=int, default=1,
        help="seeds per technique (default %(default)s)",
    )
    submit.add_argument(
        "--session", default="", metavar="LABEL",
        help="session label (appears in server logs and status bus)",
    )
    submit.add_argument(
        "--timeout", type=float, default=120.0, metavar="SECONDS",
        help="socket timeout (default %(default)s)",
    )
    submit.add_argument(
        "--progress", action="store_true",
        help="print upload progress frames to stderr",
    )
    submit.add_argument(
        "--summary-only", action="store_true",
        help="print only the per-cell summary lines (byte-identical "
             "to an offline 'repro run' of the same cells)",
    )
    _add_ingest_args(submit, with_trace_file=False, with_cache=False)
    submit.set_defaults(func=_cmd_submit)

    campaign_status = subparsers.add_parser(
        "campaign-status",
        help="inspect a campaign checkpoint directory",
    )
    campaign_status.add_argument("checkpoint_dir", metavar="DIR")
    campaign_status.add_argument(
        "--follow", action="store_true",
        help="poll the campaign's status bus and redraw a live progress "
             "table until the campaign completes (JSON frames when "
             "stdout is not a terminal)",
    )
    campaign_status.add_argument(
        "--once", action="store_true",
        help="take a single status-bus poll and exit (implies --follow)",
    )
    campaign_status.add_argument(
        "--json", action="store_true",
        help="force machine-readable JSON frames even on a terminal",
    )
    campaign_status.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="poll period for --follow (default %(default)s)",
    )
    campaign_status.add_argument(
        "--stale-after", type=float, default=15.0, metavar="SECONDS",
        help="flag a running shard stale after this heartbeat silence "
             "(default %(default)s)",
    )
    campaign_status.set_defaults(func=_cmd_campaign_status)

    manifest_diff = subparsers.add_parser(
        "manifest-diff",
        help="compare two run manifests (exit 1 if results differ)",
    )
    manifest_diff.add_argument("a", help="baseline manifest JSON")
    manifest_diff.add_argument("b", help="candidate manifest JSON")
    manifest_diff.add_argument(
        "--ignore", action="append", default=[], metavar="FIELD",
        help="extra field/path to ignore (repeatable; volatile fields "
             "are always ignored)",
    )
    manifest_diff.set_defaults(func=_cmd_manifest_diff)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
