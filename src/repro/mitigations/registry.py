"""Registry of every mitigation technique the repo can simulate.

Gives the simulation and benchmark layers one factory API:
``make_mitigation("LoLiPRoMi", config, bank=0, seed=7)``.  The paper's
five state-of-the-art baselines live in :mod:`repro.mitigations`; the
four TiVaPRoMi variants in :mod:`repro.core`; the 2024-2025 tracker
families in :mod:`repro.mitigations.modern`.

Three tiers keep Table III reproducible while the benchmark grows:

* :data:`TECHNIQUES` -- the paper's nine Table III rows, in row order;
  the default for comparisons, campaigns and the golden suite.
* :data:`EXTENDED_TECHNIQUES` -- techniques the paper discusses
  (Section II) but does not evaluate.
* :data:`MODERN_TECHNIQUES` -- the post-2021 families from PAPERS.md
  (Loaded Dice, RVC, PVAC, PRAC/PRACtical, probabilistic tracker
  management), opt-in via ``include_modern=True`` so existing golden
  results stay bit-identical.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Type

from repro.config import SimConfig
from repro.core.capromi import CaPRoMi
from repro.core.tivapromi import LiPRoMi, LoLiPRoMi, LoPRoMi
from repro.mitigations.base import Mitigation
from repro.mitigations.counter_tree import CounterTree
from repro.mitigations.modern.loaded_dice import LoadedDice
from repro.mitigations.modern.policies import ProbabilisticTracker
from repro.mitigations.modern.prac import PRAC, PRACtical
from repro.mitigations.modern.pvac import PVAC
from repro.mitigations.modern.rvc import RVC
from repro.mitigations.software import SoftwareDetector
from repro.mitigations.cra import CRA
from repro.mitigations.mrloc import MRLoc
from repro.mitigations.para import PARA
from repro.mitigations.prohit import ProHit
from repro.mitigations.twice import TWiCe

#: the paper's Table III row order
TECHNIQUES: Dict[str, Type[Mitigation]] = {
    "ProHit": ProHit,
    "MRLoc": MRLoc,
    "PARA": PARA,
    "TWiCe": TWiCe,
    "CRA": CRA,
    "CaPRoMi": CaPRoMi,
    "LiPRoMi": LiPRoMi,
    "LoPRoMi": LoPRoMi,
    "LoLiPRoMi": LoLiPRoMi,
}

#: techniques the paper discusses (Section II) but does not evaluate in
#: Table III; available through the same factory API
EXTENDED_TECHNIQUES: Dict[str, Type[Mitigation]] = {
    "CounterTree": CounterTree,
    "SoftwareDetector": SoftwareDetector,
}

#: the 2024-2025 tracker families (see repro.mitigations.modern)
MODERN_TECHNIQUES: Dict[str, Type[Mitigation]] = {
    "LoadedDice": LoadedDice,
    "RVC": RVC,
    "PVAC": PVAC,
    "PRAC": PRAC,
    "PRACtical": PRACtical,
    "ProbTracker": ProbabilisticTracker,
}

#: the four variants proposed by the paper
TIVAPROMI_VARIANTS = ("LiPRoMi", "LoPRoMi", "LoLiPRoMi", "CaPRoMi")

#: the five state-of-the-art baselines
BASELINES = ("PARA", "ProHit", "MRLoc", "TWiCe", "CRA")

#: the five modern families (PRAC and PRACtical share one family)
MODERN_FAMILIES = (
    "LoadedDice",
    "RVC",
    "PVAC",
    "PRAC/PRACtical",
    "ProbTracker",
)


def technique_names(
    include_extended: bool = False, include_modern: bool = False
) -> List[str]:
    names = list(TECHNIQUES)
    if include_extended:
        names.extend(EXTENDED_TECHNIQUES)
    if include_modern:
        names.extend(MODERN_TECHNIQUES)
    return names


def _all_names() -> str:
    return ", ".join(technique_names(include_extended=True, include_modern=True))


def _lookup(name: str) -> Type[Mitigation] | None:
    return (
        TECHNIQUES.get(name)
        or EXTENDED_TECHNIQUES.get(name)
        or MODERN_TECHNIQUES.get(name)
    )


def technique_tier(name: str) -> str:
    """Which registry tier a canonical name belongs to."""
    if name in TECHNIQUES:
        return "paper"
    if name in EXTENDED_TECHNIQUES:
        return "extended"
    if name in MODERN_TECHNIQUES:
        return "modern"
    raise ValueError(f"unknown technique {name!r}; choose from {_all_names()}")


def make_mitigation(
    name: str, config: SimConfig, bank: int = 0, seed: int = 0, **kwargs
) -> Mitigation:
    """Instantiate a technique by name; *kwargs* go to its constructor."""
    cls = _lookup(name)
    if cls is None:
        raise ValueError(f"unknown technique {name!r}; choose from {_all_names()}")
    return cls(config, bank=bank, seed=seed, **kwargs)


def technique_class(name: str) -> Type[Mitigation]:
    """The registered class for a canonical technique name.

    Lets callers read class-level traits (``consumes_rng``,
    ``consumes_pbase``, ``known_vulnerabilities``) without
    instantiating; the fused engine's cell dedup depends on it.
    """
    cls = _lookup(name)
    if cls is None:
        raise ValueError(f"unknown technique {name!r}; choose from {_all_names()}")
    return cls


def make_factory(name: str, **kwargs) -> Callable[[SimConfig, int, int], Mitigation]:
    """A (config, bank, seed) -> Mitigation factory for the engine."""

    def factory(config: SimConfig, bank: int, seed: int) -> Mitigation:
        return make_mitigation(name, config, bank=bank, seed=seed, **kwargs)

    factory.technique_name = name
    return factory


def make_capturing_factory(
    cls: Type[Mitigation], holder: Dict[int, Mitigation], **kwargs
) -> Callable[[SimConfig, int, int], Mitigation]:
    """A factory that also records every created instance in *holder*.

    Experiments that inspect mitigation internals after a run (the tree
    saturation and software detection experiments) need a handle on the
    per-bank instances the engine creates; this keeps them from
    hand-rolling the same capturing closure.  *holder* is keyed by bank.
    """

    def factory(config: SimConfig, bank: int, seed: int) -> Mitigation:
        instance = cls(config, bank=bank, seed=seed, **kwargs)
        holder[bank] = instance
        return instance

    factory.technique_name = getattr(cls, "name", cls.__name__)
    return factory


def resolve_technique(name: str) -> str:
    """Canonical technique name for a case-insensitive user spelling.

    ``resolve_technique("lipromi") == "LiPRoMi"``; unknown names raise
    with the list of valid choices (the CLI's ``--technique`` parser).
    """
    lookup = {
        known.lower(): known
        for known in technique_names(include_extended=True, include_modern=True)
    }
    resolved = lookup.get(name.lower())
    if resolved is None:
        raise ValueError(f"unknown technique {name!r}; choose from {_all_names()}")
    return resolved
