"""Registry of all nine mitigation techniques evaluated in the paper.

Gives the simulation and benchmark layers one factory API:
``make_mitigation("LoLiPRoMi", config, bank=0, seed=7)``.  The paper's
five state-of-the-art baselines live in :mod:`repro.mitigations`; the
four TiVaPRoMi variants in :mod:`repro.core`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Type

from repro.config import SimConfig
from repro.core.capromi import CaPRoMi
from repro.core.tivapromi import LiPRoMi, LoLiPRoMi, LoPRoMi
from repro.mitigations.base import Mitigation
from repro.mitigations.counter_tree import CounterTree
from repro.mitigations.software import SoftwareDetector
from repro.mitigations.cra import CRA
from repro.mitigations.mrloc import MRLoc
from repro.mitigations.para import PARA
from repro.mitigations.prohit import ProHit
from repro.mitigations.twice import TWiCe

#: the paper's Table III row order
TECHNIQUES: Dict[str, Type[Mitigation]] = {
    "ProHit": ProHit,
    "MRLoc": MRLoc,
    "PARA": PARA,
    "TWiCe": TWiCe,
    "CRA": CRA,
    "CaPRoMi": CaPRoMi,
    "LiPRoMi": LiPRoMi,
    "LoPRoMi": LoPRoMi,
    "LoLiPRoMi": LoLiPRoMi,
}

#: techniques the paper discusses (Section II) but does not evaluate in
#: Table III; available through the same factory API
EXTENDED_TECHNIQUES: Dict[str, Type[Mitigation]] = {
    "CounterTree": CounterTree,
    "SoftwareDetector": SoftwareDetector,
}

#: the four variants proposed by the paper
TIVAPROMI_VARIANTS = ("LiPRoMi", "LoPRoMi", "LoLiPRoMi", "CaPRoMi")

#: the five state-of-the-art baselines
BASELINES = ("PARA", "ProHit", "MRLoc", "TWiCe", "CRA")


def technique_names(include_extended: bool = False) -> List[str]:
    names = list(TECHNIQUES)
    if include_extended:
        names.extend(EXTENDED_TECHNIQUES)
    return names


def make_mitigation(
    name: str, config: SimConfig, bank: int = 0, seed: int = 0, **kwargs
) -> Mitigation:
    """Instantiate a technique by name; *kwargs* go to its constructor."""
    cls = TECHNIQUES.get(name) or EXTENDED_TECHNIQUES.get(name)
    if cls is None:
        known = ", ".join(technique_names(include_extended=True))
        raise ValueError(f"unknown technique {name!r}; choose from {known}")
    return cls(config, bank=bank, seed=seed, **kwargs)


def make_factory(name: str, **kwargs) -> Callable[[SimConfig, int, int], Mitigation]:
    """A (config, bank, seed) -> Mitigation factory for the engine."""

    def factory(config: SimConfig, bank: int, seed: int) -> Mitigation:
        return make_mitigation(name, config, bank=bank, seed=seed, **kwargs)

    factory.technique_name = name
    return factory
