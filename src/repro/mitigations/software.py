"""Software-level Row-Hammer detection (ANVIL-class, Section II).

The paper's Section I/II discusses the software alternative: detectors
like ANVIL [1] watch performance counters, confirm suspicious access
patterns over time, and refresh the victims of identified aggressors.
Their documented weakness is latency -- "the detection is slow and
normally requires the length of several refresh windows [4], and until
then, bit flipping might already start in the victim row".

:class:`SoftwareDetector` models that class of defence behind the same
per-bank mitigation interface as the hardware techniques, so it can be
compared head-to-head:

* it *samples* the activation stream (a counter-based profiler sees a
  subset, not every command) into a per-window histogram;
* at the end of each refresh window it marks rows whose sampled count
  crosses the suspicion threshold;
* a row confirmed suspicious in ``confirmation_windows`` consecutive
  windows is treated as an aggressor: its neighbours are refreshed at
  every subsequent window boundary until it goes quiet.

With the paper's parameters an attack that reaches the flip threshold
within one refresh window beats the detector by construction -- the
reproduction of the Section II latency claim (see
``repro.sim.attacks.software_detection_experiment``).
"""

from __future__ import annotations

from collections import Counter
from typing import ClassVar, Dict, Sequence, Tuple

from repro.config import SimConfig
from repro.mitigations.base import ActivateNeighbors, Mitigation, MitigationAction
from repro.rng import stream


class SoftwareDetector(Mitigation):
    name: ClassVar[str] = "SoftwareDetector"
    known_vulnerabilities: ClassVar[Tuple[str, ...]] = (
        "detection latency: confirmation takes multiple refresh windows, "
        "while a full-rate attack flips bits within one ([4], Section II)",
        "evasion by code patterns and junk bytes against learned "
        "detectors ([5], Section II)",
    )
    #: fixed ``sample_probability``, independent of ``config.pbase``
    consumes_pbase: ClassVar[bool] = False

    def __init__(
        self,
        config: SimConfig,
        bank: int = 0,
        seed: int = 0,
        sample_probability: float = 0.05,
        suspicion_fraction: float = 0.02,
        confirmation_windows: int = 2,
    ):
        super().__init__(config, bank)
        if not 0.0 < sample_probability <= 1.0:
            raise ValueError("sample_probability must be in (0, 1]")
        if confirmation_windows < 1:
            raise ValueError("confirmation_windows must be >= 1")
        self.sample_probability = sample_probability
        #: a row is suspicious when it accounts for more than this
        #: fraction of the window's sampled activations
        self.suspicion_fraction = suspicion_fraction
        self.confirmation_windows = confirmation_windows
        self._rng = stream(seed, "software-detector", bank)
        self._histogram: Counter = Counter()
        self._sampled = 0
        self._suspicion: Dict[int, int] = {}
        self._confirmed: Dict[int, int] = {}
        #: window index when each aggressor was confirmed (analysis)
        self.detections: Dict[int, int] = {}

    def on_activation(self, row: int, interval: int) -> Sequence[MitigationAction]:
        if self._rng.random() < self.sample_probability:
            self._histogram[row] += 1
            self._sampled += 1
        return ()

    def on_refresh(self, interval: int) -> Sequence[MitigationAction]:
        # confirmed aggressors are quarantined: their victims get a
        # targeted refresh every refresh interval (the OS pins a
        # refresh list / migrates the page); detection itself only
        # happens at window boundaries, which is where the latency
        # weakness lives
        actions = tuple(
            ActivateNeighbors(row=row) for row in self._confirmed
        )
        if self.window_interval(interval) == 0:
            window = interval // self.refint
            self._analyze_window(window)
            self._histogram.clear()
            self._sampled = 0
        return actions

    def _analyze_window(self, window: int) -> None:
        threshold = max(2, int(self._sampled * self.suspicion_fraction))
        hot_rows = {
            row for row, count in self._histogram.items() if count >= threshold
        }
        # advance suspicion counters; rows gone quiet are acquitted
        for row in list(self._suspicion):
            if row not in hot_rows:
                del self._suspicion[row]
        for row in hot_rows:
            self._suspicion[row] = self._suspicion.get(row, 0) + 1
            if (
                self._suspicion[row] >= self.confirmation_windows
                and row not in self._confirmed
            ):
                self._confirmed[row] = window
                self.detections[row] = window
        # confirmed aggressors gone quiet are released from quarantine
        for row in list(self._confirmed):
            if row not in hot_rows:
                del self._confirmed[row]

    @property
    def table_bytes(self) -> int:
        """Software state lives in kernel memory, not controller SRAM.

        We report the working-set footprint of the histogram structures
        (it is *memory*, not area -- the comparison dimension where
        software detection wins).
        """
        return 0
