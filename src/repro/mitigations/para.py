"""PARA -- Probabilistic Adjacent Row Activation (Kim et al. [12]).

The original, stateless probabilistic mitigation: whenever a row is
activated, one of its two neighbours (chosen uniformly) is also
activated with a small constant probability ``p``.  The paper (and
ProHit [17]) treat ``p >= 0.001`` as effective; Table I pins TiVaPRoMi's
maximum probability to the same value, so PARA is the overhead
reference point.
"""

from __future__ import annotations

from typing import ClassVar, Sequence, Tuple

from repro.config import SimConfig
from repro.mitigations.base import Mitigation, MitigationAction, RefreshRow, StatelessMixin
from repro.rng import stream


class PARA(StatelessMixin, Mitigation):
    name: ClassVar[str] = "PARA"
    known_vulnerabilities: ClassVar[Tuple[str, ...]] = (
        "sequential multi-aggressor activation (shown by ProHit [17])",
        "non-selection: the unchosen neighbour gets no refresh, so the "
        "per-victim protection probability is halved and many-sided "
        "patterns dilute it further (Loaded Dice, arXiv:2605.17358)",
    )
    #: fixed ``probability`` parameter, independent of ``config.pbase``
    consumes_pbase: ClassVar[bool] = False

    def __init__(
        self,
        config: SimConfig,
        bank: int = 0,
        seed: int = 0,
        probability: float = 0.001,
    ):
        super().__init__(config, bank)
        if not 0.0 < probability <= 1.0:
            raise ValueError(f"probability must be in (0, 1]: {probability}")
        self.probability = probability
        self._rng = stream(seed, "para", bank)

    def on_activation(self, row: int, interval: int) -> Sequence[MitigationAction]:
        if self._rng.random() >= self.probability:
            return ()
        neighbors = self.config.geometry.assumed_neighbors(row)
        victim = neighbors[self._rng.randrange(len(neighbors))]
        return (RefreshRow(row=victim, trigger_row=row),)
