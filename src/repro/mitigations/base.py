"""Mitigation technique interface.

A mitigation observes the per-bank command stream a memory controller
emits -- ``act`` (row activation) and ``ref`` (refresh interval tick) --
and responds with *mitigating refreshes*.  Following the paper (Fig. 1),
each bank has its own mitigation instance with its own tables.

Two action kinds exist, matching the hardware commands in the
literature:

* :class:`ActivateNeighbors` -- the ``act_n`` command used by TiVaPRoMi,
  TWiCe and CRA: the memory internally activates both physical
  neighbours of the given row (the mitigation never needs to know the
  device's row remapping);
* :class:`RefreshRow` -- a directed refresh of one specific row, used by
  PARA (one randomly chosen neighbour), ProHit and MRLoc (which track
  victim addresses directly).  ``trigger_row`` records which activated
  row caused the action, for false-positive attribution.
* :class:`RecoveryRefresh` -- the ALERT-style back-off recovery used by
  the PRAC family: the device refreshes the neighbours of every listed
  aggressor row in one recovery window (a batched ``act_n``), after
  signalling the controller through a
  :class:`repro.dram.refresh.RecoveryChannel`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import ClassVar, List, Sequence, Tuple, Union

from repro.config import SimConfig


@dataclass(frozen=True)
class ActivateNeighbors:
    """``act_n``: refresh both physical neighbours of ``row``."""

    row: int

    @property
    def trigger_row(self) -> int:
        return self.row


@dataclass(frozen=True)
class RefreshRow:
    """Refresh one specific row; ``trigger_row`` caused the decision."""

    row: int
    trigger_row: int


@dataclass(frozen=True)
class RecoveryRefresh:
    """ALERT back-off recovery: refresh the neighbours of ``rows``.

    Semantically a batch of ``act_n`` commands the device performs
    while the controller is stalled by ALERT_n; the mitigation never
    names victim addresses, so defective-row remapping is resolved by
    the memory exactly as for :class:`ActivateNeighbors`.
    ``trigger_row`` is the aggressor whose counter crossing raised the
    alert (the first one, for a batched PRACtical recovery).
    """

    rows: Tuple[int, ...]
    trigger_row: int

    @property
    def row(self) -> int:
        return self.trigger_row


MitigationAction = Union[ActivateNeighbors, RefreshRow, RecoveryRefresh]


class Mitigation(ABC):
    """Per-bank Row-Hammer mitigation observing ``act``/``ref`` commands.

    Subclasses implement :meth:`on_activation` (and optionally
    :meth:`on_refresh`) returning the mitigating refreshes to issue.
    ``interval`` arguments are *global* refresh-interval indices; the
    window-relative index of Eq. 1 is ``interval % refint``.
    """

    #: short identifier used by the registry and reports
    name: ClassVar[str] = "abstract"
    #: optional :class:`repro.telemetry.hooks.EngineTelemetry` sink set
    #: by the engines when observability is enabled; techniques emitting
    #: events (the TiVaPRoMi variants) must guard every use with a
    #: ``None`` check so the default run stays hook-free
    telemetry = None
    #: attacks the literature documents against this technique (the
    #: basis of Table III's "Vulnerable to Attack" column); empty means
    #: no known bypass
    known_vulnerabilities: ClassVar[Tuple[str, ...]] = ()
    #: whether the technique draws from its seeded RNG stream.  The
    #: fused engine dedups grid cells whose results cannot differ: a
    #: technique with ``consumes_rng = False`` is identical across the
    #: seed axis, and one with ``consumes_pbase = False`` is identical
    #: across the pbase axis.  Both default to ``True`` (never dedup)
    #: so a new technique is always simulated conservatively.
    consumes_rng: ClassVar[bool] = True
    #: whether behaviour depends on ``config.pbase`` (the TiVaPRoMi
    #: family and CaPRoMi); deterministic counter techniques and the
    #: fixed-probability samplers (PARA, ProHit, MRLoc) do not
    consumes_pbase: ClassVar[bool] = True

    def __init__(self, config: SimConfig, bank: int = 0):
        self.config = config
        self.bank = bank
        self.refint = config.geometry.refint

    @abstractmethod
    def on_activation(self, row: int, interval: int) -> Sequence[MitigationAction]:
        """Observe an ``act`` command; return mitigating refreshes."""

    def on_refresh(self, interval: int) -> Sequence[MitigationAction]:
        """Observe the ``ref`` command starting *interval*.

        Called once per refresh interval, before that interval's
        activations.  The default does nothing; CaPRoMi and ProHit make
        their collective decisions here.
        """
        return ()

    def window_interval(self, interval: int) -> int:
        """Window-relative interval index (``i`` of Eq. 1)."""
        return interval % self.refint

    @property
    @abstractmethod
    def table_bytes(self) -> int:
        """Per-bank mitigation state in bytes (Fig. 4 x-axis)."""

    def describe(self) -> str:
        return f"{self.name} (bank {self.bank}, {self.table_bytes} B/bank)"


class StatelessMixin:
    """Mixin for techniques with no per-bank storage."""

    @property
    def table_bytes(self) -> int:
        return 0


def total_extra_activations(
    actions: Sequence[MitigationAction], neighbor_counts
) -> int:
    """Count the physical extra activations a batch of actions causes.

    *neighbor_counts* maps a row to its number of physical neighbours
    (2 interior, 1 at array edges); ``RefreshRow`` always costs one.
    """
    total = 0
    for action in actions:
        if isinstance(action, ActivateNeighbors):
            total += neighbor_counts(action.row)
        elif isinstance(action, RecoveryRefresh):
            total += sum(neighbor_counts(aggressor) for aggressor in action.rows)
        else:
            total += 1
    return total


def actions_as_rows(actions: Sequence[MitigationAction]) -> List[int]:
    """Rows named by a batch of actions (trigger rows for act_n)."""
    return [action.row for action in actions]
