"""Adaptive tree of counters (Seyedzadeh et al. [16], CAT-TWO [10]).

The third tabled-counter family Section II discusses: instead of one
counter per row (CRA) or a pruned flat table (TWiCe), a binary tree
over row ranges.  Each node counts the activations falling in its
range; when a node's count crosses the split threshold and the node
budget allows, it splits and both children continue counting (they
inherit the parent's count, which keeps the counter a sound upper
bound on every row's true activations).  Hot regions therefore get
refined down to single rows, which trigger ``act_n`` at the trigger
threshold; cold regions stay coarse and cheap.

The tree is reset at every new refresh window, and the paper notes two
properties we reproduce:

* effective mitigation needs a node budget of no less than ~1 KB per
  bank [10] -- the default budget matches that;
* the structure is vulnerable to *saturation*: an attacker can spread
  activations to force splits until the budget is exhausted, leaving
  the tree too coarse to localise the real aggressor [13].  When a
  saturated coarse node crosses the trigger threshold anyway, the only
  safe response is refreshing its whole range -- a large activation
  burst, which is the measurable cost of the attack (see
  ``repro.sim.attacks.tree_saturation_experiment``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import ClassVar, List, Optional, Sequence, Tuple

from repro.config import SimConfig
from repro.mitigations.base import ActivateNeighbors, Mitigation, MitigationAction

#: storage bits per tree node: range encoding (start level/index) plus
#: a counter sized for the trigger threshold
_NODE_POINTER_BITS = 18


@dataclass
class _TreeNode:
    start: int
    size: int
    count: int = 0
    left: Optional["_TreeNode"] = None
    right: Optional["_TreeNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    def covers(self, row: int) -> bool:
        return self.start <= row < self.start + self.size


class CounterTree(Mitigation):
    name: ClassVar[str] = "CounterTree"
    known_vulnerabilities: ClassVar[Tuple[str, ...]] = (
        "tree saturation: spreading activations forces splits until the "
        "node budget is exhausted, so the aggressor is never isolated "
        "(TWiCe [13] / TiVaPRoMi paper Section II)",
    )
    #: deterministic split counters: the ``seed`` argument is accepted
    #: for factory uniformity but never drawn from
    consumes_rng: ClassVar[bool] = False
    consumes_pbase: ClassVar[bool] = False

    def __init__(
        self,
        config: SimConfig,
        bank: int = 0,
        seed: int = 0,
        node_budget: int = 256,
        split_divisor: int = 16,
    ):
        super().__init__(config, bank)
        if node_budget < 3:
            raise ValueError("node budget must allow at least one split")
        self.trigger_threshold = max(1, config.flip_threshold // 4)
        self.split_threshold = max(1, self.trigger_threshold // split_divisor)
        self.node_budget = node_budget
        self._root = _TreeNode(start=0, size=config.geometry.rows_per_bank)
        self._node_count = 1
        #: times a coarse (size > 1) node crossed the trigger threshold
        self.coarse_triggers = 0
        self.max_nodes_used = 1

    # -- tree operations -----------------------------------------------------

    def _descend(self, row: int) -> _TreeNode:
        node = self._root
        while not node.is_leaf:
            node = node.left if node.left.covers(row) else node.right
        return node

    def _split(self, node: _TreeNode) -> None:
        half = node.size // 2
        # children inherit the parent count: it upper-bounds any row
        node.left = _TreeNode(start=node.start, size=half, count=node.count)
        node.right = _TreeNode(
            start=node.start + half, size=node.size - half, count=node.count
        )
        self._node_count += 2
        if self._node_count > self.max_nodes_used:
            self.max_nodes_used = self._node_count

    def on_activation(self, row: int, interval: int) -> Sequence[MitigationAction]:
        node = self._descend(row)
        node.count += 1
        while (
            node.size > 1
            and node.count >= self.split_threshold
            and self._node_count + 2 <= self.node_budget
        ):
            self._split(node)
            node = node.left if node.left.covers(row) else node.right
        if node.count >= self.trigger_threshold:
            node.count = 0
            if node.size == 1:
                return (ActivateNeighbors(row=node.start),)
            # saturated coarse node: the only sound response is to
            # refresh the neighbourhood of every row in its range
            self.coarse_triggers += 1
            return tuple(
                ActivateNeighbors(row=covered)
                for covered in range(node.start, node.start + node.size)
            )
        return ()

    def on_refresh(self, interval: int) -> Sequence[MitigationAction]:
        if self.window_interval(interval) == 0:
            self._root = _TreeNode(
                start=0, size=self.config.geometry.rows_per_bank
            )
            self._node_count = 1
        return ()

    # -- introspection -------------------------------------------------------

    @property
    def node_count(self) -> int:
        return self._node_count

    def leaf_sizes(self) -> List[int]:
        sizes: List[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                sizes.append(node.size)
            else:
                stack.extend((node.left, node.right))
        return sizes

    def finest_size_covering(self, row: int) -> int:
        return self._descend(row).size

    @property
    def table_bytes(self) -> int:
        counter_bits = max(1, math.ceil(math.log2(self.trigger_threshold + 1)))
        node_bits = counter_bits + _NODE_POINTER_BITS
        return (self.node_budget * node_bits + 7) // 8
