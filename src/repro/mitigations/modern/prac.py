"""PRAC / PRACtical -- per-row activation counters with ALERT back-off.

DDR5's PRAC scheme stores an activation counter inside every DRAM row.
When a counter crosses the back-off threshold the *device* raises
ALERT_n; the controller stalls while the device refreshes the
aggressor's neighbours, then the counter resets.  Because counting is
exhaustive and in-DRAM the scheme has no tracker to thrash -- but the
recovery protocol itself becomes the attack surface: Nazaraliyev et
al. (arXiv:2507.18581) show that wave patterns provoking continuous
ALERTs stall every bank behind a single aggressor ("performance
attack"), and propose **PRACtical**: per-subarray counter banks so
counter updates proceed in parallel, and recovery isolation so an
ALERT only costs the affected subarray its slack, serviced in batch at
the next refresh tick.

Model implemented here:

* :class:`PRAC` -- sparse per-row counters; crossing the
  ``back_off_threshold`` raises an alert on a
  :class:`~repro.dram.refresh.RecoveryChannel` and immediately emits a
  :class:`~repro.mitigations.base.RecoveryRefresh` for the aggressor
  (the device resolves the true neighbours).  Counters of refreshed
  rows reset with the periodic refresh.
* :class:`PRACtical` -- counters split into per-subarray banks
  (``geometry.subarrays_per_bank``); alerts queue on the channel and
  are *deferred*: the next refresh tick drains the queue and issues one
  batched :class:`RecoveryRefresh` per subarray, so one hot subarray
  cannot serialise the whole bank.  The deferral trades a bounded
  window of extra disturbance for isolation, which is exactly the
  trade the differential harness pins.

Both are deterministic: no RNG stream, no ``pbase`` dependence, so the
fused engine dedups them across both grid axes.
"""

from __future__ import annotations

import math
from typing import ClassVar, Dict, List, Optional, Sequence, Tuple

from repro.config import SimConfig
from repro.dram.refresh import RecoveryChannel
from repro.mitigations.base import Mitigation, MitigationAction, RecoveryRefresh


class PRAC(Mitigation):
    name: ClassVar[str] = "PRAC"
    known_vulnerabilities: ClassVar[Tuple[str, ...]] = (
        "ALERT wave attack: rotating aggressors force back-to-back "
        "back-off recoveries that stall the whole bank (performance "
        "denial, shown by PRACtical, arXiv:2507.18581)",
    )
    consumes_rng: ClassVar[bool] = False
    consumes_pbase: ClassVar[bool] = False

    def __init__(
        self,
        config: SimConfig,
        bank: int = 0,
        seed: int = 0,
        back_off_threshold: Optional[int] = None,
    ):
        super().__init__(config, bank)
        self.back_off_threshold = (
            max(1, config.flip_threshold // 4)
            if back_off_threshold is None
            else back_off_threshold
        )
        if self.back_off_threshold < 1:
            raise ValueError(
                f"back_off_threshold must be positive: {self.back_off_threshold}"
            )
        #: per-row activation counters (sparse; zero not stored)
        self._counters: Dict[int, int] = {}
        #: device -> controller ALERT_n channel
        self.channel = RecoveryChannel()

    def _cross(self, row: int, interval: int) -> None:
        """Record one threshold crossing of *row* on the alert channel."""
        self.channel.raise_alert(
            self.bank, self.config.geometry.subarray_of(row), row, interval
        )

    def on_activation(self, row: int, interval: int) -> Sequence[MitigationAction]:
        count = self._counters.get(row, 0) + 1
        if count >= self.back_off_threshold:
            self._counters.pop(row, None)
            self._cross(row, interval)
            self.channel.drain()
            return (RecoveryRefresh(rows=(row,), trigger_row=row),)
        self._counters[row] = count
        return ()

    def on_refresh(self, interval: int) -> Sequence[MitigationAction]:
        """Periodic refresh resets the counters of restored rows."""
        for row in self.config.geometry.rows_of_interval(
            self.window_interval(interval)
        ):
            self._counters.pop(row, None)
        return ()

    def counter(self, row: int) -> int:
        return self._counters.get(row, 0)

    def observe_run(
        self, row: int, interval: int, count: int
    ) -> Tuple[int, Sequence[MitigationAction]]:
        """Run-batching hook: one counter, first crossing computed directly."""
        current = self._counters.get(row, 0)
        need = self.back_off_threshold - current
        if need > count:
            self._counters[row] = current + count
            return count, ()
        self._counters.pop(row, None)
        self._cross(row, interval)
        self.channel.drain()
        return need - 1, (RecoveryRefresh(rows=(row,), trigger_row=row),)

    @property
    def table_bytes(self) -> int:
        count_bits = max(1, math.ceil(math.log2(self.back_off_threshold + 1)))
        total_bits = self.config.geometry.rows_per_bank * count_bits
        return (total_bits + 7) // 8


class PRACtical(PRAC):
    name: ClassVar[str] = "PRACtical"
    known_vulnerabilities: ClassVar[Tuple[str, ...]] = ()

    def __init__(
        self,
        config: SimConfig,
        bank: int = 0,
        seed: int = 0,
        back_off_threshold: Optional[int] = None,
    ):
        super().__init__(config, bank, seed, back_off_threshold)
        subarrays = config.geometry.subarrays_per_bank
        #: counter updates per subarray counter bank (observability)
        self.subarray_updates: List[int] = [0] * subarrays
        #: batched recoveries serviced per subarray
        self.subarray_recoveries: List[int] = [0] * subarrays

    def on_activation(self, row: int, interval: int) -> Sequence[MitigationAction]:
        geometry = self.config.geometry
        self.subarray_updates[geometry.subarray_of(row)] += 1
        count = self._counters.get(row, 0) + 1
        if count >= self.back_off_threshold:
            # Defer: queue the alert, recover in batch at the next ref.
            self._counters.pop(row, None)
            self._cross(row, interval)
            return ()
        self._counters[row] = count
        return ()

    def on_refresh(self, interval: int) -> Sequence[MitigationAction]:
        super().on_refresh(interval)
        actions: List[MitigationAction] = []
        for subarray, events in self.channel.drain_by_subarray().items():
            rows: List[int] = []
            for event in events:
                if event.row not in rows:
                    rows.append(event.row)
            self.subarray_recoveries[subarray] += 1
            actions.append(
                RecoveryRefresh(rows=tuple(rows), trigger_row=rows[0])
            )
        return tuple(actions)

    def observe_run(
        self, row: int, interval: int, count: int
    ) -> Tuple[int, Sequence[MitigationAction]]:
        """Run-batching hook: crossings only queue alerts, never trigger.

        A run of ``count`` activations crosses the threshold
        ``(current + count) // threshold`` times (the counter resets on
        each crossing); every crossing queues one alert for the next
        refresh tick, so the run is always clean.
        """
        self.subarray_updates[self.config.geometry.subarray_of(row)] += count
        threshold = self.back_off_threshold
        current = self._counters.get(row, 0)
        total = current + count
        crossings, remainder = divmod(total, threshold)
        for _ in range(crossings):
            self._cross(row, interval)
        if remainder:
            self._counters[row] = remainder
        else:
            self._counters.pop(row, None)
        return count, ()
