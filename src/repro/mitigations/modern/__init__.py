"""Modern (2024-2025) tracker mitigation families.

The paper's Table III compares TiVaPRoMi against the 2021 defense
landscape.  This package extends the registry with the tracker families
retrieved in PAPERS.md so the repo benchmarks a decade of Row-Hammer
mitigation rather than a snapshot:

* :class:`~repro.mitigations.modern.loaded_dice.LoadedDice` --
  non-selection-aware probabilistic tracking (Woo et al.,
  arXiv:2605.17358);
* :class:`~repro.mitigations.modern.rvc.RVC` -- victim-centric counting
  in a bounded table (Jain & Tavva, arXiv:2604.24287);
* :class:`~repro.mitigations.modern.pvac.PVAC` -- exhaustive
  per-victim-row counters (Kim et al., arXiv:2604.20576);
* :class:`~repro.mitigations.modern.prac.PRAC` /
  :class:`~repro.mitigations.modern.prac.PRACtical` -- per-row
  activation counters with ALERT back-off recovery, and the
  subarray-isolated refinement (Nazaraliyev et al., arXiv:2507.18581);
* :class:`~repro.mitigations.modern.policies.ProbabilisticTracker` --
  Jaleel et al.'s probabilistic tracker-management policies as a
  configurable counter-table wrapper (arXiv:2404.16256).

Every class implements the same :class:`~repro.mitigations.base.Mitigation`
protocol as the 2021 techniques and passes the reference = fast = fused
differential harness.  The deterministic counters additionally expose
``observe_run`` (the run-batching contract of the fast engine's
``decide_run``) so fused campaign grids stay fast.
"""

from repro.mitigations.modern.loaded_dice import LoadedDice
from repro.mitigations.modern.policies import ProbabilisticTracker
from repro.mitigations.modern.prac import PRAC, PRACtical
from repro.mitigations.modern.pvac import PVAC
from repro.mitigations.modern.rvc import RVC

__all__ = [
    "LoadedDice",
    "PRAC",
    "PRACtical",
    "PVAC",
    "ProbabilisticTracker",
    "RVC",
]
