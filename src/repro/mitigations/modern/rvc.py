"""RVC -- victim-centric Row-Hammer counting (Jain & Tavva, arXiv:2604.24287).

Aggressor-centric trackers (TWiCe, Graphene lineage) count *who
hammers*; RVC inverts the bookkeeping and counts *who is being
disturbed*.  A bounded table keeps one disturbance counter per victim
row: every activation of row ``r`` charges the counters of ``r``'s
assumed neighbours, and a victim whose accumulated disturbance reaches
the threshold is refreshed directly.  Because a victim's counter sums
the contributions of *both* of its aggressors, double-sided and
many-sided patterns are seen as one stream -- there is no per-aggressor
dilution to exploit.

Model implemented here:

* ``entries``-deep victim table; a miss with a full table evicts the
  minimum-count victim (first inserted on ties) -- the bounded-storage
  trade-off the paper accepts;
* threshold defaults to half the flip threshold (a victim's counter is
  the *sum* over its aggressors, so half covers the double-sided
  worst case with margin);
* periodic refresh retires the counters of the rows it restores, like
  CRA, since a refreshed victim starts from zero disturbance.

Deterministic: no RNG stream, no ``pbase`` dependence, so the fused
engine dedups RVC across both grid axes.
"""

from __future__ import annotations

import math
from typing import ClassVar, Dict, List, Optional, Sequence, Tuple

from repro.config import SimConfig
from repro.mitigations.base import Mitigation, MitigationAction, RefreshRow


class RVC(Mitigation):
    name: ClassVar[str] = "RVC"
    known_vulnerabilities: ClassVar[Tuple[str, ...]] = (
        "victim-table eviction thrash: > entries/2 interleaved aggressor "
        "pairs recycle counters before they mature (bounded-storage "
        "trade-off, arXiv:2604.24287)",
    )
    consumes_rng: ClassVar[bool] = False
    consumes_pbase: ClassVar[bool] = False

    def __init__(
        self,
        config: SimConfig,
        bank: int = 0,
        seed: int = 0,
        entries: Optional[int] = None,
        trigger_threshold: Optional[int] = None,
    ):
        super().__init__(config, bank)
        self.entries = config.counter_table_entries if entries is None else entries
        if self.entries < 1:
            raise ValueError(f"entries must be positive: {self.entries}")
        self.trigger_threshold = (
            max(1, config.flip_threshold // 2)
            if trigger_threshold is None
            else trigger_threshold
        )
        if self.trigger_threshold < 1:
            raise ValueError(
                f"trigger_threshold must be positive: {self.trigger_threshold}"
            )
        #: victim row -> accumulated disturbance (insertion-ordered)
        self._counts: Dict[int, int] = {}
        self.max_occupancy = 0
        self.evictions = 0

    def _charge(self, victim: int) -> int:
        """Add one disturbance to *victim*; return its new count."""
        count = self._counts.get(victim)
        if count is not None:
            count += 1
            self._counts[victim] = count
            return count
        if len(self._counts) >= self.entries:
            self._counts.pop(self._coldest())
            self.evictions += 1
        self._counts[victim] = 1
        if len(self._counts) > self.max_occupancy:
            self.max_occupancy = len(self._counts)
        return 1

    def _coldest(self) -> int:
        coldest = -1
        coldest_count = -1
        for victim, count in self._counts.items():
            if coldest_count < 0 or count < coldest_count:
                coldest, coldest_count = victim, count
        return coldest

    def on_activation(self, row: int, interval: int) -> Sequence[MitigationAction]:
        actions: List[MitigationAction] = []
        for victim in self.config.geometry.assumed_neighbors(row):
            if self._charge(victim) >= self.trigger_threshold:
                self._counts.pop(victim, None)
                actions.append(RefreshRow(row=victim, trigger_row=row))
        return tuple(actions)

    def on_refresh(self, interval: int) -> Sequence[MitigationAction]:
        """Periodic refresh retires the counters of restored rows."""
        for row in self.config.geometry.rows_of_interval(
            self.window_interval(interval)
        ):
            self._counts.pop(row, None)
        return ()

    def counter(self, victim: int) -> int:
        return self._counts.get(victim, 0)

    def observe_run(
        self, row: int, interval: int, count: int
    ) -> Tuple[int, Sequence[MitigationAction]]:
        """Run-batching hook: a run of one row charges a fixed victim set.

        Once every victim of *row* holds a table entry, further
        activations are pure ``+1`` arithmetic per victim (hits never
        evict), so the first threshold crossing is computed directly.
        The per-record loop is kept for the rare degenerate capacity
        where inserting one victim evicts the other.
        """
        victims = self.config.geometry.assumed_neighbors(row)
        threshold = self.trigger_threshold
        consumed = 0
        while consumed < count:
            actions = self.on_activation(row, interval)
            consumed += 1
            if actions:
                return consumed - 1, actions
            if consumed >= count:
                break
            counts = self._counts
            if not all(victim in counts for victim in victims):
                continue
            remaining = count - consumed
            need = min(threshold - counts[victim] for victim in victims)
            if need > remaining:
                for victim in victims:
                    counts[victim] += remaining
                return count, ()
            triggered: List[MitigationAction] = []
            for victim in victims:
                counts[victim] += need
                if counts[victim] >= threshold:
                    counts.pop(victim, None)
                    triggered.append(RefreshRow(row=victim, trigger_row=row))
            consumed += need
            return consumed - 1, tuple(triggered)
        return count, ()

    @property
    def table_bytes(self) -> int:
        row_bits = max(1, math.ceil(math.log2(self.config.geometry.rows_per_bank)))
        count_bits = max(1, math.ceil(math.log2(self.trigger_threshold + 1)))
        total_bits = self.entries * (row_bits + count_bits + 1)  # +valid
        return (total_bits + 7) // 8
