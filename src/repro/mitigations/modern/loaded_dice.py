"""Loaded Dice -- non-selection-aware probabilistic tracking.

Woo, Kim, Jaleel and Nair (arXiv:2605.17358) identify the
*non-selection problem* of classic probabilistic defenses: PARA-style
samplers first decide *whether* to mitigate and then pick *which*
candidate uniformly, so a heavily hammered row can simply never win the
draw -- the per-victim protection probability is diluted by every other
candidate.  Loaded Dice keeps the cheap per-activation coin flip but
*loads* the selection die: a small table tracks activation counts of
recent aggressors, and when the coin triggers, the victim's aggressor
is sampled with probability proportional to its activation count.  Hot
rows therefore cannot hide behind cold ones, which is exactly the gap
the registry records as PARA's and ProHit's ``known_vulnerabilities``.

Model implemented here:

* an ``entries``-deep table of (aggressor row, activation count); on a
  miss with a full table the minimum-count entry (first inserted on
  ties) is evicted -- the dice are probabilistic, the bookkeeping is
  deterministic;
* one uniform draw per activation decides whether to mitigate
  (``probability``, defaulting to PARA's 0.001);
* on a trigger a second draw samples a tracked aggressor with
  probability proportional to its count, issues ``act_n`` on it (the
  device resolves the true neighbours, sidestepping remapping), and
  retires its table entry.
"""

from __future__ import annotations

import math
from typing import ClassVar, Dict, Optional, Sequence, Tuple

from repro.config import SimConfig
from repro.mitigations.base import ActivateNeighbors, Mitigation, MitigationAction
from repro.rng import stream


class LoadedDice(Mitigation):
    name: ClassVar[str] = "LoadedDice"
    known_vulnerabilities: ClassVar[Tuple[str, ...]] = ()
    #: fixed trigger probability; the count-weighted die needs the RNG
    consumes_rng: ClassVar[bool] = True
    consumes_pbase: ClassVar[bool] = False

    def __init__(
        self,
        config: SimConfig,
        bank: int = 0,
        seed: int = 0,
        entries: Optional[int] = None,
        probability: float = 0.001,
    ):
        super().__init__(config, bank)
        if not 0.0 < probability <= 1.0:
            raise ValueError(f"probability must be in (0, 1]: {probability}")
        self.entries = config.history_table_entries if entries is None else entries
        if self.entries < 1:
            raise ValueError(f"entries must be positive: {self.entries}")
        self.probability = probability
        #: aggressor row -> activations since tracked (insertion-ordered)
        self._counts: Dict[int, int] = {}
        self.max_occupancy = 0
        self._rng = stream(seed, "loaded-dice", bank)

    def _observe(self, row: int) -> None:
        count = self._counts.get(row)
        if count is not None:
            self._counts[row] = count + 1
            return
        if len(self._counts) >= self.entries:
            self._counts.pop(self._coldest())
        self._counts[row] = 1
        if len(self._counts) > self.max_occupancy:
            self.max_occupancy = len(self._counts)

    def _coldest(self) -> int:
        """Minimum-count tracked row; first inserted wins ties."""
        coldest = -1
        coldest_count = -1
        for tracked, count in self._counts.items():
            if coldest_count < 0 or count < coldest_count:
                coldest, coldest_count = tracked, count
        return coldest

    def _roll_loaded_die(self) -> Sequence[MitigationAction]:
        """Sample a tracked aggressor with probability ~ its count."""
        total = sum(self._counts.values())
        point = self._rng.random() * total
        acc = 0
        selected = -1
        for tracked, count in self._counts.items():
            acc += count
            selected = tracked
            if point < acc:
                break
        self._counts.pop(selected, None)
        return (ActivateNeighbors(row=selected),)

    def on_activation(self, row: int, interval: int) -> Sequence[MitigationAction]:
        self._observe(row)
        if self._rng.random() >= self.probability:
            return ()
        return self._roll_loaded_die()

    def observe_run(
        self, row: int, interval: int, count: int
    ) -> Tuple[int, Sequence[MitigationAction]]:
        """Run-batching hook (the fast engine's ``decide_run`` contract).

        A run repeats one row, so after the first activation settles
        insertion/eviction the remaining activations are one count
        increment plus one coin flip each; the flips are scanned
        without touching the table until one lands.
        """
        actions = self.on_activation(row, interval)
        if actions:
            return 0, actions
        if count == 1:
            return 1, ()
        remaining = count - 1
        probability = self.probability
        draw = self._rng.random
        for clean in range(remaining):
            if draw() < probability:
                self._counts[row] += clean + 1
                return clean + 1, self._roll_loaded_die()
        self._counts[row] += remaining
        return count, ()

    @property
    def table_bytes(self) -> int:
        row_bits = max(1, math.ceil(math.log2(self.config.geometry.rows_per_bank)))
        count_bits = max(
            1, math.ceil(math.log2(self.config.flip_threshold + 1))
        )
        total_bits = self.entries * (row_bits + count_bits + 1)  # +valid
        return (total_bits + 7) // 8
