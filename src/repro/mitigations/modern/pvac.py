"""PVAC -- per-victim-row activation counting (Kim et al., arXiv:2604.20576).

Where :class:`~repro.mitigations.modern.rvc.RVC` accepts a bounded
victim table, PVAC keeps a disturbance counter for *every* row in the
bank -- the victim-centric sibling of CRA's per-aggressor-row storage.
Every activation charges both assumed neighbours; a victim whose
counter reaches the threshold is refreshed directly and its counter
cleared.  With exhaustive storage there is nothing to evict and
nothing to thrash, so PVAC (like CRA) is deterministic and
false-positive-free at the price of counters-in-DRAM storage.

The counter of a row also resets when the periodic refresh restores
that row, under the same sequential ``f_r`` mapping the paper's
robustness experiment stresses.
"""

from __future__ import annotations

import math
from typing import ClassVar, Dict, List, Optional, Sequence, Tuple

from repro.config import SimConfig
from repro.mitigations.base import Mitigation, MitigationAction, RefreshRow


class PVAC(Mitigation):
    name: ClassVar[str] = "PVAC"
    known_vulnerabilities: ClassVar[Tuple[str, ...]] = ()
    consumes_rng: ClassVar[bool] = False
    consumes_pbase: ClassVar[bool] = False

    def __init__(
        self,
        config: SimConfig,
        bank: int = 0,
        seed: int = 0,
        trigger_threshold: Optional[int] = None,
    ):
        super().__init__(config, bank)
        self.trigger_threshold = (
            max(1, config.flip_threshold // 2)
            if trigger_threshold is None
            else trigger_threshold
        )
        if self.trigger_threshold < 1:
            raise ValueError(
                f"trigger_threshold must be positive: {self.trigger_threshold}"
            )
        #: victim row -> accumulated disturbance (sparse; zero not stored)
        self._counts: Dict[int, int] = {}

    def on_activation(self, row: int, interval: int) -> Sequence[MitigationAction]:
        actions: List[MitigationAction] = []
        for victim in self.config.geometry.assumed_neighbors(row):
            count = self._counts.get(victim, 0) + 1
            if count >= self.trigger_threshold:
                self._counts.pop(victim, None)
                actions.append(RefreshRow(row=victim, trigger_row=row))
            else:
                self._counts[victim] = count
        return tuple(actions)

    def on_refresh(self, interval: int) -> Sequence[MitigationAction]:
        """Periodic refresh clears the counters of restored rows."""
        for row in self.config.geometry.rows_of_interval(
            self.window_interval(interval)
        ):
            self._counts.pop(row, None)
        return ()

    def counter(self, victim: int) -> int:
        return self._counts.get(victim, 0)

    def observe_run(
        self, row: int, interval: int, count: int
    ) -> Tuple[int, Sequence[MitigationAction]]:
        """Run-batching hook: pure counter arithmetic, no eviction."""
        victims = self.config.geometry.assumed_neighbors(row)
        threshold = self.trigger_threshold
        counts = self._counts
        need = min(threshold - counts.get(victim, 0) for victim in victims)
        if need > count:
            for victim in victims:
                counts[victim] = counts.get(victim, 0) + count
            return count, ()
        triggered: List[MitigationAction] = []
        for victim in victims:
            charged = counts.get(victim, 0) + need
            if charged >= threshold:
                counts.pop(victim, None)
                triggered.append(RefreshRow(row=victim, trigger_row=row))
            else:
                counts[victim] = charged
        return need - 1, tuple(triggered)

    @property
    def table_bytes(self) -> int:
        count_bits = max(1, math.ceil(math.log2(self.trigger_threshold + 1)))
        total_bits = self.config.geometry.rows_per_bank * count_bits
        return (total_bits + 7) // 8
