"""Probabilistic tracker-management policies (Jaleel et al., arXiv:2404.16256).

Counter-table trackers (TWiCe, Graphene descendants) spend most of
their area on the *management* of a small table: which rows get an
entry, and who is displaced when the table is full.  Jaleel, Keckler
and Saileshwar show that deterministic insertion is the weakness --
and, conversely, that *probabilistic* insertion and replacement make a
small table behave like a much larger one in expectation, because an
attacker cannot deterministically engineer the eviction pattern.

:class:`ProbabilisticTracker` packages those policies as a configurable
wrapper over the repo's counter-table idiom:

* hits increment the entry's counter and trigger ``act_n`` at the
  threshold, exactly like the deterministic tables;
* a miss only *probabilistically* claims an entry
  (``insert_probability``, default 1/16 -- approximating one insert
  per expected threshold-fraction of activations);
* when the table is full the displaced entry is chosen by the
  ``replacement`` policy: ``"random"`` (the paper's headline policy --
  random replacement needs no metadata and resists eviction
  engineering) or ``"minimum"`` (deterministic min-count baseline for
  comparison).

RNG-dependent (insertion and random replacement draw from the seeded
per-bank stream) but independent of ``config.pbase``, so the fused
engine dedups it across the pbase axis only.
"""

from __future__ import annotations

import math
from typing import ClassVar, Dict, Optional, Sequence, Tuple

from repro.config import SimConfig
from repro.mitigations.base import ActivateNeighbors, Mitigation, MitigationAction
from repro.rng import stream

_REPLACEMENT_POLICIES = ("random", "minimum")


class ProbabilisticTracker(Mitigation):
    name: ClassVar[str] = "ProbTracker"
    known_vulnerabilities: ClassVar[Tuple[str, ...]] = (
        "insertion lottery: an aggressor stays untracked while every "
        "insert draw fails, a tail the policy only bounds in "
        "expectation (arXiv:2404.16256)",
    )
    consumes_rng: ClassVar[bool] = True
    consumes_pbase: ClassVar[bool] = False

    def __init__(
        self,
        config: SimConfig,
        bank: int = 0,
        seed: int = 0,
        entries: Optional[int] = None,
        insert_probability: float = 1 / 16,
        replacement: str = "random",
        trigger_threshold: Optional[int] = None,
    ):
        super().__init__(config, bank)
        self.entries = config.counter_table_entries if entries is None else entries
        if self.entries < 1:
            raise ValueError(f"entries must be positive: {self.entries}")
        if not 0.0 < insert_probability <= 1.0:
            raise ValueError(
                f"insert_probability must be in (0, 1]: {insert_probability}"
            )
        if replacement not in _REPLACEMENT_POLICIES:
            raise ValueError(
                f"replacement must be one of {_REPLACEMENT_POLICIES}: {replacement!r}"
            )
        self.insert_probability = insert_probability
        self.replacement = replacement
        self.trigger_threshold = (
            max(1, config.flip_threshold // 4)
            if trigger_threshold is None
            else trigger_threshold
        )
        if self.trigger_threshold < 1:
            raise ValueError(
                f"trigger_threshold must be positive: {self.trigger_threshold}"
            )
        #: tracked aggressor row -> activation count (insertion-ordered)
        self._table: Dict[int, int] = {}
        self.max_occupancy = 0
        self.evictions = 0
        self._rng = stream(seed, "prob-tracker", bank)

    def _insert(self, row: int) -> None:
        """Claim an entry for *row*, displacing one under the policy."""
        if len(self._table) >= self.entries:
            if self.replacement == "random":
                victim = list(self._table)[self._rng.randrange(len(self._table))]
            else:
                victim = self._coldest()
            self._table.pop(victim)
            self.evictions += 1
        self._table[row] = 1
        if len(self._table) > self.max_occupancy:
            self.max_occupancy = len(self._table)

    def _coldest(self) -> int:
        coldest = -1
        coldest_count = -1
        for tracked, count in self._table.items():
            if coldest_count < 0 or count < coldest_count:
                coldest, coldest_count = tracked, count
        return coldest

    def on_activation(self, row: int, interval: int) -> Sequence[MitigationAction]:
        count = self._table.get(row)
        if count is not None:
            count += 1
            if count >= self.trigger_threshold:
                self._table.pop(row, None)
                return (ActivateNeighbors(row=row),)
            self._table[row] = count
            return ()
        if self._rng.random() < self.insert_probability:
            self._insert(row)
        return ()

    def counter(self, row: int) -> int:
        return self._table.get(row, 0)

    def observe_run(
        self, row: int, interval: int, count: int
    ) -> Tuple[int, Sequence[MitigationAction]]:
        """Run-batching hook preserving the exact per-activation draws.

        Tracked stretches are pure arithmetic; untracked stretches
        consume exactly one insert draw per activation (plus the
        replacement draw when one lands), matching the per-record RNG
        sequence bit for bit.
        """
        table = self._table
        threshold = self.trigger_threshold
        consumed = 0
        while consumed < count:
            current = table.get(row)
            if current is not None:
                remaining = count - consumed
                need = max(1, threshold - current)
                if need > remaining:
                    table[row] = current + remaining
                    return count, ()
                table.pop(row, None)
                consumed += need
                return consumed - 1, (ActivateNeighbors(row=row),)
            remaining = count - consumed
            probability = self.insert_probability
            draw = self._rng.random
            inserted = False
            for miss in range(remaining):
                if draw() < probability:
                    self._insert(row)
                    consumed += miss + 1
                    inserted = True
                    break
            if not inserted:
                return count, ()
        return count, ()

    @property
    def table_bytes(self) -> int:
        row_bits = max(1, math.ceil(math.log2(self.config.geometry.rows_per_bank)))
        count_bits = max(1, math.ceil(math.log2(self.trigger_threshold + 1)))
        total_bits = self.entries * (row_bits + count_bits + 1)  # +valid
        return (total_bits + 7) // 8
