"""Row-Hammer mitigation techniques: interface, baselines, registry."""

from repro.mitigations.base import (
    ActivateNeighbors,
    Mitigation,
    MitigationAction,
    RefreshRow,
)
from repro.mitigations.counter_tree import CounterTree
from repro.mitigations.cra import CRA
from repro.mitigations.mrloc import MRLoc
from repro.mitigations.para import PARA
from repro.mitigations.prohit import ProHit
from repro.mitigations.software import SoftwareDetector
from repro.mitigations.registry import (
    BASELINES,
    EXTENDED_TECHNIQUES,
    TECHNIQUES,
    TIVAPROMI_VARIANTS,
    make_factory,
    make_mitigation,
    technique_names,
)
from repro.mitigations.twice import TWiCe

__all__ = [
    "ActivateNeighbors",
    "BASELINES",
    "CRA",
    "CounterTree",
    "EXTENDED_TECHNIQUES",
    "MRLoc",
    "Mitigation",
    "MitigationAction",
    "PARA",
    "ProHit",
    "RefreshRow",
    "SoftwareDetector",
    "TECHNIQUES",
    "TIVAPROMI_VARIANTS",
    "TWiCe",
    "make_factory",
    "make_mitigation",
    "technique_names",
]
