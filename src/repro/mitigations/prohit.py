"""ProHit -- probabilistic hot/cold victim tables (Son et al. [17]).

ProHit tracks the *victims* (neighbours) of frequently activated rows in
two small tables:

* a **cold table**: new victim candidates are inserted probabilistically
  at the tail; an existing cold entry that is hit again moves up one
  slot, and from the top of the cold table it is promoted into the hot
  table;
* a **hot table**: hit entries swap one position toward the top.

At every refresh interval the *top hot entry* is refreshed and removed
(it joins "the list of rows that are refreshed in the next refresh
interval", Section II of the TiVaPRoMi paper).

This makes ProHit robust against sequential multi-aggressor attacks
(each aggressor's victims keep climbing the tables) at the price of a
higher false-positive rate: popular benign rows climb too, and the
per-interval top-entry refresh fires for them as well.

Sizes and probabilities follow the ProHit paper's design point: 4 hot +
12 cold entries; insertion probability defaults are documented
constants, tunable for ablation.
"""

from __future__ import annotations

from typing import ClassVar, List, Sequence, Tuple

from repro.config import SimConfig
from repro.mitigations.base import Mitigation, MitigationAction, RefreshRow
from repro.rng import stream

#: row-address field width assumed for table sizing (64 K rows per bank)
_ROW_BITS = 17


class ProHit(Mitigation):
    name: ClassVar[str] = "ProHit"
    known_vulnerabilities: ClassVar[Tuple[str, ...]] = (
        "non-selection: a hammered row whose victims never win the "
        "probabilistic hot-table promotion stays unprotected (Loaded "
        "Dice, arXiv:2605.17358)",
    )
    #: fixed ``insert_probability``, independent of ``config.pbase``
    consumes_pbase: ClassVar[bool] = False

    def __init__(
        self,
        config: SimConfig,
        bank: int = 0,
        seed: int = 0,
        hot_entries: int = 4,
        cold_entries: int = 12,
        insert_probability: float = 0.005,
    ):
        super().__init__(config, bank)
        if hot_entries < 1 or cold_entries < 1:
            raise ValueError("hot/cold tables need at least one entry each")
        if not 0.0 < insert_probability <= 1.0:
            raise ValueError(f"insert_probability in (0, 1]: {insert_probability}")
        self.hot_entries = hot_entries
        self.cold_entries = cold_entries
        self.insert_probability = insert_probability
        self._rng = stream(seed, "prohit", bank)
        #: index 0 is the top of each table
        self._hot: List[int] = []
        self._cold: List[int] = []
        #: remembers which activated row put a victim in the tables,
        #: for false-positive attribution of the interval refresh
        self._trigger: dict = {}

    def on_activation(self, row: int, interval: int) -> Sequence[MitigationAction]:
        for victim in self.config.geometry.assumed_neighbors(row):
            self._observe_victim(victim, row)
        return ()

    def on_refresh(self, interval: int) -> Sequence[MitigationAction]:
        """Refresh and retire the top hot entry, if any."""
        if not self._hot:
            return ()
        victim = self._hot.pop(0)
        trigger = self._trigger.pop(victim, victim)
        return (RefreshRow(row=victim, trigger_row=trigger),)

    def _observe_victim(self, victim: int, trigger_row: int) -> None:
        self._trigger[victim] = trigger_row
        if victim in self._hot:
            index = self._hot.index(victim)
            if index > 0:  # swap one position toward the top
                self._hot[index - 1], self._hot[index] = (
                    self._hot[index], self._hot[index - 1],
                )
            return
        if victim in self._cold:
            index = self._cold.index(victim)
            if index == 0:
                self._promote(victim)
            else:
                self._cold[index - 1], self._cold[index] = (
                    self._cold[index], self._cold[index - 1],
                )
            return
        if self._rng.random() < self.insert_probability:
            if len(self._cold) >= self.cold_entries:
                dropped = self._cold.pop()  # replace the tail
                self._trigger.pop(dropped, None)
            self._cold.append(victim)

    def _promote(self, victim: int) -> None:
        self._cold.remove(victim)
        if len(self._hot) >= self.hot_entries:
            dropped = self._hot.pop()  # hot tail falls back to cold top
            self._cold.insert(0, dropped)
            if len(self._cold) > self.cold_entries:
                tail = self._cold.pop()
                self._trigger.pop(tail, None)
        self._hot.append(victim)

    @property
    def table_bytes(self) -> int:
        total_bits = (self.hot_entries + self.cold_entries) * _ROW_BITS
        return (total_bits + 7) // 8
