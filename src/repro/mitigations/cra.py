"""CRA -- Counter-based Row Activation tracking (Kim et al. [11]).

The simplest tabled-counter scheme: one counter per DRAM row.  When a
row's counter reaches the trigger threshold, both neighbours are
refreshed (``act_n``) and the counter resets; a row's counter also
resets whenever the row group containing it is refreshed by the
periodic refresh.

Deterministic and false-positive-free, but the storage is a counter for
*every* row (tens of KB per bank, the rightmost point of Fig. 4), which
is why CRA stores its table in the DRAM itself and why its logic
implementation in Table III is the largest of all nine techniques.

The counter reset uses the sequential refresh mapping ``f_r``; this is
the same assumption TiVaPRoMi makes and the refresh-policy robustness
experiment stresses.
"""

from __future__ import annotations

import math
from typing import ClassVar, Dict, Sequence, Tuple

from repro.config import SimConfig
from repro.mitigations.base import ActivateNeighbors, Mitigation, MitigationAction


class CRA(Mitigation):
    name: ClassVar[str] = "CRA"
    known_vulnerabilities: ClassVar[Tuple[str, ...]] = ()
    #: deterministic counters: no RNG stream, no pbase dependence
    consumes_rng: ClassVar[bool] = False
    consumes_pbase: ClassVar[bool] = False

    def __init__(self, config: SimConfig, bank: int = 0, seed: int = 0):
        super().__init__(config, bank)
        #: quarter of the flip threshold: covers double-sided attacks
        #: straddling a row's refresh point
        self.trigger_threshold = max(1, config.flip_threshold // 4)
        #: counters are kept sparsely; a zero counter is not stored
        self._counters: Dict[int, int] = {}

    def on_activation(self, row: int, interval: int) -> Sequence[MitigationAction]:
        count = self._counters.get(row, 0) + 1
        if count >= self.trigger_threshold:
            self._counters.pop(row, None)
            return (ActivateNeighbors(row=row),)
        self._counters[row] = count
        return ()

    def on_refresh(self, interval: int) -> Sequence[MitigationAction]:
        """Clear counters of the rows refreshed this interval."""
        for row in self.config.geometry.rows_of_interval(
            self.window_interval(interval)
        ):
            self._counters.pop(row, None)
        return ()

    def counter(self, row: int) -> int:
        return self._counters.get(row, 0)

    @property
    def table_bytes(self) -> int:
        counter_bits = max(1, math.ceil(math.log2(self.trigger_threshold + 1)))
        total_bits = self.config.geometry.rows_per_bank * counter_bits
        return (total_bits + 7) // 8
