"""TWiCe -- Time Window Counters (Lee et al. [13]).

TWiCe counts activations per row in a pruned table:

* on an activation, the row's entry count is incremented (allocating an
  entry on first sight);
* at every refresh interval, all entries age by one ``life`` and any
  entry whose count is below ``life * threshold_rate`` is pruned -- a
  row activated below that rate can no longer reach the Row-Hammer
  threshold within the window, so dropping it is provably safe;
* when a count reaches the trigger threshold (a quarter of the flip
  threshold, covering double-sided attacks split across a window
  boundary), ``act_n`` refreshes both neighbours and the count resets.

Pruning bounds the number of live entries: at age ``k`` at most
``max_acts_per_interval / (k * threshold_rate)`` rows can survive, so
the table capacity is ``165 * (1 + H(RefInt) / threshold_rate)`` -- a
few hundred entries needing CAM lookup, which is why the TWiCe authors
place it in the DIMM rather than the controller (Section II of the
TiVaPRoMi paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import ClassVar, Dict, Sequence, Tuple

from repro.config import SimConfig
from repro.mitigations.base import ActivateNeighbors, Mitigation, MitigationAction

_ROW_BITS = 17
_LIFE_BITS = 13
_VALID_BITS = 1


@dataclass
class _Entry:
    count: int = 0
    life: int = 0


class TWiCe(Mitigation):
    name: ClassVar[str] = "TWiCe"
    known_vulnerabilities: ClassVar[Tuple[str, ...]] = ()
    #: deterministic lifetime counters: no RNG, no pbase dependence
    consumes_rng: ClassVar[bool] = False
    consumes_pbase: ClassVar[bool] = False

    def __init__(self, config: SimConfig, bank: int = 0, seed: int = 0):
        super().__init__(config, bank)
        #: trigger at a quarter of the flip threshold: halves once for
        #: the two-aggressor case, once for window-straddling attacks
        self.trigger_threshold = max(1, config.flip_threshold // 4)
        #: minimum sustained activations/interval to stay tracked
        self.threshold_rate = self.trigger_threshold / self.refint
        self._table: Dict[int, _Entry] = {}
        self.max_occupancy = 0

    def on_activation(self, row: int, interval: int) -> Sequence[MitigationAction]:
        entry = self._table.get(row)
        if entry is None:
            entry = _Entry()
            self._table[row] = entry
            if len(self._table) > self.max_occupancy:
                self.max_occupancy = len(self._table)
        entry.count += 1
        if entry.count >= self.trigger_threshold:
            entry.count = 0
            return (ActivateNeighbors(row=row),)
        return ()

    def on_refresh(self, interval: int) -> Sequence[MitigationAction]:
        if self.window_interval(interval) == 0:
            # New window: every row was refreshed last window, restart.
            self._table.clear()
            return ()
        doomed = []
        for row, entry in self._table.items():
            entry.life += 1
            if entry.count < entry.life * self.threshold_rate:
                doomed.append(row)
        for row in doomed:
            del self._table[row]
        return ()

    @property
    def occupancy(self) -> int:
        return len(self._table)

    @property
    def analytic_capacity(self) -> int:
        """Worst-case concurrent entries (the provable pruning bound)."""
        per_interval = self.config.timing.max_acts_per_interval
        harmonic = math.log(self.refint) + 0.5772
        return int(per_interval * (1.0 + harmonic / self.threshold_rate)) + 1

    @property
    def table_bytes(self) -> int:
        count_bits = max(1, math.ceil(math.log2(self.trigger_threshold + 1)))
        entry_bits = _ROW_BITS + count_bits + _LIFE_BITS + _VALID_BITS
        return (self.analytic_capacity * entry_bits + 7) // 8
