"""MRLoc -- memory-locality-based probabilistic mitigation (You & Yang [19]).

MRLoc keeps a small FIFO queue of recently seen *victim* addresses.  On
each activation, every neighbour of the activated row is looked up in
the queue:

* on a hit, the victim is refreshed with a probability *weighted by its
  recency* -- the more recently the victim entered the queue, the more
  likely an attack is in progress, so the weight grows toward the tail;
* on a miss, only a small base probability applies;
* either way the victim is (re)pushed into the queue.

The weighting lets MRLoc spend fewer refreshes than PARA on cold rows
while concentrating on rows with locality, slightly reducing false
positives -- but, as the TiVaPRoMi paper notes (Section II), the queue
can be thrashed by hammering many aggressors so that every lookup
misses and only the base probability protects the victims; this is the
documented vulnerability.
"""

from __future__ import annotations

from collections import deque
from typing import ClassVar, Deque, Sequence, Tuple

from repro.config import SimConfig
from repro.mitigations.base import Mitigation, MitigationAction, RefreshRow
from repro.rng import stream

_ROW_BITS = 17


class MRLoc(Mitigation):
    name: ClassVar[str] = "MRLoc"
    known_vulnerabilities: ClassVar[Tuple[str, ...]] = (
        "multi-aggressor queue thrashing (misses reduce p to the base "
        "probability; TiVaPRoMi paper Section II)",
    )
    #: fixed ``base_probability``, independent of ``config.pbase``
    consumes_pbase: ClassVar[bool] = False

    def __init__(
        self,
        config: SimConfig,
        bank: int = 0,
        seed: int = 0,
        queue_entries: int = 16,
        base_probability: float = 0.0003,
        max_boost: float = 4.0,
    ):
        super().__init__(config, bank)
        if queue_entries < 1:
            raise ValueError("queue_entries must be positive")
        if not 0.0 < base_probability <= 1.0:
            raise ValueError(f"base_probability in (0, 1]: {base_probability}")
        if max_boost < 1.0:
            raise ValueError("max_boost must be >= 1")
        self.queue_entries = queue_entries
        self.base_probability = base_probability
        self.max_boost = max_boost
        self._rng = stream(seed, "mrloc", bank)
        self._queue: Deque[int] = deque(maxlen=queue_entries)

    def victim_probability(self, victim: int) -> float:
        """Current refresh probability for *victim* (recency weighted)."""
        try:
            position = list(self._queue).index(victim)
        except ValueError:
            return self.base_probability
        # position 0 is the oldest entry; weight grows toward the tail.
        recency = (position + 1) / len(self._queue)
        boost = 1.0 + (self.max_boost - 1.0) * recency
        return min(1.0, self.base_probability * boost)

    def on_activation(self, row: int, interval: int) -> Sequence[MitigationAction]:
        actions = []
        for victim in self.config.geometry.assumed_neighbors(row):
            probability = self.victim_probability(victim)
            if self._rng.random() < probability:
                actions.append(RefreshRow(row=victim, trigger_row=row))
            if victim in self._queue:
                self._queue.remove(victim)
            self._queue.append(victim)
        return tuple(actions)

    @property
    def table_bytes(self) -> int:
        return (self.queue_entries * _ROW_BITS + 7) // 8
