"""Memory controller with the TiVaPRoMi extension interface (Fig. 1).

The controller owns the DRAM device and the per-bank mitigation
instances.  It forwards every ``act`` and ``ref`` command to the
mitigation of the addressed bank; mitigating refreshes come back
through a small **RH interrupt buffer** -- the paper buffers
``(BA_RH, RA_RH, IRQ_RH)`` while ``wait`` is raised and issues the
``act_n`` at the next opportunity.  We model that by queueing actions
and draining the queue before the next command is processed, tracking
the buffer's maximum occupancy (it stays tiny, which is why a
single-entry hardware buffer suffices).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional

from collections import deque

from repro.config import SimConfig
from repro.dram.device import DRAMDevice
from repro.dram.refresh import RefreshPolicy
from repro.mitigations.base import (
    ActivateNeighbors,
    Mitigation,
    MitigationAction,
    RecoveryRefresh,
    RefreshRow,
)
from repro.rng import derive_seed

#: factory signature: (config, bank, seed) -> Mitigation
MitigationFactory = Callable[[SimConfig, int, int], Mitigation]


@dataclass
class PendingAction:
    bank: int
    action: MitigationAction
    #: whether the triggering row was a known aggressor at decision time
    trigger_was_attack: bool


@dataclass
class MemoryController:
    config: SimConfig
    mitigation_factory: Optional[MitigationFactory] = None
    refresh_policy: Optional[RefreshPolicy] = None
    seed: int = 0
    #: optional :class:`repro.telemetry.hooks.EngineTelemetry`; purely
    #: observational -- never consulted for any simulation decision
    telemetry: Optional[object] = None
    device: DRAMDevice = field(init=False)
    mitigations: List[Mitigation] = field(init=False)
    #: the Fig. 1 buffer between the mitigation and the interrupt logic
    _rh_buffer: Deque[PendingAction] = field(default_factory=deque)
    max_buffer_occupancy: int = 0
    #: (extra activations, false-positive extra activations) counters
    extra_activations: int = 0
    fp_extra_activations: int = 0
    mitigation_triggers: int = 0
    #: per-bank ground-truth aggressor rows seen so far (metrics only;
    #: mitigations never see this)
    _aggressors: List[set] = field(init=False)
    _time_ns: int = 0

    def __post_init__(self) -> None:
        self.device = DRAMDevice(self.config, refresh_policy=self.refresh_policy)
        banks = self.config.geometry.num_banks
        if self.mitigation_factory is None:
            self.mitigations = []
        else:
            self.mitigations = [
                self.mitigation_factory(
                    self.config, bank, derive_seed(self.seed, "mitigation", bank)
                )
                for bank in range(banks)
            ]
        if self.telemetry is not None:
            for mitigation in self.mitigations:
                mitigation.telemetry = self.telemetry
        self._aggressors = [set() for _ in range(banks)]

    @property
    def current_interval(self) -> int:
        return self.device.interval

    def activate(self, bank: int, row: int, time_ns: int, is_attack: bool = False) -> int:
        """Process one ``act`` command; returns mitigation triggers caused.

        The ground-truth *is_attack* flag is recorded for metrics and
        never shown to the mitigation.
        """
        self._time_ns = time_ns
        if self.telemetry is not None:
            self.telemetry.now = time_ns
        self._drain_buffer()
        if is_attack:
            self._aggressors[bank].add(row)
        self.device.activate(bank, row, time_ns)
        if not self.mitigations:
            return 0
        actions = self.mitigations[bank].on_activation(
            row, self.device.interval
        )
        self._enqueue(bank, actions)
        return len(actions)

    def refresh_tick(self) -> None:
        """Process the ``ref`` command starting the next interval."""
        self._drain_buffer()
        self.device.refresh_tick()
        interval = self.device.interval
        for bank, mitigation in enumerate(self.mitigations):
            self._enqueue(bank, mitigation.on_refresh(interval))
        self._drain_buffer()

    def _enqueue(self, bank: int, actions) -> None:
        for action in actions:
            trigger = action.trigger_row
            self._rh_buffer.append(
                PendingAction(
                    bank=bank,
                    action=action,
                    trigger_was_attack=trigger in self._aggressors[bank],
                )
            )
            if self.telemetry is not None:
                self.telemetry.on_trigger(
                    bank, action.row, self.device.interval,
                    type(action).__name__,
                )
        if len(self._rh_buffer) > self.max_buffer_occupancy:
            self.max_buffer_occupancy = len(self._rh_buffer)

    def _drain_buffer(self) -> None:
        while self._rh_buffer:
            pending = self._rh_buffer.popleft()
            self._apply(pending)

    def _apply(self, pending: PendingAction) -> None:
        bank = self.device.banks[pending.bank]
        action = pending.action
        self.mitigation_triggers += 1
        if isinstance(action, ActivateNeighbors):
            cost = bank.activate_neighbors(action.row, self._time_ns)
        elif isinstance(action, RecoveryRefresh):
            # ALERT back-off recovery: a batch of act_n commands, one
            # per alerted aggressor, performed while the bus is stalled.
            cost = 0
            for aggressor in action.rows:
                cost += bank.activate_neighbors(aggressor, self._time_ns)
        elif isinstance(action, RefreshRow):
            # A directed refresh is one extra activation of the victim
            # row itself (which also disturbs the victim's neighbours).
            bank.activate(action.row, self._time_ns)
            bank.activations -= 1  # re-classify as extra, not normal
            bank.extra_activations += 1
            cost = 1
        else:  # pragma: no cover - future action kinds
            raise TypeError(f"unknown mitigation action {action!r}")
        self.extra_activations += cost
        if not pending.trigger_was_attack:
            self.fp_extra_activations += cost
        if self.telemetry is not None:
            self.telemetry.on_apply(
                pending.bank, action.row, self.device.interval, cost,
                not pending.trigger_was_attack,
            )

    def finish(self) -> None:
        """Flush any buffered mitigation actions at end of simulation."""
        self._drain_buffer()
