"""Memory-controller command records (Fig. 1 signal vocabulary).

The mitigation extension observes two controller commands -- ``act``
and ``ref`` -- and responds through the RH interrupt logic with extra
refreshes.  These records are what flows across that interface; the
simulation engine can optionally log them for inspection.
"""

from __future__ import annotations

from typing import NamedTuple


class Activate(NamedTuple):
    """A normal row activation (``act``)."""

    time_ns: int
    bank: int
    row: int


class Refresh(NamedTuple):
    """A periodic refresh command (``ref``) starting *interval*."""

    time_ns: int
    interval: int


class ActivateNeighborsCmd(NamedTuple):
    """``act_n``: the memory activates both neighbours of *row*."""

    time_ns: int
    bank: int
    row: int


class RefreshRowCmd(NamedTuple):
    """A directed refresh of one row (PARA/ProHit/MRLoc style)."""

    time_ns: int
    bank: int
    row: int
    trigger_row: int
