"""FR-FCFS request scheduler producing a timing-legal activation trace.

The layer between the cache hierarchy's memory requests and the
mitigation simulation: an open-page DDR4 controller that schedules
PRE/ACT/RD/WR under the :mod:`~repro.controller.timing_model` rules and
an all-bank refresh every tREFI.  The scheduling policy is FR-FCFS
(first-ready, first-come-first-served): column accesses to already-open
rows go first (they need no activation), otherwise the oldest request
wins and its bank is precharged/activated as needed.

Output is a standard :class:`~repro.traces.record.Trace` whose records
are the issued ACT commands -- exactly the stream a memory-controller-
level Row-Hammer mitigation observes, now with hardware-accurate
inter-command spacing instead of the mixer's even slotting.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, Iterator, List, NamedTuple, Optional

from repro.config import SimConfig
from repro.controller.timing_model import (
    BankTimer,
    DDR4CommandTiming,
    RankTimer,
)
from repro.traces.record import Trace, TraceMeta, TraceRecord


class DRAMRequestEvent(NamedTuple):
    """A DRAM request with its arrival time and ground-truth tag."""

    arrival_ns: float
    bank: int
    row: int
    is_write: bool
    is_attack: bool


@dataclass
class _PendingRequest:
    event: DRAMRequestEvent
    sequence: int


class FRFCFSScheduler:
    """Single-rank open-page FR-FCFS scheduler."""

    def __init__(
        self,
        config: SimConfig,
        timing: Optional[DDR4CommandTiming] = None,
        queue_depth: int = 32,
    ):
        self.config = config
        self.timing = timing or DDR4CommandTiming()
        banks = config.geometry.num_banks
        self.bank_timers = [BankTimer(self.timing) for _ in range(banks)]
        self.rank_timer = RankTimer(self.timing)
        self.queues: List[Deque[_PendingRequest]] = [deque() for _ in range(banks)]
        self.acts: List[TraceRecord] = []
        self.requests_served = 0
        self.row_hits = 0
        #: per-bank queue capacity; a full queue backpressures the core
        #: (the request is dropped and counted -- a blocking core would
        #: simply have issued it later)
        self.queue_depth = queue_depth
        self.backpressured = 0
        #: deadline of the upcoming all-bank refresh; an ACT whose column
        #: access cannot issue strictly before it would be wasted (the
        #: refresh closes the row first), so such ACTs are deferred
        self._next_refresh = float("inf")

    # -- scheduling core ---------------------------------------------------

    def _try_column(self, now: float) -> bool:
        """Serve any queued request whose row is already open."""
        for bank, queue in enumerate(self.queues):
            timer = self.bank_timers[bank]
            for pending in queue:
                if pending.event.row == timer.open_row:
                    if timer.can_col(now, pending.event.row):
                        timer.issue_col(now, pending.event.row)
                        queue.remove(pending)
                        self.requests_served += 1
                        self.row_hits += 1
                        return True
                    break  # open-row request exists but column port busy
        return False

    def _oldest_pending(self) -> Optional[int]:
        best_bank = None
        best_sequence = None
        for bank, queue in enumerate(self.queues):
            if queue and (best_sequence is None or queue[0].sequence < best_sequence):
                best_sequence = queue[0].sequence
                best_bank = bank
        return best_bank

    def _try_act_or_pre(self, now: float) -> bool:
        bank = self._oldest_pending()
        if bank is None:
            return False
        timer = self.bank_timers[bank]
        pending = self.queues[bank][0]
        if timer.open_row == -1:
            projected_col = max(timer._earliest_col, now + self.timing.trcd)
            if projected_col >= self._next_refresh:
                return False
            if timer.can_act(now) and self.rank_timer.can_act(now):
                timer.issue_act(now, pending.event.row)
                self.rank_timer.issue_act(now)
                self.acts.append(
                    TraceRecord(
                        int(now), bank, pending.event.row, pending.event.is_attack
                    )
                )
                # the column access follows after tRCD; serve it on a
                # later _try_column pass
                return True
            return False
        if timer.open_row != pending.event.row and timer.can_pre(now):
            timer.issue_pre(now)
            return True
        return False

    def _refresh(self, now: float) -> None:
        """All-bank refresh: precharge everything, block for tRFC."""
        until = now + self.timing.trfc
        for timer in self.bank_timers:
            timer.open_row = -1
            timer.block_until(until)

    def _next_decision_time(self, now: float) -> float:
        """Earliest future instant at which some command may become legal."""
        candidates = []
        for bank, queue in enumerate(self.queues):
            if not queue:
                continue
            timer = self.bank_timers[bank]
            pending = queue[0]
            if timer.open_row == pending.event.row:
                candidates.append(timer._earliest_col)
            elif timer.open_row == -1:
                candidates.append(
                    max(timer.earliest_act(), self.rank_timer.earliest_act())
                )
            else:
                candidates.append(timer._earliest_pre)
        future = [candidate for candidate in candidates if candidate > now]
        return min(future) if future else now + 1.0

    # -- public API --------------------------------------------------------

    def run(
        self,
        events: Iterable[DRAMRequestEvent],
        total_intervals: int,
    ) -> Trace:
        """Schedule *events* over *total_intervals* refresh intervals."""
        interval_ns = int(self.config.timing.refresh_interval_ns)
        horizon = float(total_intervals * interval_ns)
        stream = iter(sorted(events, key=lambda event: event.arrival_ns))
        upcoming = next(stream, None)
        sequence = 0
        now = 0.0
        next_refresh = 0.0

        def admit(until: float):
            nonlocal upcoming, sequence
            while upcoming is not None and upcoming.arrival_ns <= until:
                queue = self.queues[upcoming.bank]
                if len(queue) < self.queue_depth:
                    queue.append(
                        _PendingRequest(event=upcoming, sequence=sequence)
                    )
                    sequence += 1
                else:
                    self.backpressured += 1
                upcoming = next(stream, None)

        while now < horizon:
            if now >= next_refresh:
                self._refresh(next_refresh)
                next_refresh += self.timing.trefi
            self._next_refresh = next_refresh
            admit(now)
            if self._try_column(now):
                continue
            if self._try_act_or_pre(now):
                continue
            # nothing issuable now: advance to the next interesting time
            targets = [next_refresh, horizon]
            if upcoming is not None:
                targets.append(upcoming.arrival_ns)
            if any(self.queues):
                targets.append(self._next_decision_time(now))
            new_now = min(target for target in targets if target > now)
            now = new_now

        meta = TraceMeta(
            total_intervals=total_intervals,
            interval_ns=interval_ns,
            num_banks=self.config.geometry.num_banks,
        )
        acts = [record for record in self.acts if record.time_ns < meta.duration_ns]
        return Trace(meta=meta, records=acts)

    @property
    def row_hit_rate(self) -> float:
        if not self.requests_served:
            return 0.0
        return self.row_hits / self.requests_served


def schedule_system_trace(
    system,
    total_intervals: int,
    timing: Optional[DDR4CommandTiming] = None,
) -> Trace:
    """Hardware-timed alternative to ``MultiCoreSystem.generate_trace``.

    Pulls one interval's worth of requests from the system model at a
    time, spreads their arrivals uniformly over the interval, and lets
    the FR-FCFS scheduler produce the timing-legal ACT trace.
    """
    config = system.config
    interval_ns = int(config.timing.refresh_interval_ns)
    scheduler = FRFCFSScheduler(config, timing=timing)

    def events() -> Iterator[DRAMRequestEvent]:
        for interval in range(total_intervals):
            batch = []
            per_core = []
            for core in system.cores:
                budget = (
                    system.attacker_accesses if core.is_attacker
                    else system.accesses_per_core
                )
                per_core.append(core.requests_for(budget))
            for slot in range(max((len(q) for q in per_core), default=0)):
                for queue in per_core:
                    if slot < len(queue):
                        batch.append(queue[slot])  # (MemoryRequest, is_attack)
            spacing = interval_ns / max(len(batch), 1)
            for position, (request, tagged) in enumerate(batch):
                bank, row, _ = system.layout.decode(request.address)
                yield DRAMRequestEvent(
                    arrival_ns=interval * interval_ns + position * spacing,
                    bank=bank,
                    row=row,
                    is_write=request.is_write,
                    is_attack=tagged,
                )

    trace = scheduler.run(list(events()), total_intervals)
    # expose scheduler statistics on the trace for reporting
    trace.scheduler = scheduler
    return trace
