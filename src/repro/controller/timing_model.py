"""DDR4 command timing: per-bank and per-rank legality rules.

The paper uses gem5's DRAM controller model [6] targeting DDR4 [9].
This module provides the timing core of such a controller: given the
command history, when may the next PRE/ACT/RD/WR/REF legally issue?

Parameters (nanoseconds) follow JESD79-4 for a DDR4-2400 grade, with
the two values the paper pins in Table I taken verbatim: 45 ns
activate-to-activate (tRC) and 350 ns refresh time (tRFC).

Enforced constraints:

========  =====================================================
tRCD      ACT -> first RD/WR to the same bank
tRP       PRE -> next ACT to the same bank
tRAS      ACT -> earliest PRE of the same bank
tRC       ACT -> next ACT of the same bank (tRAS + tRP)
tRRD      ACT -> ACT across banks of one rank
tFAW      any four ACTs within a rank must span >= tFAW
tRFC      REF blocks the whole rank
tREFI     refresh interval cadence (driven by the controller)
========  =====================================================
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List


@dataclass(frozen=True)
class DDR4CommandTiming:
    """DDR4 command timing parameters in nanoseconds."""

    trcd: float = 14.16
    trp: float = 14.16
    tras: float = 30.84
    trrd: float = 3.3
    tfaw: float = 21.6
    trfc: float = 350.0
    trefi: float = 7800.0
    #: column access latency + burst (RD/WR occupancy, simplified)
    tcol: float = 15.0

    @property
    def trc(self) -> float:
        """ACT-to-ACT, same bank -- the paper's Table I pins 45 ns."""
        return self.tras + self.trp


@dataclass
class BankTimer:
    """Command-legality clock for one bank."""

    timing: DDR4CommandTiming
    #: row currently open in the bank, -1 when precharged
    open_row: int = -1
    _earliest_act: float = 0.0
    _earliest_pre: float = 0.0
    _earliest_col: float = 0.0
    acts_issued: int = 0

    def can_act(self, now: float) -> bool:
        return self.open_row == -1 and now >= self._earliest_act

    def can_pre(self, now: float) -> bool:
        return self.open_row != -1 and now >= self._earliest_pre

    def can_col(self, now: float, row: int) -> bool:
        return self.open_row == row and now >= self._earliest_col

    def earliest_act(self) -> float:
        return self._earliest_act

    def issue_act(self, now: float, row: int) -> None:
        if not self.can_act(now):
            raise ValueError(
                f"illegal ACT at {now} (bank open_row={self.open_row}, "
                f"earliest {self._earliest_act})"
            )
        self.open_row = row
        self.acts_issued += 1
        timing = self.timing
        self._earliest_pre = max(self._earliest_pre, now + timing.tras)
        self._earliest_col = max(self._earliest_col, now + timing.trcd)
        self._earliest_act = max(self._earliest_act, now + timing.trc)

    def issue_pre(self, now: float) -> None:
        if not self.can_pre(now):
            raise ValueError(f"illegal PRE at {now}")
        self.open_row = -1
        self._earliest_act = max(self._earliest_act, now + self.timing.trp)

    def issue_col(self, now: float, row: int) -> None:
        if not self.can_col(now, row):
            raise ValueError(f"illegal RD/WR at {now} (row {row})")
        self._earliest_col = max(self._earliest_col, now + self.timing.tcol)

    def block_until(self, time: float) -> None:
        """REF: freeze the bank until *time* (rank-wide tRFC)."""
        self._earliest_act = max(self._earliest_act, time)
        self._earliest_pre = max(self._earliest_pre, time)
        self._earliest_col = max(self._earliest_col, time)


@dataclass
class RankTimer:
    """Cross-bank constraints: tRRD and the tFAW four-activate window."""

    timing: DDR4CommandTiming
    _last_act: float = float("-inf")
    _act_window: Deque[float] = field(default_factory=deque)

    def can_act(self, now: float) -> bool:
        if now - self._last_act < self.timing.trrd:
            return False
        if len(self._act_window) >= 4:
            if now - self._act_window[0] < self.timing.tfaw:
                return False
        return True

    def earliest_act(self) -> float:
        candidates = [self._last_act + self.timing.trrd]
        if len(self._act_window) >= 4:
            candidates.append(self._act_window[0] + self.timing.tfaw)
        return max(candidates)

    def issue_act(self, now: float) -> None:
        if not self.can_act(now):
            raise ValueError(f"illegal rank ACT at {now}")
        self._last_act = now
        self._act_window.append(now)
        while len(self._act_window) > 4:
            self._act_window.popleft()


class CommandTimingChecker:
    """Validates a recorded ACT stream against the timing rules.

    Used by tests and by trace validation: returns the violations found
    (empty for a legal stream).  Only ACT-level rules are checked,
    because that is all a mitigation ever observes.
    """

    def __init__(self, num_banks: int, timing: DDR4CommandTiming = None):
        self.timing = timing or DDR4CommandTiming()
        self.num_banks = num_banks

    def check(self, acts: List) -> List[str]:
        """*acts* is a sequence of (time_ns, bank) pairs, time-sorted."""
        problems: List[str] = []
        last_bank_act = {}
        window: Deque[float] = deque()
        last_act = float("-inf")
        for index, (time_ns, bank) in enumerate(acts):
            previous = last_bank_act.get(bank)
            if previous is not None and time_ns - previous < self.timing.trc:
                problems.append(
                    f"act {index}: bank {bank} tRC violation "
                    f"({time_ns - previous:.1f} < {self.timing.trc:.1f} ns)"
                )
            if time_ns - last_act < self.timing.trrd and time_ns != last_act:
                problems.append(f"act {index}: tRRD violation")
            if len(window) >= 4 and time_ns - window[-4] < self.timing.tfaw:
                problems.append(f"act {index}: tFAW violation")
            last_bank_act[bank] = time_ns
            window.append(time_ns)
            last_act = time_ns
        return problems
