"""Memory-controller layer: commands, controller model, DDR4 command
timing, and the FR-FCFS request scheduler."""

from repro.controller.commands import (
    Activate,
    ActivateNeighborsCmd,
    Refresh,
    RefreshRowCmd,
)
from repro.controller.controller import MemoryController, MitigationFactory
from repro.controller.scheduler import (
    DRAMRequestEvent,
    FRFCFSScheduler,
    schedule_system_trace,
)
from repro.controller.timing_model import (
    BankTimer,
    CommandTimingChecker,
    DDR4CommandTiming,
    RankTimer,
)

__all__ = [
    "Activate",
    "ActivateNeighborsCmd",
    "BankTimer",
    "CommandTimingChecker",
    "DDR4CommandTiming",
    "DRAMRequestEvent",
    "FRFCFSScheduler",
    "MemoryController",
    "MitigationFactory",
    "RankTimer",
    "Refresh",
    "RefreshRowCmd",
    "schedule_system_trace",
]
