"""Row-Hammer disturbance model.

This is the abstract charge model behind the 139 K activation threshold
of Kim et al. [12] that the paper (and TWiCe, CRA, PARA, ...) evaluate
against:

* every activation of row ``r`` disturbs its physical neighbours
  ``r - 1`` and ``r + 1`` by one unit;
* refreshing a row -- by the periodic refresh, by a normal activation of
  the row itself, or by a mitigation's ``act_n`` -- restores its charge,
  resetting the disturbance count to zero;
* if a row accumulates ``flip_threshold`` disturbances between two
  restorations, its cells start flipping bits and the attack succeeded.

``distance2_rate`` extends the model beyond the paper with the
second-neighbour coupling later shown by the Half-Double attack
(Google, 2021): each activation also disturbs rows ``r +- 2`` by a
small fraction of a unit.  At 0 (the default, and the paper's model)
the extension is inert; the extension experiments use small positive
values to study how distance-1 mitigations fare when their own
``act_n`` refreshes contribute distance-2 disturbance.

Counters are kept sparsely (dict) because in any realistic trace only a
tiny fraction of rows is ever disturbed between refreshes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.config import DRAMGeometry


@dataclass(frozen=True)
class FlipEvent:
    """A successful Row-Hammer disturbance (bit flips started)."""

    bank: int
    row: int
    #: disturbance count when the threshold was crossed
    count: int
    #: simulation time in nanoseconds, -1 if unknown
    time_ns: int = -1


@dataclass
class BankDisturbance:
    """Disturbance counters for one bank."""

    geometry: DRAMGeometry
    flip_threshold: int
    bank: int = 0
    #: per-activation disturbance of rows at distance 2 (Half-Double
    #: coupling); 0 reproduces the paper's distance-1 model exactly
    distance2_rate: float = 0.0
    _counters: Dict[int, float] = field(default_factory=dict)
    flips: List[FlipEvent] = field(default_factory=list)
    #: running maximum over all rows and all times (attack-margin metric)
    max_disturbance: int = 0

    def on_activation(self, row: int, time_ns: int = -1) -> None:
        """Apply a row activation: restore *row*, disturb its neighbours."""
        self._counters.pop(row, None)
        for victim in self.geometry.neighbors(row):
            self._disturb(victim, 1.0, time_ns)
        if self.distance2_rate > 0.0:
            for victim in self._second_neighbors(row):
                self._disturb(victim, self.distance2_rate, time_ns)

    def refresh_row(self, row: int) -> None:
        """Restore *row* (periodic refresh or mitigation act_n)."""
        self._counters.pop(row, None)

    def activate_neighbors(self, row: int, time_ns: int = -1) -> int:
        """Apply a mitigation ``act_n`` command for aggressor *row*.

        Both neighbours are activated (restoring them), which in turn
        disturbs *their* neighbours -- mitigations are themselves a
        (small) source of disturbance, and the model keeps that effect.
        Returns the number of rows activated (2, or 1 at array edges).
        """
        victims = self.geometry.neighbors(row)
        for victim in victims:
            self.on_activation(victim, time_ns)
        return len(victims)

    def disturbance(self, row: int) -> int:
        """Current disturbance count of *row* (whole units)."""
        return int(self._counters.get(row, 0.0))

    @property
    def tracked_rows(self) -> int:
        return len(self._counters)

    def _second_neighbors(self, row: int):
        """Rows two physical slots away (Half-Double coupling)."""
        out = []
        for neighbor in self.geometry.neighbors(row):
            for second in self.geometry.neighbors(neighbor):
                if second != row:
                    out.append(second)
        return out

    def _disturb(self, victim: int, amount: float, time_ns: int) -> None:
        before = self._counters.get(victim, 0.0)
        count = before + amount
        self._counters[victim] = count
        if int(count) > self.max_disturbance:
            self.max_disturbance = int(count)
        if before < self.flip_threshold <= count:
            self.flips.append(
                FlipEvent(
                    bank=self.bank, row=victim, count=int(count),
                    time_ns=time_ns,
                )
            )
