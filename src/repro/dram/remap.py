"""Physically remapped row adjacency (defective-row remapping).

Section II of the paper criticises ProHit and MRLoc for assuming "that
the neighboring rows of a row with address N are the rows with the
addresses N+1 and N-1.  But this is not always true, as defected rows
might be remapped to other rows [13]."  TiVaPRoMi sidesteps the issue
by issuing ``act_n``, which the memory resolves internally ("the
addresses of the two neighbors are not passed directly, because they
depend on the internal mapping of the memory", Section III).

:class:`RemappedGeometry` models a device where pairs of logical row
addresses have swapped physical locations (the vendor mapped a weak
row's address onto a spare and vice versa).  Physical adjacency -- what
disturbance actually follows and what ``act_n`` resolves -- goes
through the swap; the *assumed* N+-1 adjacency that an address-based
mitigation computes (``DRAMGeometry.assumed_neighbors``) does not.

``repro.sim.attacks.remapped_adjacency_experiment`` uses this to show
the paper's point: a templating attacker who knows the physical map can
defeat directed-refresh mitigations outright, while act_n-based ones
are unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.config import DRAMGeometry
from repro.rng import stream


@dataclass(frozen=True)
class RemappedGeometry(DRAMGeometry):
    """Geometry with pairwise logical<->physical row swaps.

    ``swaps`` lists disjoint pairs ``(a, b)``: logical row ``a``
    occupies physical slot ``b`` and vice versa.
    """

    swaps: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        mapping = {}
        for a, b in self.swaps:
            self._check_row(a)
            self._check_row(b)
            if a == b:
                raise ValueError(f"degenerate swap ({a}, {b})")
            if a in mapping or b in mapping:
                raise ValueError(f"row in multiple swaps: ({a}, {b})")
            mapping[a] = b
            mapping[b] = a
        object.__setattr__(self, "_swap", mapping)

    def physical_slot(self, row: int) -> int:
        """Physical slot serving logical *row*."""
        self._check_row(row)
        return self._swap.get(row, row)

    def row_at_slot(self, slot: int) -> int:
        """Logical row stored in physical *slot* (swaps are involutions)."""
        self._check_row(slot)
        return self._swap.get(slot, slot)

    def neighbors(self, row: int) -> tuple:
        """True physical adjacency through the remap."""
        slot = self.physical_slot(row)
        out = []
        if slot > 0:
            out.append(self.row_at_slot(slot - 1))
        if slot < self.rows_per_bank - 1:
            out.append(self.row_at_slot(slot + 1))
        return tuple(out)


def random_remap_geometry(
    base: DRAMGeometry, pairs: int, seed: int = 0
) -> RemappedGeometry:
    """A geometry with *pairs* random disjoint row swaps."""
    rng = stream(seed, "row-remap")
    rows = rng.sample(range(base.rows_per_bank), pairs * 2)
    swaps = tuple(
        (rows[2 * index], rows[2 * index + 1]) for index in range(pairs)
    )
    return RemappedGeometry(
        num_banks=base.num_banks,
        rows_per_bank=base.rows_per_bank,
        rows_per_interval=base.rows_per_interval,
        swaps=swaps,
    )
