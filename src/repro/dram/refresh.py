"""Refresh policies: which rows are restored in each refresh interval.

Section IV of the paper validates TiVaPRoMi against four refresh
policies.  TiVaPRoMi's weight calculation always *assumes* the
sequential mapping ``f_r = r / RowsPI`` (Eq. 1); the policies below let
the device's actual refresh order differ from that assumption so the
robustness experiment can measure the impact:

1. :class:`SequentialRefresh` -- neighbouring addresses, matching the
   assumption exactly;
2. :class:`RemappedRefresh` -- sequential, but a configurable fraction
   of rows is remapped pairwise (modelling defective-row remapping);
3. :class:`RandomRefresh` -- a seeded random permutation of all rows;
4. :class:`CounterMaskRefresh` -- a hardware-style counter whose output
   is XOR-ed with a mask before addressing the row group.

All policies refresh every row exactly once per refresh window; they
differ only in the order.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Sequence

from repro.config import DRAMGeometry
from repro.rng import stream


class RefreshPolicy(ABC):
    """Order in which rows are refreshed within a refresh window."""

    name: str = "abstract"

    def __init__(self, geometry: DRAMGeometry):
        self.geometry = geometry

    @abstractmethod
    def rows_for_interval(self, interval: int) -> Sequence[int]:
        """Rows refreshed during window-relative *interval*."""

    def refresh_slot_of(self, row: int) -> int:
        """Window-relative interval in which this policy refreshes *row*.

        The exact inverse of :meth:`rows_for_interval`; a mitigation
        given this function computes Eq. 1 weights against the device's
        *real* refresh order instead of the sequential assumption.  The
        default derives it by scanning once and caching.
        """
        cache = getattr(self, "_slot_cache", None)
        if cache is None:
            cache = {}
            for interval in range(self.geometry.refint):
                for covered in self.rows_for_interval(interval):
                    cache[covered] = interval
            self._slot_cache = cache
        return cache[row]

    def validate_full_coverage(self) -> bool:
        """Check that one window refreshes every row exactly once."""
        seen: set[int] = set()
        for interval in range(self.geometry.refint):
            for row in self.rows_for_interval(interval):
                if row in seen:
                    return False
                seen.add(row)
        return len(seen) == self.geometry.rows_per_bank


class SequentialRefresh(RefreshPolicy):
    """Interval ``i`` refreshes rows ``[i * RowsPI, (i+1) * RowsPI)``."""

    name = "sequential"

    def rows_for_interval(self, interval: int) -> Sequence[int]:
        return self.geometry.rows_of_interval(interval)


class RemappedRefresh(RefreshPolicy):
    """Sequential order with a few pairwise row remappings.

    Models DRAM vendors remapping defective rows: the refresh engine
    still walks addresses sequentially, but some addresses resolve to a
    different physical row.  ``remap_fraction`` rows (default 1 %) are
    swapped pairwise under a seeded shuffle.
    """

    name = "remapped"

    def __init__(
        self,
        geometry: DRAMGeometry,
        remap_fraction: float = 0.01,
        seed: int = 0,
    ):
        super().__init__(geometry)
        if not 0.0 <= remap_fraction <= 1.0:
            raise ValueError(f"remap_fraction must be in [0, 1]: {remap_fraction}")
        self._map = list(range(geometry.rows_per_bank))
        rng = stream(seed, "remapped-refresh")
        pair_count = int(geometry.rows_per_bank * remap_fraction / 2)
        candidates = rng.sample(range(geometry.rows_per_bank), pair_count * 2)
        for left, right in zip(candidates[0::2], candidates[1::2]):
            self._map[left], self._map[right] = self._map[right], self._map[left]

    def rows_for_interval(self, interval: int) -> Sequence[int]:
        return [self._map[row] for row in self.geometry.rows_of_interval(interval)]


class RandomRefresh(RefreshPolicy):
    """A seeded random permutation of all rows, split into intervals."""

    name = "random"

    def __init__(self, geometry: DRAMGeometry, seed: int = 0):
        super().__init__(geometry)
        rng = stream(seed, "random-refresh")
        self._order = list(range(geometry.rows_per_bank))
        rng.shuffle(self._order)

    def rows_for_interval(self, interval: int) -> Sequence[int]:
        width = self.geometry.rows_per_interval
        start = interval * width
        if not 0 <= interval < self.geometry.refint:
            raise ValueError(f"interval {interval} outside [0, {self.geometry.refint})")
        return self._order[start : start + width]


class CounterMaskRefresh(RefreshPolicy):
    """Counter-based refresh address generation with an XOR mask.

    Interval ``i`` refreshes the row group whose index is ``i XOR mask``
    (mask confined to the interval-index width), which is how low-cost
    refresh engines decorrelate the refresh order from the address
    order without storing a permutation.
    """

    name = "counter-mask"

    def __init__(self, geometry: DRAMGeometry, mask: int = 0b1010):
        super().__init__(geometry)
        self.mask = mask % geometry.refint

    def rows_for_interval(self, interval: int) -> Sequence[int]:
        if not 0 <= interval < self.geometry.refint:
            raise ValueError(f"interval {interval} outside [0, {self.geometry.refint})")
        group = interval ^ self.mask
        if group >= self.geometry.refint:  # mask pushed past the end: fold back
            group = interval
        return self.geometry.rows_of_interval(group)


@dataclass(frozen=True)
class AlertEvent:
    """One device->controller ALERT_n assertion (PRAC / DDR5 ABO).

    ``row`` is the aggressor whose per-row activation counter crossed
    the back-off threshold; ``subarray`` locates its counter bank so
    PRACtical-style recovery can be isolated per subarray.
    """

    bank: int
    subarray: int
    row: int
    interval: int


class RecoveryChannel:
    """FIFO back-off channel from the DRAM device to the controller.

    PRAC-family mitigations queue :class:`AlertEvent`s here when an
    in-DRAM activation counter crosses its threshold; the mitigation
    drains the queue into recovery refreshes either immediately (PRAC)
    or batched at the next refresh tick (PRACtical's bank-level
    recovery isolation).  The channel keeps occupancy statistics so the
    ALERT storm a wave attack provokes is observable.
    """

    def __init__(self) -> None:
        self._pending: Deque[AlertEvent] = deque()
        self.alerts_raised = 0
        self.max_depth = 0

    def __len__(self) -> int:
        return len(self._pending)

    def raise_alert(self, bank: int, subarray: int, row: int, interval: int) -> None:
        self._pending.append(AlertEvent(bank, subarray, row, interval))
        self.alerts_raised += 1
        if len(self._pending) > self.max_depth:
            self.max_depth = len(self._pending)

    def drain(self) -> List[AlertEvent]:
        """Pop every pending alert in raise order."""
        events = list(self._pending)
        self._pending.clear()
        return events

    def drain_by_subarray(self) -> Dict[int, List[AlertEvent]]:
        """Pop all alerts grouped per subarray, groups in first-alert order."""
        grouped: Dict[int, List[AlertEvent]] = {}
        for event in self.drain():
            grouped.setdefault(event.subarray, []).append(event)
        return grouped


def all_policies(geometry: DRAMGeometry, seed: int = 0) -> List[RefreshPolicy]:
    """The four policies of the Section IV robustness experiment."""
    return [
        SequentialRefresh(geometry),
        RemappedRefresh(geometry, seed=seed),
        RandomRefresh(geometry, seed=seed),
        CounterMaskRefresh(geometry),
    ]
