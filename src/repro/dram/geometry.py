"""Address geometry helpers for the simulated DRAM device.

The core :class:`~repro.config.DRAMGeometry` dataclass lives in
:mod:`repro.config` because every subsystem needs it; this module
re-exports it and adds the physical-address <-> (bank, row) mapping used
by the trace tooling.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Dict, List

from repro.config import DRAMGeometry

__all__ = ["DRAMGeometry", "AddressMapper", "subarray_slices", "subarray_histogram"]


def subarray_slices(geometry: DRAMGeometry) -> List[range]:
    """Row ranges of each sense-amp subarray, in subarray order."""
    return [
        geometry.subarray_rows(subarray)
        for subarray in range(geometry.subarrays_per_bank)
    ]


def subarray_histogram(geometry: DRAMGeometry, rows) -> Dict[int, int]:
    """Count how many of *rows* land in each subarray (sparse; sorted keys)."""
    counts: Dict[int, int] = {}
    for row in rows:
        subarray = geometry.subarray_of(row)
        counts[subarray] = counts.get(subarray, 0) + 1
    return dict(sorted(counts.items()))


@dataclass(frozen=True)
class AddressMapper:
    """Map flat physical row indices onto (bank, row) coordinates.

    Uses bank interleaving (bank bits below row bits), which is how
    DDR4 controllers stripe consecutive cache lines across banks; the
    mitigation techniques never see flat addresses, only the decoded
    (bank, row) pair carried by each ``act`` command.
    """

    geometry: DRAMGeometry

    @property
    def capacity_rows(self) -> int:
        return self.geometry.num_banks * self.geometry.rows_per_bank

    def decode(self, flat_index: int) -> tuple[int, int]:
        """Decode a flat row index into ``(bank, row)``."""
        if not 0 <= flat_index < self.capacity_rows:
            raise ValueError(
                f"flat index {flat_index} outside [0, {self.capacity_rows})"
            )
        bank = flat_index % self.geometry.num_banks
        row = flat_index // self.geometry.num_banks
        return bank, row

    def encode(self, bank: int, row: int) -> int:
        """Inverse of :meth:`decode`."""
        if not 0 <= bank < self.geometry.num_banks:
            raise ValueError(f"bank {bank} outside [0, {self.geometry.num_banks})")
        self.geometry._check_row(row)
        return row * self.geometry.num_banks + bank
