"""Per-bank DRAM state.

A :class:`Bank` bundles the disturbance counters with simple open-row
bookkeeping and activity statistics.  Mitigation techniques never touch
this object -- they only observe the command stream -- so the bank is
the ground truth against which attack success and mitigation efficacy
are judged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.config import DRAMGeometry
from repro.dram.disturbance import BankDisturbance


@dataclass
class Bank:
    geometry: DRAMGeometry
    flip_threshold: int
    index: int = 0
    distance2_rate: float = 0.0
    open_row: int = -1
    activations: int = 0
    extra_activations: int = 0
    refreshes: int = 0
    disturbance: BankDisturbance = field(init=False)
    #: normal activations landing in each sense-amp subarray; a single
    #: entry when the geometry keeps the paper's flat-bank model
    subarray_activations: List[int] = field(init=False)

    def __post_init__(self) -> None:
        self.disturbance = BankDisturbance(
            geometry=self.geometry,
            flip_threshold=self.flip_threshold,
            bank=self.index,
            distance2_rate=self.distance2_rate,
        )
        self.subarray_activations = [0] * self.geometry.subarrays_per_bank

    def activate(self, row: int, time_ns: int = -1) -> None:
        """A normal activation issued by the memory controller."""
        self.geometry._check_row(row)
        self.open_row = row
        self.activations += 1
        self.subarray_activations[row // self.geometry.rows_per_subarray] += 1
        self.disturbance.on_activation(row, time_ns)

    def activate_neighbors(self, row: int, time_ns: int = -1) -> int:
        """A mitigation ``act_n``: activate both neighbours of *row*.

        Returns the number of extra activations performed (2, or 1 at
        the array edge); these count toward the activation overhead.
        """
        performed = self.disturbance.activate_neighbors(row, time_ns)
        self.extra_activations += performed
        return performed

    def refresh_rows(self, rows) -> None:
        """Periodic refresh restoring the given rows."""
        for row in rows:
            self.disturbance.refresh_row(row)
        self.refreshes += 1

    @property
    def flips(self):
        return self.disturbance.flips

    @property
    def max_disturbance(self) -> int:
        return self.disturbance.max_disturbance
