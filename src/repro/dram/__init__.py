"""DRAM device substrate: geometry, disturbance model, refresh, banks."""

from repro.dram.bank import Bank
from repro.dram.device import DRAMDevice
from repro.dram.disturbance import BankDisturbance, FlipEvent
from repro.dram.geometry import AddressMapper, DRAMGeometry
from repro.dram.remap import RemappedGeometry, random_remap_geometry
from repro.dram.refresh import (
    CounterMaskRefresh,
    RandomRefresh,
    RefreshPolicy,
    RemappedRefresh,
    SequentialRefresh,
    all_policies,
)

__all__ = [
    "AddressMapper",
    "Bank",
    "BankDisturbance",
    "CounterMaskRefresh",
    "DRAMDevice",
    "DRAMGeometry",
    "FlipEvent",
    "RandomRefresh",
    "RemappedGeometry",
    "RefreshPolicy",
    "RemappedRefresh",
    "SequentialRefresh",
    "all_policies",
    "random_remap_geometry",
]
