"""Multi-bank DRAM device facade.

The device advances through refresh intervals under a configurable
:class:`~repro.dram.refresh.RefreshPolicy` and exposes the three
operations the rest of the simulator needs: normal activation, the
mitigation's ``act_n``, and the per-interval refresh tick.

DDR4 issues all-bank refresh commands, so one tick restores the same
window-relative row group in every bank.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.config import SimConfig
from repro.dram.bank import Bank
from repro.dram.disturbance import FlipEvent
from repro.dram.refresh import RefreshPolicy, SequentialRefresh


@dataclass
class DRAMDevice:
    config: SimConfig
    refresh_policy: Optional[RefreshPolicy] = None
    banks: List[Bank] = field(default_factory=list)
    #: index of the refresh interval currently in progress (never
    #: wraps); -1 until the first :meth:`refresh_tick`
    interval: int = -1

    def __post_init__(self) -> None:
        geometry = self.config.geometry
        if self.refresh_policy is None:
            self.refresh_policy = SequentialRefresh(geometry)
        if self.refresh_policy.geometry is not geometry:
            raise ValueError("refresh policy geometry differs from device geometry")
        self.banks = [
            Bank(
                geometry=geometry,
                flip_threshold=self.config.flip_threshold,
                index=index,
                distance2_rate=self.config.distance2_rate,
            )
            for index in range(geometry.num_banks)
        ]

    @property
    def window_interval(self) -> int:
        """Interval index within the current refresh window (``i`` in Eq. 1)."""
        return self.interval % self.config.geometry.refint

    @property
    def window(self) -> int:
        """Index of the current refresh window."""
        return self.interval // self.config.geometry.refint

    def activate(self, bank: int, row: int, time_ns: int = -1) -> None:
        self.banks[bank].activate(row, time_ns)

    def activate_neighbors(self, bank: int, row: int, time_ns: int = -1) -> int:
        return self.banks[bank].activate_neighbors(row, time_ns)

    def refresh_tick(self) -> None:
        """Enter the next refresh interval and run its refresh.

        Each interval begins with its ``ref`` command: the interval
        counter advances, then the new interval's row group (per the
        policy) is restored in every bank.
        """
        self.interval += 1
        rows = self.refresh_policy.rows_for_interval(self.window_interval)
        for bank in self.banks:
            bank.refresh_rows(rows)

    @property
    def flips(self) -> List[FlipEvent]:
        events: List[FlipEvent] = []
        for bank in self.banks:
            events.extend(bank.flips)
        return events

    @property
    def total_activations(self) -> int:
        return sum(bank.activations for bank in self.banks)

    @property
    def total_extra_activations(self) -> int:
        return sum(bank.extra_activations for bank in self.banks)

    @property
    def max_disturbance(self) -> int:
        return max(bank.max_disturbance for bank in self.banks)
