"""Pareto frontier of discovered attack patterns per technique.

Two axes matter to an adversary sizing an attack against a mitigation:
how long the pattern survives before the mitigation first fires
(*fitness*, maximise) and how many activations per refresh window the
pattern costs to mount (*budget*, minimise).  The frontier keeps every
candidate not dominated on both axes, in a canonical order, so its JSON
serialisation is bit-identical across reruns and kill/resume cycles --
that file is the contract the determinism tests pin.

This intentionally does not reuse :mod:`repro.analysis.pareto` (which
minimises both axes for the protection/overhead trade-off); the
adversary frontier mixes a maximised and a minimised axis.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

#: bump when the frontier JSON layout changes incompatibly
FRONTIER_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class FrontierPoint:
    """One non-dominated pattern: its genome plus measured objectives."""

    genome: Dict[str, Any]
    name: str
    acts_per_window: int
    fitness: float
    escape_rate: float
    generation: int

    def dominates(self, other: "FrontierPoint") -> bool:
        """Pareto dominance: no worse on both axes, better on one."""
        if self.fitness < other.fitness:
            return False
        if self.acts_per_window > other.acts_per_window:
            return False
        return (self.fitness > other.fitness
                or self.acts_per_window < other.acts_per_window)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "genome": self.genome,
            "name": self.name,
            "acts_per_window": self.acts_per_window,
            "fitness": self.fitness,
            "escape_rate": self.escape_rate,
            "generation": self.generation,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FrontierPoint":
        return cls(
            genome=dict(data["genome"]),
            name=str(data["name"]),
            acts_per_window=int(data["acts_per_window"]),
            fitness=float(data["fitness"]),
            escape_rate=float(data["escape_rate"]),
            generation=int(data["generation"]),
        )


def _genome_key(point: FrontierPoint) -> str:
    """Identity key mirroring :meth:`PatternGenome.key` (name excluded)."""
    payload = {k: v for k, v in point.genome.items()
               if k not in ("name", "schema_version")}
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class AdversaryFrontier:
    """Mutable frontier accumulator with canonical serialisation."""

    def __init__(
        self,
        technique: str,
        points: Optional[Iterable[FrontierPoint]] = None,
    ) -> None:
        self.technique = technique
        self.points: List[FrontierPoint] = list(points or [])

    def update(self, candidates: Iterable[FrontierPoint]) -> None:
        """Fold *candidates* in and re-derive the non-dominated set.

        Deterministic regardless of insertion order: among points that
        tie on both axes, the lexicographically smallest genome key
        survives.
        """
        pool = self.points + list(candidates)
        # canonical processing order so ties resolve identically
        pool.sort(key=lambda p: (p.acts_per_window, -p.fitness, _genome_key(p)))
        kept: List[FrontierPoint] = []
        seen_keys = set()
        for point in pool:
            key = _genome_key(point)
            if key in seen_keys:
                continue
            if any(other.dominates(point) for other in kept):
                continue
            if any(other.fitness == point.fitness
                   and other.acts_per_window == point.acts_per_window
                   for other in kept):
                continue
            kept = [other for other in kept if not point.dominates(other)]
            kept.append(point)
            seen_keys.add(key)
        kept.sort(key=lambda p: (p.acts_per_window, -p.fitness, _genome_key(p)))
        self.points = kept

    @property
    def best(self) -> Optional[FrontierPoint]:
        """Highest-fitness point (the worst case for the mitigation)."""
        if not self.points:
            return None
        return max(self.points,
                   key=lambda p: (p.fitness, -p.acts_per_window))

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": FRONTIER_SCHEMA_VERSION,
            "technique": self.technique,
            "points": [point.as_dict() for point in self.points],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AdversaryFrontier":
        return cls(
            technique=str(data["technique"]),
            points=[FrontierPoint.from_dict(p) for p in data["points"]],
        )

    def to_json(self) -> str:
        """Canonical JSON -- the artifact the determinism tests compare."""
        return json.dumps(self.as_dict(), sort_keys=True, indent=2) + "\n"
