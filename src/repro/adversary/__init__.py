"""Adversarial pattern synthesis: a deterministic red-team fuzzer.

Searches the :class:`~repro.adversary.genome.PatternGenome` space for
worst-case Row-Hammer access patterns against each mitigation, using
the same trace mixer and simulation engines as every other experiment.
See ``docs/adversary.md`` for the genome schema, search strategies,
resume semantics, and the LiPRoMi weight-aware-flooding rediscovery.

Public surface:

* :func:`run_search` / :class:`SearchSettings` /
  :class:`SearchOutcome` -- the search itself;
* :class:`PatternGenome` / :class:`AggressorGene` /
  :func:`seed_corpus` -- the search space;
* :class:`AdversaryFrontier` / :class:`FrontierPoint` -- the Pareto
  frontier of (fitness, activation budget);
* :class:`SearchStore` / :class:`SearchSpec` -- generation-level
  checkpoint/resume persistence.
"""

from repro.adversary.frontier import AdversaryFrontier, FrontierPoint
from repro.adversary.genome import AggressorGene, PatternGenome, seed_corpus
from repro.adversary.mutate import (
    OPERATOR_NAMES,
    crossover,
    mutate,
    random_genome,
)
from repro.adversary.search import (
    STRATEGIES,
    Candidate,
    EvalJob,
    SearchOutcome,
    SearchSettings,
    evaluate_genome,
    run_search,
    select,
)
from repro.adversary.store import SearchSpec, SearchStore

__all__ = [
    "AdversaryFrontier",
    "AggressorGene",
    "Candidate",
    "EvalJob",
    "FrontierPoint",
    "OPERATOR_NAMES",
    "PatternGenome",
    "STRATEGIES",
    "SearchOutcome",
    "SearchSettings",
    "SearchSpec",
    "SearchStore",
    "crossover",
    "evaluate_genome",
    "mutate",
    "random_genome",
    "run_search",
    "seed_corpus",
    "select",
]
