"""Declarative pattern genome: the search space of the red-team fuzzer.

A :class:`PatternGenome` is a compact, mutable-by-operators description
of a parameterised Row-Hammer access pattern: a set of aggressor genes
(row, per-interval intensity, start jitter), an optional decoy block
that sprays activations over many rows to thrash trackers, a global
``phase`` (the window-relative interval the attack begins at -- the
weight-alignment knob a refresh-mapping-aware adversary turns), and a
burst/idle duty cycle.

Genomes *compile down* to the existing :class:`~repro.traces.attacker.
AttackSpec` machinery, so a candidate is evaluated by exactly the same
trace mixer and simulation engines as the canned Section IV attacks --
the fuzzer searches over inputs, never over a second implementation.

Everything here is a pure value: genomes are frozen, hashable by their
canonical :meth:`~PatternGenome.key`, and round-trip through JSON
(:meth:`~PatternGenome.as_dict` / :meth:`~PatternGenome.from_dict`) so
search generations can be checkpointed and resumed bit-identically.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.config import SimConfig
from repro.traces.attacker import AttackSpec

#: bump when the genome JSON layout changes incompatibly
GENOME_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class AggressorGene:
    """One aggressor row and how hard / when it hammers.

    ``offset`` jitters this gene's start relative to the genome's
    global ``phase`` (an adversary staggering its threads).
    """

    row: int
    intensity: int
    offset: int = 0

    def __post_init__(self) -> None:
        if self.row < 0:
            raise ValueError(f"aggressor row {self.row} is negative")
        if self.intensity < 1:
            raise ValueError(f"intensity must be positive: {self.intensity}")
        if self.offset < 0:
            raise ValueError(f"offset must be non-negative: {self.offset}")

    def as_dict(self) -> Dict[str, int]:
        return {"row": self.row, "intensity": self.intensity,
                "offset": self.offset}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AggressorGene":
        return cls(row=int(data["row"]), intensity=int(data["intensity"]),
                   offset=int(data.get("offset", 0)))


@dataclass(frozen=True)
class PatternGenome:
    """A parameterised access pattern against one bank.

    * ``aggressors`` -- the hammering genes (at least one);
    * ``phase`` -- window-relative interval the attack begins at.  For
      the TiVaPRoMi variants this is the weight knob: starting at a
      row's own refresh slot ``f_r`` makes its Eq. 1 weight (and so its
      trigger probability) start from zero;
    * ``burst``/``idle`` -- duty cycle in intervals (``burst = 0``
      hammers continuously);
    * ``decoy_*`` -- a round-robin spray over ``decoy_count`` rows at
      ``decoy_rate`` activations per interval, burning tracker state
      the way the Section II tree-saturation attack does.
    """

    aggressors: Tuple[AggressorGene, ...]
    bank: int = 0
    phase: int = 0
    burst: int = 0
    idle: int = 0
    decoy_count: int = 0
    decoy_first_row: int = 0
    decoy_spacing: int = 4
    decoy_rate: int = 0
    name: str = "genome"

    def __post_init__(self) -> None:
        if not self.aggressors:
            raise ValueError("a genome needs at least one aggressor gene")
        if self.bank < 0:
            raise ValueError(f"bank must be non-negative: {self.bank}")
        if self.phase < 0:
            raise ValueError(f"phase must be non-negative: {self.phase}")
        if self.burst < 0 or self.idle < 0:
            raise ValueError("burst/idle must be non-negative")
        if self.idle > 0 and self.burst == 0:
            raise ValueError("idle without burst never activates")
        if self.decoy_count < 0 or self.decoy_rate < 0:
            raise ValueError("decoy fields must be non-negative")
        if self.decoy_count > 0 and self.decoy_rate < 1:
            raise ValueError("decoys need a positive decoy_rate")
        if self.decoy_count > 0 and self.decoy_spacing < 1:
            raise ValueError("decoy_spacing must be positive")
        if self.decoy_first_row < 0:
            raise ValueError("decoy_first_row must be non-negative")

    # -- identity -----------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": GENOME_SCHEMA_VERSION,
            "aggressors": [gene.as_dict() for gene in self.aggressors],
            "bank": self.bank,
            "phase": self.phase,
            "burst": self.burst,
            "idle": self.idle,
            "decoy_count": self.decoy_count,
            "decoy_first_row": self.decoy_first_row,
            "decoy_spacing": self.decoy_spacing,
            "decoy_rate": self.decoy_rate,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PatternGenome":
        return cls(
            aggressors=tuple(
                AggressorGene.from_dict(gene) for gene in data["aggressors"]
            ),
            bank=int(data.get("bank", 0)),
            phase=int(data.get("phase", 0)),
            burst=int(data.get("burst", 0)),
            idle=int(data.get("idle", 0)),
            decoy_count=int(data.get("decoy_count", 0)),
            decoy_first_row=int(data.get("decoy_first_row", 0)),
            decoy_spacing=int(data.get("decoy_spacing", 4)),
            decoy_rate=int(data.get("decoy_rate", 0)),
            name=str(data.get("name", "genome")),
        )

    def key(self) -> str:
        """Canonical identity: every field except the display name.

        Two genomes with the same key produce byte-identical traces, so
        the search layer dedups and tie-breaks on this string.
        """
        payload = self.as_dict()
        del payload["name"]
        del payload["schema_version"]
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        """Short stable hash of :meth:`key` (display names, filenames)."""
        return hashlib.sha256(self.key().encode("utf-8")).hexdigest()[:8]

    def renamed(self, label: str) -> "PatternGenome":
        """Copy with a lineage label of the form ``label.digest``."""
        renamed = replace(self, name="pending")
        return replace(renamed, name=f"{label}.{renamed.digest()}")

    # -- compilation --------------------------------------------------

    def _spans(
        self, start: int, total_intervals: int
    ) -> List[Tuple[int, Optional[int]]]:
        """Active ``[start, end)`` interval spans under the duty cycle."""
        if start >= total_intervals:
            return []
        if self.burst == 0:
            return [(start, None)]
        spans: List[Tuple[int, Optional[int]]] = []
        period = self.burst + self.idle
        position = start
        while position < total_intervals:
            spans.append((position, min(position + self.burst, total_intervals)))
            position += period
        return spans

    def compile(self, config: SimConfig, total_intervals: int) -> List[AttackSpec]:
        """Lower the genome to :class:`AttackSpec` values.

        Row-range validation happens here (every spec carries
        ``rows_per_bank``), so an out-of-range mutation fails loudly at
        compile time, never inside the engine.
        """
        geometry = config.geometry
        if not 0 <= self.bank < geometry.num_banks:
            raise ValueError(f"bank {self.bank} outside device")
        specs: List[AttackSpec] = []
        for index, gene in enumerate(self.aggressors):
            for start, end in self._spans(
                self.phase + gene.offset, total_intervals
            ):
                specs.append(
                    AttackSpec(
                        bank=self.bank,
                        aggressors=(gene.row,),
                        acts_per_interval=gene.intensity,
                        start_interval=start,
                        end_interval=end,
                        name=f"{self.name}/g{index}@{gene.row}",
                        rows_per_bank=geometry.rows_per_bank,
                    )
                )
        if self.decoy_count > 0 and self.phase < total_intervals:
            rows = tuple(
                self.decoy_first_row + index * self.decoy_spacing
                for index in range(self.decoy_count)
            )
            specs.append(
                AttackSpec(
                    bank=self.bank,
                    aggressors=rows,
                    acts_per_interval=self.decoy_rate,
                    start_interval=self.phase,
                    name=f"{self.name}/decoys",
                    rows_per_bank=geometry.rows_per_bank,
                )
            )
        return specs

    def active_in(self, interval: int, gene: AggressorGene) -> bool:
        """Is *gene* hammering during window-relative *interval*?"""
        start = self.phase + gene.offset
        if interval < start:
            return False
        if self.burst == 0:
            return True
        return (interval - start) % (self.burst + self.idle) < self.burst

    def acts_per_window(self, config: SimConfig) -> int:
        """Attacker activation budget over one refresh window.

        The cost axis of the Pareto frontier: how many activations the
        pattern *plans* to spend per window (the physical per-interval
        cap may clip the realised count; the planned budget is what an
        adversary provisioning an attack compares).
        """
        refint = config.geometry.refint
        total = 0
        for gene in self.aggressors:
            total += gene.intensity * sum(
                1 for interval in range(refint) if self.active_in(interval, gene)
            )
        if self.decoy_count > 0 and self.phase < refint:
            total += self.decoy_rate * (refint - self.phase)
        return total

    def dominant_gene(self) -> AggressorGene:
        """The highest-intensity gene (ties: lowest row)."""
        return max(self.aggressors, key=lambda g: (g.intensity, -g.row))


def seed_corpus(config: SimConfig, bank: int = 0) -> List[PatternGenome]:
    """The canned Section IV attacks, as genomes.

    These seed every search so (a) the fuzzer starts from the
    literature's best known patterns and (b) the reported improvement
    is always *relative to the canned attacks* -- rediscovering a
    documented weakness means beating all of these.
    """
    geometry = config.geometry
    rows = geometry.rows_per_bank
    max_acts = config.timing.max_acts_per_interval
    mid = rows // 2
    corpus = [
        PatternGenome(
            aggressors=(AggressorGene(row=mid, intensity=max_acts),),
            bank=bank,
            name="seed:flooding",
        ),
        PatternGenome(
            aggressors=(
                AggressorGene(row=mid - 1, intensity=max_acts // 2),
                AggressorGene(row=mid + 1, intensity=max_acts // 2),
            ),
            bank=bank,
            name="seed:double-sided",
        ),
        PatternGenome(
            aggressors=tuple(
                AggressorGene(row=rows // 4 + 4 * index,
                              intensity=max(1, max_acts // 8))
                for index in range(8)
            ),
            bank=bank,
            name="seed:8-aggressor",
        ),
        PatternGenome(
            aggressors=(AggressorGene(row=mid, intensity=max_acts),),
            bank=bank,
            burst=4,
            idle=4,
            name="seed:burst-flood",
        ),
        PatternGenome(
            aggressors=(AggressorGene(row=mid, intensity=max_acts // 2),),
            bank=bank,
            decoy_count=min(16, rows // 8),
            decoy_first_row=rows // 8,
            decoy_spacing=4,
            decoy_rate=max(1, max_acts // 16),
            name="seed:decoy-saturation",
        ),
    ]
    return corpus
