"""Deterministic red-team search for worst-case attack patterns.

Two strategies over the :mod:`repro.adversary.genome` space:

* ``random`` -- unbiased genome draws each generation (baseline /
  smoke-test strategy);
* ``evolve`` -- a (mu + lambda) evolutionary strategy: keep the
  ``population`` fittest candidates ever seen, breed ``offspring``
  children per generation by weighted mutation and crossover
  (:mod:`repro.adversary.mutate`), always starting from the canned
  seed corpus.

Fitness is what the paper's Section IV tables measure from the defence
side, flipped to the attacker's view: the number of activations the
pattern lands before the mitigation first fires (escaped runs score
their full activation count).  Candidates are evaluated on pure-attack
traces through the standard engines (fast by default) with
``stop_after_first_trigger``, fanned over a process pool via
:func:`repro.sim.parallel.parallel_map`.

Determinism is structural, not incidental:

* every generation's proposals come from a fresh
  ``stream(seed, "adversary", strategy, generation)`` RNG, so no RNG
  state survives a generation boundary;
* selection, frontier updates and tie-breaks are pure functions of the
  candidate records, ordered by canonical genome keys;
* generations checkpoint atomically through
  :class:`repro.adversary.store.SearchStore`, and a resumed search
  replays stored generations before evaluating anything new --

so the same seed and budget produce a bit-identical frontier whether
the search ran once, was killed and resumed, or ran with a different
worker count.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from statistics import fmean
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.adversary.frontier import AdversaryFrontier, FrontierPoint
from repro.adversary.genome import PatternGenome, seed_corpus
from repro.adversary.mutate import crossover, mutate, random_genome
from repro.adversary.store import SearchSpec, SearchStore
from repro.campaign.store import CampaignStateError
from repro.config import SimConfig
from repro.mitigations.registry import make_factory, resolve_technique
from repro.rng import derive_seed, stream
from repro.sim.engine import ENGINE_NAMES, get_engine
from repro.sim.parallel import parallel_map
from repro.telemetry.progress import ProgressDispatcher
from repro.telemetry.spans import span_of
from repro.traces.mixer import build_trace

STRATEGIES = ("random", "evolve")

#: probability that an evolve-strategy child is bred by crossover
#: (followed by mutation) rather than by mutation alone
CROSSOVER_RATE = 0.25

#: proposal retries before accepting an already-evaluated duplicate
DEDUP_RETRIES = 4


@dataclass(frozen=True)
class SearchSettings:
    """Knobs of one adversary search (everything that defines it)."""

    technique: str
    strategy: str = "evolve"
    budget: int = 64
    population: int = 4
    offspring: int = 8
    eval_seeds: int = 2
    windows: int = 2
    engine: str = "fast"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; choose from {STRATEGIES}"
            )
        if self.engine not in ENGINE_NAMES:
            raise ValueError(
                f"unknown engine {self.engine!r}; choose from {ENGINE_NAMES}"
            )
        for name in ("budget", "population", "offspring", "eval_seeds",
                     "windows"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be at least 1")


@dataclass(frozen=True)
class EvalJob:
    """One candidate's evaluation unit (picklable for the pool)."""

    config: SimConfig
    technique: str
    genome: PatternGenome
    total_intervals: int
    seeds: Tuple[int, ...]
    engine: str


def evaluate_genome(job: EvalJob) -> Dict[str, Any]:
    """Measure one genome against its technique over the eval seeds.

    Module-level so :func:`repro.sim.parallel.parallel_map` can ship it
    to worker processes.  The trace seed is derived from the eval seed
    *and* the genome key, so distinct genomes never share mixing noise
    while reruns of the same genome are reproducible.

    ``engine="fused"`` switches to the many-seeds-per-genome grid
    evaluation (see :func:`_evaluate_genome_fused`).
    """
    if job.engine == "fused":
        return _evaluate_genome_fused(job)
    run = get_engine(job.engine)
    factory = make_factory(job.technique)
    acts_to_trigger: List[Optional[int]] = []
    total_acts: List[int] = []
    for eval_seed in job.seeds:
        trace = build_trace(
            job.config,
            job.total_intervals,
            benign_params=None,
            attacks=job.genome.compile(job.config, job.total_intervals),
            seed=derive_seed(eval_seed, "adversary-trace", job.genome.key()),
        )
        result = run(
            job.config,
            trace,
            factory,
            seed=eval_seed,
            stop_after_first_trigger=True,
        )
        acts_to_trigger.append(result.first_trigger_activation)
        total_acts.append(result.attack_activations)
    return {"acts_to_trigger": acts_to_trigger, "total_acts": total_acts}


def _evaluate_genome_fused(job: EvalJob) -> Dict[str, Any]:
    """Fused evaluation: every eval seed rides one trace replay.

    The fused grid shares one decode across its cells, which requires
    one fixed trace -- so the genome compiles to a single trace (trace
    seed derived from the genome key alone) and the eval seeds vary
    only the mitigation RNG.  That is the fixed-trace comparison
    ``run_campaign(trace_path=...)`` already documents, and the point
    of many-seeds-per-genome: fitness variance measures the defense's
    randomness, not the attack's mixing noise.  Fitness values
    therefore differ from the per-seed-trace engines ("reference",
    "fast") when ``eval_seeds > 1``; a search checkpoint pins its
    engine, so the two modes never mix within one search.
    """
    from repro.sim.fused_engine import GridCell, run_simulation_grid

    trace = build_trace(
        job.config,
        job.total_intervals,
        benign_params=None,
        attacks=job.genome.compile(job.config, job.total_intervals),
        seed=derive_seed(0, "adversary-trace", job.genome.key()),
    )
    cells = [GridCell(technique=job.technique, seed=seed) for seed in job.seeds]
    results = run_simulation_grid(
        job.config, trace, cells, stop_after_first_trigger=True
    )
    return {
        "acts_to_trigger": [
            result.first_trigger_activation for result in results
        ],
        "total_acts": [result.attack_activations for result in results],
    }


@dataclass
class Candidate:
    """An evaluated genome: the unit selection and checkpoints act on."""

    genome: PatternGenome
    generation: int
    #: per eval seed; ``None`` means the pattern escaped the whole horizon
    acts_to_trigger: List[Optional[int]]
    #: per eval seed: attacker activations landed over the horizon
    total_acts: List[int]
    #: planned attacker activations per refresh window (cost axis)
    acts_per_window: int

    @property
    def fitness(self) -> float:
        """Mean activations landed before the mitigation first fires."""
        return fmean(
            float(total if acts is None else acts)
            for acts, total in zip(self.acts_to_trigger, self.total_acts)
        )

    @property
    def escape_rate(self) -> float:
        """Fraction of eval seeds the pattern fully escaped."""
        escaped = sum(1 for acts in self.acts_to_trigger if acts is None)
        return escaped / len(self.acts_to_trigger)

    def frontier_point(self) -> FrontierPoint:
        return FrontierPoint(
            genome=self.genome.as_dict(),
            name=self.genome.name,
            acts_per_window=self.acts_per_window,
            fitness=self.fitness,
            escape_rate=self.escape_rate,
            generation=self.generation,
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "genome": self.genome.as_dict(),
            "generation": self.generation,
            "acts_to_trigger": list(self.acts_to_trigger),
            "total_acts": list(self.total_acts),
            "acts_per_window": self.acts_per_window,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Candidate":
        return cls(
            genome=PatternGenome.from_dict(data["genome"]),
            generation=int(data["generation"]),
            acts_to_trigger=[
                None if acts is None else int(acts)
                for acts in data["acts_to_trigger"]
            ],
            total_acts=[int(total) for total in data["total_acts"]],
            acts_per_window=int(data["acts_per_window"]),
        )


def _rank_key(candidate: Candidate) -> Tuple[float, int, str]:
    """Canonical ranking: fittest first, cheaper first, then key."""
    return (-candidate.fitness, candidate.acts_per_window,
            candidate.genome.key())


def select(candidates: List[Candidate], size: int) -> List[Candidate]:
    """The *size* best candidates in canonical order (pure function)."""
    return sorted(candidates, key=_rank_key)[:size]


@dataclass
class SearchOutcome:
    """Everything a finished (or resumed-and-finished) search reports."""

    technique: str
    strategy: str
    budget: int
    evaluations: int
    generations: int
    population: List[Candidate]
    frontier: AdversaryFrontier
    best: Candidate
    corpus_best: Candidate
    #: best fitness seen so far, one entry per generation
    history: List[float] = field(default_factory=list)

    @property
    def improvement(self) -> float:
        """Best discovered fitness relative to the best canned seed."""
        if self.corpus_best.fitness == 0:
            return float("inf") if self.best.fitness > 0 else 1.0
        return self.best.fitness / self.corpus_best.fitness

    def as_dict(self) -> Dict[str, Any]:
        return {
            "technique": self.technique,
            "strategy": self.strategy,
            "budget": self.budget,
            "evaluations": self.evaluations,
            "generations": self.generations,
            "population": [c.as_dict() for c in self.population],
            "frontier": self.frontier.as_dict(),
            "best": self.best.as_dict(),
            "corpus_best": self.corpus_best.as_dict(),
            "history": list(self.history),
        }


def _dedup_corpus(genomes: List[PatternGenome]) -> List[PatternGenome]:
    seen: Set[str] = set()
    unique = []
    for genome in genomes:
        if genome.key() in seen:
            continue
        seen.add(genome.key())
        unique.append(genome)
    return unique


def _propose(
    generation: int,
    population: List[Candidate],
    seen: Set[str],
    settings: SearchSettings,
    config: SimConfig,
) -> List[PatternGenome]:
    """Deterministic proposals for *generation* (corpus at generation 0)."""
    if generation == 0:
        return _dedup_corpus(seed_corpus(config))
    rng = stream(settings.seed, "adversary", settings.strategy, generation)
    if settings.strategy == "random":
        return [random_genome(rng, config) for _ in range(settings.offspring)]
    proposals: List[PatternGenome] = []
    for _ in range(settings.offspring):
        child = _breed(population, rng, config)
        for _ in range(DEDUP_RETRIES):
            if child.key() not in seen:
                break
            child = _breed(population, rng, config)
        proposals.append(child)
    return proposals


def _breed(
    population: List[Candidate], rng: random.Random, config: SimConfig
) -> PatternGenome:
    if len(population) >= 2 and rng.random() < CROSSOVER_RATE:
        first = rng.randrange(len(population))
        second = rng.randrange(len(population) - 1)
        if second >= first:
            second += 1
        child = crossover(
            population[first].genome, population[second].genome, rng
        )
        return mutate(child, rng, config)
    parent = population[rng.randrange(len(population))]
    return mutate(parent.genome, rng, config)


def run_search(
    config: SimConfig,
    settings: SearchSettings,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    workers: Optional[int] = 0,
    chunk_size: Optional[int] = None,
    metrics=None,
    on_generation: Optional[Callable[[int, List[Candidate]], None]] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    on_event=None,
    spans=None,
) -> SearchOutcome:
    """Run (or resume) an adversary search against one technique.

    * ``checkpoint_dir`` -- checkpoint every evaluated generation there;
      with ``resume=True`` an existing checkpoint (validated against
      this search's spec) is replayed before any new evaluation, making
      the resumed result bit-identical to an uninterrupted run.
    * ``workers`` -- process-pool width for candidate evaluation
      (``0`` evaluates inline; the default, since small searches are
      dominated by engine start-up otherwise).
    * ``on_generation(index, candidates)`` fires after each *newly
      evaluated* generation is checkpointed (not for replayed ones);
      ``progress(evaluations, budget)`` after every generation, and
      ``on_event`` receives the same ticks as unified
      :class:`~repro.telemetry.progress.ProgressEvent` records
      (``kind="adversary"``, ``unit="evaluations"``).
    * ``spans`` -- optional :class:`~repro.telemetry.spans.SpanTracer`:
      the search records a ``search`` root span with one ``generation``
      child per generation (``replayed`` marks checkpoint replays);
      evaluation fan-out spans ship back from pool workers through
      :func:`~repro.sim.parallel.parallel_map`.
    """
    settings = replace(settings, technique=resolve_technique(settings.technique))
    store = SearchStore(checkpoint_dir) if checkpoint_dir else None
    spec = SearchSpec.build(config, settings)
    stored: List[List[Dict[str, Any]]] = []
    if store is not None:
        if store.exists:
            if not resume:
                raise CampaignStateError(
                    f"checkpoint directory {store.root} already holds a "
                    "search; pass resume=True (--resume) to continue it or "
                    "use a fresh directory"
                )
            store.ensure_matches(spec)
            stored = store.load_generations()
        else:
            store.initialize(spec)

    total_intervals = config.geometry.refint * settings.windows
    eval_seeds = tuple(
        derive_seed(settings.seed, "adversary-eval", index)
        for index in range(settings.eval_seeds)
    )

    population: List[Candidate] = []
    frontier = AdversaryFrontier(settings.technique)
    seen: Set[str] = set()
    history: List[float] = []
    all_candidates: List[Candidate] = []
    corpus_candidates: List[Candidate] = []
    evaluations = 0
    generation = 0

    dispatcher = ProgressDispatcher("adversary", unit="evaluations")
    dispatcher.add_legacy(progress)
    dispatcher.add_listener(on_event)
    root_span = (
        spans.start(
            "search", technique=settings.technique,
            strategy=settings.strategy, budget=settings.budget,
        )
        if spans is not None and spans.enabled else None
    )
    try:
        while evaluations < settings.budget:
            replayed = generation < len(stored)
            with span_of(
                spans, "generation", index=generation, replayed=replayed,
            ):
                genomes = _propose(
                    generation, population, seen, settings, config
                )
                genomes = genomes[: settings.budget - evaluations]
                if replayed:
                    candidates = [
                        Candidate.from_dict(data)
                        for data in stored[generation]
                    ]
                else:
                    jobs = [
                        EvalJob(
                            config=config,
                            technique=settings.technique,
                            genome=genome,
                            total_intervals=total_intervals,
                            seeds=eval_seeds,
                            engine=settings.engine,
                        )
                        for genome in genomes
                    ]
                    measured = parallel_map(
                        evaluate_genome, jobs, workers=workers,
                        chunk_size=chunk_size, spans=spans,
                    )
                    candidates = [
                        Candidate(
                            genome=genome,
                            generation=generation,
                            acts_to_trigger=result["acts_to_trigger"],
                            total_acts=result["total_acts"],
                            acts_per_window=genome.acts_per_window(config),
                        )
                        for genome, result in zip(genomes, measured)
                    ]
                    if store is not None:
                        store.write_generation(
                            generation, [c.as_dict() for c in candidates]
                        )
                    if on_generation is not None:
                        on_generation(generation, candidates)
                if generation == 0:
                    corpus_candidates = list(candidates)
                evaluations += len(candidates)
                all_candidates.extend(candidates)
                for candidate in candidates:
                    seen.add(candidate.genome.key())
                frontier.update(c.frontier_point() for c in candidates)
                population = select(
                    population + candidates, settings.population
                )
                history.append(population[0].fitness)
                if metrics is not None:
                    metrics.counter("adversary.evaluations").add(
                        len(candidates)
                    )
                    metrics.counter("adversary.generations").add(1)
            if dispatcher:
                dispatcher.emit(
                    evaluations, settings.budget, generation=generation,
                )
            generation += 1
    finally:
        if root_span is not None:
            spans.finish()

    return SearchOutcome(
        technique=settings.technique,
        strategy=settings.strategy,
        budget=settings.budget,
        evaluations=evaluations,
        generations=generation,
        population=population,
        frontier=frontier,
        best=select(all_candidates, 1)[0],
        corpus_best=select(corpus_candidates, 1)[0],
        history=history,
    )
