"""Seeded, fully deterministic mutation and crossover operators.

Every operator is a pure function ``(genome, rng, config) -> genome``
drawing randomness only from the :class:`random.Random` it is handed
(derived per generation via :func:`repro.rng.stream`), so a search
replays bit-identically from any checkpoint without persisting RNG
state.

The operator set encodes the moves a knowledgeable Row-Hammer adversary
makes: retarget/shift rows, scale intensity, focus fire on one row
(flooding) or fan out across many, stagger threads, duty-cycle to dodge
rate detectors, spray decoys to thrash tracker state -- and, crucially,
``align_phase``: start the attack at the dominant row's own refresh
slot ``f_r`` so its time-varying weight (Eq. 1) begins at zero.  That
last operator is the refresh-mapping-aware move behind LiPRoMi's
weight-aware flooding weakness; the evolutionary search rediscovers the
weakness by finding that this move pays off.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Callable, List, Tuple

from repro.adversary.genome import AggressorGene, PatternGenome
from repro.config import SimConfig

Operator = Callable[[PatternGenome, random.Random, SimConfig], PatternGenome]


def _clamp(value: int, low: int, high: int) -> int:
    return max(low, min(high, value))


def _replace_gene(
    genome: PatternGenome, index: int, gene: AggressorGene
) -> PatternGenome:
    genes = list(genome.aggressors)
    genes[index] = gene
    return replace(genome, aggressors=tuple(genes))


def _pick_gene(genome: PatternGenome, rng: random.Random) -> int:
    return rng.randrange(len(genome.aggressors))


# -- operators --------------------------------------------------------


def jitter_phase(
    genome: PatternGenome, rng: random.Random, config: SimConfig
) -> PatternGenome:
    """Nudge the global start interval (hill-climbs weight alignment)."""
    refint = config.geometry.refint
    delta = rng.randrange(1, max(2, refint // 8)) * rng.choice((-1, 1))
    return replace(genome, phase=(genome.phase + delta) % refint)


def align_phase(
    genome: PatternGenome, rng: random.Random, config: SimConfig
) -> PatternGenome:
    """Start at the dominant row's refresh slot ``f_r``.

    For the TiVaPRoMi linear-weight variants this zeroes the dominant
    row's weight at attack start, minimising its trigger probability
    over the whole window -- the weight-aware flooding move.
    """
    del rng
    slot = genome.dominant_gene().row // config.geometry.rows_per_interval
    return replace(genome, phase=slot % config.geometry.refint)


def shift_row(
    genome: PatternGenome, rng: random.Random, config: SimConfig
) -> PatternGenome:
    """Move one aggressor a short distance (changes its ``f_r``)."""
    rows = config.geometry.rows_per_bank
    index = _pick_gene(genome, rng)
    gene = genome.aggressors[index]
    delta = rng.randrange(1, 9) * rng.choice((-1, 1))
    return _replace_gene(
        genome, index, replace(gene, row=_clamp(gene.row + delta, 0, rows - 1))
    )


def retarget_row(
    genome: PatternGenome, rng: random.Random, config: SimConfig
) -> PatternGenome:
    """Teleport one aggressor anywhere in the bank."""
    index = _pick_gene(genome, rng)
    gene = genome.aggressors[index]
    return _replace_gene(
        genome, index,
        replace(gene, row=rng.randrange(config.geometry.rows_per_bank)),
    )


def scale_intensity(
    genome: PatternGenome, rng: random.Random, config: SimConfig
) -> PatternGenome:
    """Halve or double one gene's activation rate (budget knob)."""
    cap = config.timing.max_acts_per_interval
    index = _pick_gene(genome, rng)
    gene = genome.aggressors[index]
    scaled = gene.intensity * 2 if rng.random() < 0.5 else gene.intensity // 2
    return _replace_gene(
        genome, index, replace(gene, intensity=_clamp(scaled, 1, cap))
    )


def focus_fire(
    genome: PatternGenome, rng: random.Random, config: SimConfig
) -> PatternGenome:
    """Collapse to single-row flooding at the dominant gene's row."""
    del rng
    cap = config.timing.max_acts_per_interval
    total = sum(gene.intensity for gene in genome.aggressors)
    merged = AggressorGene(
        row=genome.dominant_gene().row, intensity=_clamp(total, 1, cap)
    )
    return replace(genome, aggressors=(merged,))


def split_fire(
    genome: PatternGenome, rng: random.Random, config: SimConfig
) -> PatternGenome:
    """Split the dominant gene into a double-sided pair."""
    del rng
    rows = config.geometry.rows_per_bank
    dominant = genome.dominant_gene()
    if dominant.intensity < 2:
        return genome
    half = dominant.intensity // 2
    genes = [gene for gene in genome.aggressors if gene is not dominant]
    genes.append(replace(dominant, row=_clamp(dominant.row - 1, 0, rows - 1),
                         intensity=half))
    genes.append(replace(dominant, row=_clamp(dominant.row + 1, 0, rows - 1),
                         intensity=dominant.intensity - half))
    return replace(genome, aggressors=tuple(genes))


def add_aggressor(
    genome: PatternGenome, rng: random.Random, config: SimConfig
) -> PatternGenome:
    """Open a new front on a random row."""
    cap = config.timing.max_acts_per_interval
    intensity = _clamp(rng.randrange(1, cap + 1) // (len(genome.aggressors) + 1),
                       1, cap)
    gene = AggressorGene(
        row=rng.randrange(config.geometry.rows_per_bank), intensity=intensity
    )
    return replace(genome, aggressors=genome.aggressors + (gene,))


def drop_aggressor(
    genome: PatternGenome, rng: random.Random, config: SimConfig
) -> PatternGenome:
    """Retire one front (no-op on single-gene genomes)."""
    del config
    if len(genome.aggressors) < 2:
        return genome
    index = _pick_gene(genome, rng)
    genes = list(genome.aggressors)
    del genes[index]
    return replace(genome, aggressors=tuple(genes))


def jitter_offset(
    genome: PatternGenome, rng: random.Random, config: SimConfig
) -> PatternGenome:
    """Stagger one gene's start relative to the genome phase."""
    refint = config.geometry.refint
    index = _pick_gene(genome, rng)
    gene = genome.aggressors[index]
    return _replace_gene(
        genome, index,
        replace(gene, offset=rng.randrange(0, max(2, refint // 8))),
    )


def toggle_duty(
    genome: PatternGenome, rng: random.Random, config: SimConfig
) -> PatternGenome:
    """Switch between continuous hammering and burst/idle cycling."""
    refint = config.geometry.refint
    if genome.burst:
        return replace(genome, burst=0, idle=0)
    span = max(2, refint // 8)
    return replace(genome, burst=rng.randrange(1, span),
                   idle=rng.randrange(1, span))


def mutate_decoys(
    genome: PatternGenome, rng: random.Random, config: SimConfig
) -> PatternGenome:
    """Grow, shrink, or drop the tracker-thrashing decoy spray."""
    rows = config.geometry.rows_per_bank
    cap = config.timing.max_acts_per_interval
    count = rng.choice((0, 8, 16, 32))
    count = min(count, rows // 4)
    if count == 0:
        return replace(genome, decoy_count=0, decoy_rate=0)
    return replace(
        genome,
        decoy_count=count,
        decoy_first_row=rng.randrange(rows // 2),
        decoy_spacing=rng.choice((1, 2, 4, 8)),
        decoy_rate=rng.randrange(1, max(2, cap // 8)),
    )


#: (operator, weight) -- weights bias the walk toward the moves that
#: matter for the mitigations under test (phase alignment chief among
#: them) while keeping every direction reachable.
OPERATOR_WEIGHTS: Tuple[Tuple[Operator, int], ...] = (
    (jitter_phase, 3),
    (align_phase, 3),
    (shift_row, 2),
    (retarget_row, 1),
    (scale_intensity, 2),
    (focus_fire, 2),
    (split_fire, 1),
    (add_aggressor, 1),
    (drop_aggressor, 1),
    (jitter_offset, 1),
    (toggle_duty, 1),
    (mutate_decoys, 1),
)

OPERATOR_NAMES: Tuple[str, ...] = tuple(
    op.__name__ for op, _ in OPERATOR_WEIGHTS
)


def mutate(
    genome: PatternGenome, rng: random.Random, config: SimConfig
) -> PatternGenome:
    """Apply one weighted-random operator and relabel the child."""
    operators: List[Operator] = [op for op, _ in OPERATOR_WEIGHTS]
    weights = [weight for _, weight in OPERATOR_WEIGHTS]
    operator = rng.choices(operators, weights=weights, k=1)[0]
    child = operator(genome, rng, config)
    return child.renamed(f"mut:{operator.__name__}")


def crossover(
    first: PatternGenome, second: PatternGenome, rng: random.Random
) -> PatternGenome:
    """Recombine two parents: genes from one, timing/decoys from the other."""
    if rng.random() < 0.5:
        first, second = second, first
    child = replace(
        first,
        phase=second.phase,
        burst=second.burst,
        idle=second.idle,
        decoy_count=second.decoy_count,
        decoy_first_row=second.decoy_first_row,
        decoy_spacing=second.decoy_spacing,
        decoy_rate=second.decoy_rate,
    )
    return child.renamed("cross")


def random_genome(
    rng: random.Random, config: SimConfig, bank: int = 0
) -> PatternGenome:
    """An unbiased draw from the genome space (random-search proposals)."""
    rows = config.geometry.rows_per_bank
    refint = config.geometry.refint
    cap = config.timing.max_acts_per_interval
    count = rng.choice((1, 1, 2, 4, 8))
    genes = tuple(
        AggressorGene(
            row=rng.randrange(rows),
            intensity=_clamp(rng.randrange(1, cap + 1) // count, 1, cap),
        )
        for _ in range(count)
    )
    genome = PatternGenome(
        aggressors=genes,
        bank=bank,
        phase=rng.randrange(refint),
        name="pending",
    )
    if rng.random() < 0.25:
        genome = toggle_duty(genome, rng, config)
    if rng.random() < 0.25:
        genome = mutate_decoys(genome, rng, config)
    return genome.renamed("rand")
