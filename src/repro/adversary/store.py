"""Durable adversary-search state: spec + per-generation checkpoints.

Layout of a search checkpoint directory::

    <checkpoint_dir>/
        adversary.json          # SearchSpec: config + hash, search knobs
        generations/
            gen_00000.json      # evaluated candidates of one generation

The design mirrors :class:`repro.campaign.store.CampaignStore` and
shares its durability primitive
(:func:`repro.campaign.store.write_json_atomic`): every write is atomic,
the *generation* file is the unit of resume, and resuming replays
stored generations in order before evaluating anything new.  Because
each generation's proposals are derived from a per-generation RNG
stream (:func:`repro.rng.stream` seeded by the search seed and the
generation index), a killed-and-resumed search is bit-identical to an
uninterrupted one without ever persisting RNG state.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Tuple

from repro.campaign.store import (
    CampaignStateError,
    CheckpointMismatchError,
    write_json_atomic,
)
from repro.config import SimConfig
from repro.telemetry.manifest import config_as_dict, config_digest

#: bump when the search checkpoint layout changes incompatibly
SEARCH_SCHEMA_VERSION = 1

SPEC_FILENAME = "adversary.json"
GENERATION_DIRNAME = "generations"


@dataclass
class SearchSpec:
    """Everything that identifies one adversary search."""

    config: Dict[str, Any]
    config_hash: str
    technique: str
    strategy: str
    budget: int
    population: int
    offspring: int
    eval_seeds: int
    windows: int
    engine: str
    seed: int
    schema_version: int = SEARCH_SCHEMA_VERSION

    @classmethod
    def build(cls, config: SimConfig, settings: Any) -> "SearchSpec":
        return cls(
            config=config_as_dict(config),
            config_hash=config_digest(config),
            technique=settings.technique,
            strategy=settings.strategy,
            budget=settings.budget,
            population=settings.population,
            offspring=settings.offspring,
            eval_seeds=settings.eval_seeds,
            windows=settings.windows,
            engine=settings.engine,
            seed=settings.seed,
        )

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SearchSpec":
        return cls(**dict(data))

    def mismatches(self, other: "SearchSpec") -> Dict[str, Tuple[Any, Any]]:
        """Fields where *other* (the requested search) differs from self."""
        out: Dict[str, Tuple[Any, Any]] = {}
        for key in (
            "schema_version", "config_hash", "technique", "strategy",
            "budget", "population", "offspring", "eval_seeds", "windows",
            "engine", "seed",
        ):
            mine, theirs = getattr(self, key), getattr(other, key)
            if mine != theirs:
                out[key] = (mine, theirs)
        return out


class SearchStore:
    """Filesystem-backed adversary-search checkpoint."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.generation_dir = self.root / GENERATION_DIRNAME

    @property
    def spec_path(self) -> Path:
        return self.root / SPEC_FILENAME

    @property
    def exists(self) -> bool:
        return self.spec_path.is_file()

    def initialize(self, spec: SearchSpec) -> None:
        self.generation_dir.mkdir(parents=True, exist_ok=True)
        write_json_atomic(self.spec_path, spec.as_dict())

    def read_spec(self) -> SearchSpec:
        if not self.exists:
            raise CampaignStateError(
                f"no adversary checkpoint at {self.root} "
                f"(missing {SPEC_FILENAME})"
            )
        data = json.loads(self.spec_path.read_text(encoding="utf-8"))
        return SearchSpec.from_dict(data)

    def ensure_matches(self, spec: SearchSpec) -> None:
        """Fail fast if the stored search is not *spec*'s search."""
        mismatches = self.read_spec().mismatches(spec)
        if mismatches:
            raise CheckpointMismatchError(mismatches)

    # -- generations ---------------------------------------------------

    def generation_path(self, index: int) -> Path:
        return self.generation_dir / f"gen_{index:05d}.json"

    def write_generation(
        self, index: int, candidates: List[Dict[str, Any]]
    ) -> Path:
        path = self.generation_path(index)
        write_json_atomic(path, {"generation": index,
                                 "candidates": candidates})
        return path

    def load_generations(self) -> List[List[Dict[str, Any]]]:
        """Stored generations 0..k as candidate dicts, stopping at the
        first gap or unreadable file (anything after it is recomputed)."""
        generations: List[List[Dict[str, Any]]] = []
        index = 0
        while True:
            path = self.generation_path(index)
            if not path.is_file():
                break
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                candidates = list(payload["candidates"])
            except (json.JSONDecodeError, KeyError, TypeError):
                break
            generations.append(candidates)
            index += 1
        return generations
