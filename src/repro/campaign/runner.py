"""Durable, crash-safe campaign orchestration.

:func:`run_durable_campaign` wraps :func:`repro.sim.parallel.
run_campaign` with a :class:`~repro.campaign.store.CampaignStore`:
every completed (technique, seed) shard is checkpointed the moment it
lands, and a killed campaign restarted with ``resume=True`` validates
the stored spec (config hash, engine, grid), skips the completed
shards, and re-dispatches only the remainder.

Determinism contract: because each shard is a pure function of
(config, technique, seed, engine) and the final aggregates are rebuilt
from the store in the campaign's canonical shard order, an interrupted
+ resumed campaign returns aggregates **bit-identical** to an
uninterrupted one (``tests/campaign/test_kill_resume.py`` proves this
by SIGKILLing a live campaign).  Metrics keep the same contract: shard
registries are restored from the checkpoints and re-merged, so a
resumed run's manifest matches the uninterrupted run's up to the
documented volatile fields.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence, Tuple

from repro.config import SimConfig
from repro.mitigations.registry import technique_names
from repro.sim.parallel import (
    CampaignResult,
    JobOutcome,
    ProgressCallback,
    RetryPolicy,
    ShardFailure,
    run_campaign,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.progress import ProgressListener
from repro.telemetry.spans import SpanTracer
from repro.telemetry.statusbus import (
    DEFAULT_STALE_AFTER_S,
    CampaignSnapshot,
    StatusBus,
)

from repro.campaign.store import (
    CampaignSpec,
    CampaignStateError,
    CampaignStore,
    ShardRecord,
)

#: orchestration counters recomputed store-wide after every run, so a
#: resumed campaign reports whole-campaign totals, not this process's
_RECOMPUTED_COUNTERS = ("campaign.shards_completed", "campaign.shards_degraded")


def run_durable_campaign(
    config: SimConfig,
    total_intervals: int,
    checkpoint_dir,
    resume: bool = False,
    techniques: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (0, 1, 2),
    include_unmitigated: bool = False,
    workers: Optional[int] = None,
    engine: str = "reference",
    memoize_traces: bool = True,
    chunk_size: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    on_event: Optional[ProgressListener] = None,
    tracer=None,
    metrics: Optional[MetricsRegistry] = None,
    profiler=None,
    spans: Optional[SpanTracer] = None,
    status: Optional[StatusBus] = None,
    publish_status: bool = True,
    stale_after: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
    fault_injector=None,
    sleep: Callable[[float], None] = time.sleep,
    trace_path=None,
    trace_digest: Optional[str] = None,
    executor=None,
    **workload_kwargs,
) -> CampaignResult:
    """Run (or resume) a campaign with per-shard checkpointing.

    Same contract as :func:`repro.sim.parallel.run_campaign` plus:

    * ``checkpoint_dir`` -- directory holding the campaign spec and one
      JSON file per completed shard (see :mod:`repro.campaign.store`).
    * ``resume`` -- continue a checkpoint that already exists.  The
      stored spec must match the requested campaign exactly (config
      hash, engine, grid, workload knobs); any mismatch raises
      :class:`~repro.campaign.store.CheckpointMismatchError` before any
      work is dispatched.  Without ``resume``, an existing checkpoint
      is refused rather than silently overwritten.
    * ``retry`` / ``fault_injector`` -- worker-level fault tolerance
      and its deterministic test hook (see
      :class:`~repro.sim.parallel.RetryPolicy` and
      :mod:`repro.campaign.faults`).

    Shards degraded under ``retry.on_failure == "skip"`` are *not*
    checkpointed as complete: a later ``resume`` retries exactly those
    shards, so a degraded campaign heals incrementally.

    Observability: unless ``publish_status=False``, a
    :class:`~repro.telemetry.statusbus.StatusBus` is created under
    ``<checkpoint_dir>/status`` (or pass ``status`` explicitly) --
    workers publish per-shard heartbeats there and the runner a rolling
    snapshot, which is what ``campaign-status --follow`` reads.
    ``stale_after`` tunes hung-shard detection (defaults to just under
    ``retry.shard_timeout`` when one is set, so staleness surfaces
    before the kill).  ``spans`` receives the campaign span tree:
    shard spans are checkpointed with each shard and re-adopted from
    the store in canonical order, so a resumed campaign's span
    *summary* is bit-identical to an uninterrupted one's.  Neither the
    status directory nor any span/heartbeat state enters the campaign
    spec or its config hash -- toggling observability can never
    invalidate ``--resume``.

    ``trace_path`` replays one pre-serialised npz trace for every shard
    (see :func:`repro.sim.parallel.run_campaign`); pass the trace's
    content digest as ``trace_digest`` so ``resume`` can refuse a
    checkpoint taken against different trace bytes -- the digest is
    folded into the stored spec, never into the worker jobs.

    ``executor`` selects the execution lane (an executor name or a
    configured :class:`~repro.sim.executors.Executor` instance, e.g. a
    :class:`~repro.campaign.queue.QueueExecutor` for a multi-host
    campaign over a shared queue directory).  Every durability
    guarantee above -- per-shard checkpointing, config-hash-validated
    resume, bit-identical rebuilt aggregates, degraded-shard
    accounting -- holds identically for every executor: the shared
    contract suite (``tests/campaign/test_executors.py``) asserts them
    per lane.
    """
    names: List[Optional[str]] = (
        list(techniques) if techniques is not None else technique_names()
    )
    if include_unmitigated:
        names = [None] + names
    spec_kwargs = dict(workload_kwargs)
    if trace_digest is not None:
        spec_kwargs["trace_digest"] = trace_digest
    spec = CampaignSpec.build(
        config,
        engine=engine,
        total_intervals=total_intervals,
        techniques=names,
        seeds=seeds,
        workload_kwargs=spec_kwargs,
    )
    store = CampaignStore(checkpoint_dir)
    if store.exists:
        if not resume:
            raise CampaignStateError(
                f"checkpoint directory {store.root} already holds a "
                "campaign; pass resume=True (--resume) to continue it or "
                "choose a fresh directory"
            )
        store.ensure_matches(spec)
    else:
        store.initialize(spec)
    shards = store.load_shards()
    pending: List[Tuple[Optional[str], int]] = [
        (name, seed)
        for name in names
        for seed in seeds
        if (name or "none", seed) not in shards
    ]
    if status is None and publish_status:
        if stale_after is None:
            # surface staleness before the hung-shard kill would fire
            stale_after = (
                max(1.0, retry.shard_timeout * 0.75)
                if retry is not None and retry.shard_timeout is not None
                else DEFAULT_STALE_AFTER_S
            )
        status = StatusBus.for_checkpoint(store.root, stale_after=stale_after)
    if status is not None:
        # heartbeats of a previous (killed) run must not read as live
        status.clear_workers()
    failures: List[ShardFailure] = []
    if pending:
        # jobs collect into a scratch registry; the caller's registry is
        # rebuilt from the store below so that resumed and uninterrupted
        # campaigns report identical whole-campaign metrics.  The scratch
        # registry is unconditional: shard metrics must land in the
        # checkpoint even when this invocation didn't ask for metrics,
        # or a later resume with a manifest would be missing the
        # counters of every shard completed before the interruption.
        scratch = MetricsRegistry()
        # same reasoning for spans: workers always record and the shard
        # records carry the trees, so a later resume that wants a span
        # summary still covers pre-interruption shards.  The id seed is
        # the config hash: span ids are stable across runs and resumes.
        scratch_spans = SpanTracer(id_seed=spec.config_hash)

        def persist(outcome: JobOutcome, attempts: int) -> None:
            name, seed, result, job_metrics, job_spans = outcome
            store.write_shard(
                ShardRecord(
                    technique=name,
                    seed=seed,
                    result=result,
                    attempts=attempts,
                    metrics=(
                        job_metrics.as_dict()
                        if job_metrics is not None else None
                    ),
                    spans=job_spans,
                )
            )

        result = run_campaign(
            config,
            total_intervals,
            seeds=seeds,
            workers=workers,
            engine=engine,
            memoize_traces=memoize_traces,
            chunk_size=chunk_size,
            progress=progress,
            on_event=on_event,
            tracer=tracer,
            metrics=scratch,
            profiler=profiler,
            spans=scratch_spans,
            status=status,
            # already-checkpointed shards count toward the live view:
            # a resumed campaign reports whole-campaign progress
            status_done_base=len(spec.shard_keys()) - len(pending),
            pairs=pending,
            retry=retry,
            fault_injector=fault_injector,
            shard_callback=persist,
            sleep=sleep,
            trace_path=trace_path,
            executor=executor,
            **workload_kwargs,
        )
        failures = result.failures
        store.write_failures(failures)
        if metrics is not None:
            for name, counter in scratch.counters.items():
                if (
                    name.startswith("campaign.")
                    and name not in _RECOMPUTED_COUNTERS
                ):
                    metrics.counter(name, limit=counter.limit).add(counter.value)
        shards = store.load_shards()
    # canonical rebuild: technique-major, seed-minor, straight from the
    # store -- the order (and therefore every float accumulation) is
    # identical whether or not the campaign was ever interrupted, and
    # which executor ran the shards.  Every pending shard was
    # dispatched, so degrade_missing is correct here: a still-missing
    # shard exhausted its attempts under on_failure="skip".
    aggregates = store.partial_aggregates(degrade_missing=True)
    aggregates.failures = failures
    if metrics is not None:
        for key in spec.shard_keys():
            record = shards.get(key)
            if record is not None and record.metrics:
                metrics.merge(MetricsRegistry.from_dict(record.metrics))
        completed = sum(1 for key in spec.shard_keys() if key in shards)
        degraded = len(spec.shard_keys()) - completed
        metrics.counter("campaign.shards_completed").add(completed)
        if degraded:
            metrics.counter("campaign.shards_degraded").add(degraded)
    if spans is not None and spans.enabled:
        # same canonical rebuild as metrics: the caller's span tree is
        # re-adopted straight from the store in shard-key order, so its
        # summary is a pure function of the stored shards -- identical
        # whether or not this campaign was ever interrupted
        root = spans.start(
            "campaign", engine=engine, shards=len(spec.shard_keys())
        )
        for key in spec.shard_keys():
            record = shards.get(key)
            if record is not None and record.spans:
                spans.adopt(record.spans, parent=root)
        spans.finish()
    if status is not None and not pending:
        # resume of an already-complete campaign: refresh the snapshot
        # so a follower sees the store's truth, not a stale mid-run view
        total = len(spec.shard_keys())
        done = sum(1 for key in spec.shard_keys() if key in shards)
        now = time.monotonic()
        status.publish_snapshot(CampaignSnapshot(
            done=done, total=total, degraded=total - done,
            started_mono=now, mono=now, complete=True,
        ))
    return aggregates


def campaign_status(checkpoint_dir):
    """Convenience wrapper: :meth:`CampaignStore.status` for a path."""
    return CampaignStore(checkpoint_dir).status()
