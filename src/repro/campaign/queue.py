"""Filesystem work-queue executor: multi-host campaigns, no wire protocol.

The distributed lane of the executor contract
(:mod:`repro.sim.executors`; spec in ``docs/distributed.md``).  The
runner turns every campaign shard into a JSON *ticket* in a shared
queue directory; independent worker processes -- started anywhere the
directory is mounted via ``repro campaign-worker <queue-dir>`` --
*lease* tickets by atomic ``os.rename``, run them with the exact same
:func:`~repro.sim.executors._run_job` the pool uses, and push results
back as JSON records the runner folds into the campaign.  Every
coordination primitive is a filesystem operation with POSIX atomicity
semantics, so the only infrastructure a multi-host campaign needs is a
shared directory::

    <queue_dir>/
        queue.json        # banner: campaign identity, written by the runner
        tickets/
            <shard>.json  # pending work, one ShardTicket per shard attempt
        leases/
            <shard>.json  # in flight: renamed from tickets/, mtime = liveness
        results/
            <shard>.json  # completed ShardOutcome records (atomic writes)
        failed/
            <shard>.json  # per-attempt failure reports from workers
        traces/
            trace-<n>.npz # pre-generated traces shared by every worker
        status/           # a plain StatusBus: worker heartbeats + snapshot
        stop              # sentinel: workers drain and exit when it appears

Lease protocol: claiming is ``os.rename(tickets/X, leases/X)`` --
atomic on POSIX, so exactly one worker wins a ticket and a shard is
always in exactly one stage.  While a shard runs, the worker's
:class:`~repro.telemetry.statusbus.Heartbeater` refreshes the lease
file's mtime alongside its status-bus heartbeat; a SIGKILLed, crashed
or hung worker stops refreshing, the lease ages past the runner's
``lease_timeout``, and the runner *reclaims* it -- re-ticketing the
shard with the next attempt number, charged to the campaign's
:class:`~repro.sim.executors.RetryPolicy` as a ``timeout``.  Results
and failure reports are written atomically (temp file +
``os.replace``), so no reader ever observes a torn record; foreign or
torn files are quarantined/swept, and the runner re-publishes any
unresolved shard that is absent from every stage, which makes the
queue self-healing against lost files.

Determinism: a shard is a pure function of its ticket (config, seed,
engine, trace), results are rehydrated through the exact serialisation
the checkpoint store uses, and the runner returns outcomes in
canonical input order -- so a queue campaign's aggregates are
bit-identical to a serial or pool run of the same grid, no matter how
many workers raced, died, or were SIGKILLed along the way
(``tests/campaign/test_executors.py`` asserts this).
"""

from __future__ import annotations

import json
import os
import shutil
import socket
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, ClassVar, Dict, List, Optional, Sequence, Tuple

from repro.campaign.faults import FaultInjector
from repro.sim.executors import (
    FAULT_COUNTERS,
    CampaignJob,
    ExecutionContext,
    Executor,
    JobOutcome,
    ShardOutcome,
    ShardTimeout,
    _count,
    _exhaust,
    _run_job,
    _shard_id,
)
from repro.telemetry.manifest import config_as_dict, config_from_dict
from repro.telemetry.statusbus import (
    DEFAULT_STALE_AFTER_S,
    Heartbeater,
    StatusBus,
    write_json_atomic,
)

#: bump when the on-disk queue layout changes incompatibly
QUEUE_SCHEMA_VERSION = 1

BANNER_FILENAME = "queue.json"
TICKETS_DIRNAME = "tickets"
LEASES_DIRNAME = "leases"
RESULTS_DIRNAME = "results"
FAILED_DIRNAME = "failed"
TRACES_DIRNAME = "traces"
STATUS_DIRNAME = "status"
STOP_FILENAME = "stop"

#: a lease whose mtime is older than this is presumed dead and reclaimed
DEFAULT_LEASE_TIMEOUT_S = 60.0


class RemoteShardError(RuntimeError):
    """A worker-reported shard failure, rehydrated on the runner side."""

    def __init__(self, message: str, kind: str = "error") -> None:
        super().__init__(message)
        self.shard_fault_kind = kind


@dataclass
class ShardTicket:
    """One shard attempt as a self-contained JSON work order.

    Everything a worker on another host needs to run the shard: the
    full simulation config (as the nested plain dict
    :func:`~repro.telemetry.manifest.config_as_dict` produces), the
    grid coordinates, the engine, the workload knobs or the queue-local
    trace filename, and the serialised fault-injection spec for tests.
    Status-bus paths deliberately do **not** travel in tickets: workers
    heartbeat into the queue's own ``status/`` directory (the only
    path guaranteed shared), and the runner relays those records into
    the campaign's bus.
    """

    shard: str
    technique: Optional[str]
    seed: int
    #: retry attempt this ticket represents (0 = first try); stamped by
    #: the runner on publish and re-publish, consumed by fault matching
    attempt: int
    engine: str
    total_intervals: int
    config: Dict[str, Any]
    #: sorted (key, value) workload knob pairs, JSON-friendly
    workload_kwargs: List[List[Any]]
    #: filename under ``traces/``; None regenerates from the knobs
    trace: Optional[str] = None
    collect_metrics: bool = False
    collect_spans: bool = False
    span_seed: str = ""
    #: :meth:`FaultInjector.spec` JSON, or None (production campaigns)
    fault_spec: Optional[str] = None
    schema_version: int = QUEUE_SCHEMA_VERSION

    @classmethod
    def from_job(
        cls,
        job: CampaignJob,
        trace: Optional[str] = None,
        attempt: Optional[int] = None,
    ) -> "ShardTicket":
        return cls(
            shard=_shard_id(job.technique, job.seed),
            technique=job.technique,
            seed=job.seed,
            attempt=job.attempt if attempt is None else attempt,
            engine=job.engine,
            total_intervals=job.total_intervals,
            config=config_as_dict(job.config),
            workload_kwargs=[list(pair) for pair in job.workload_kwargs],
            trace=trace,
            collect_metrics=job.collect_metrics,
            collect_spans=job.collect_spans,
            span_seed=job.span_seed,
            fault_spec=(
                job.fault_injector.spec()
                if job.fault_injector is not None else None
            ),
        )

    def to_job(self, queue_root) -> CampaignJob:
        """Rehydrate the runnable job on the worker side."""
        trace_path = (
            str(Path(queue_root) / TRACES_DIRNAME / self.trace)
            if self.trace else None
        )
        return CampaignJob(
            config=config_from_dict(self.config),
            technique=self.technique,
            seed=self.seed,
            total_intervals=self.total_intervals,
            workload_kwargs=tuple(
                (key, value) for key, value in self.workload_kwargs
            ),
            trace_path=trace_path,
            engine=self.engine,
            collect_metrics=self.collect_metrics,
            attempt=self.attempt,
            fault_injector=(
                FaultInjector.from_spec(self.fault_spec)
                if self.fault_spec else None
            ),
            collect_spans=self.collect_spans,
            span_seed=self.span_seed,
            status_dir=None,  # workers own their heartbeats (queue bus)
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "shard": self.shard,
            "technique": self.technique,
            "seed": self.seed,
            "attempt": self.attempt,
            "engine": self.engine,
            "total_intervals": self.total_intervals,
            "config": self.config,
            "workload_kwargs": self.workload_kwargs,
            "trace": self.trace,
            "collect_metrics": self.collect_metrics,
            "collect_spans": self.collect_spans,
            "span_seed": self.span_seed,
            "fault_spec": self.fault_spec,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ShardTicket":
        return cls(
            shard=data["shard"],
            technique=data.get("technique"),
            seed=int(data["seed"]),
            attempt=int(data.get("attempt", 0)),
            engine=data["engine"],
            total_intervals=int(data["total_intervals"]),
            config=dict(data["config"]),
            workload_kwargs=[
                list(pair) for pair in data.get("workload_kwargs", [])
            ],
            trace=data.get("trace"),
            collect_metrics=bool(data.get("collect_metrics", False)),
            collect_spans=bool(data.get("collect_spans", False)),
            span_seed=data.get("span_seed", ""),
            fault_spec=data.get("fault_spec"),
            schema_version=int(
                data.get("schema_version", QUEUE_SCHEMA_VERSION)
            ),
        )


class WorkQueue:
    """Layout helper for one queue directory (see the module docstring).

    Runner and workers share this class; every mutation is either an
    atomic write (:func:`~repro.telemetry.statusbus.write_json_atomic`)
    or an atomic rename, so the queue is crash-consistent on both
    sides: no observer ever reads a torn ticket, lease, or result that
    this code wrote.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.tickets_dir = self.root / TICKETS_DIRNAME
        self.leases_dir = self.root / LEASES_DIRNAME
        self.results_dir = self.root / RESULTS_DIRNAME
        self.failed_dir = self.root / FAILED_DIRNAME
        self.traces_dir = self.root / TRACES_DIRNAME
        self.banner_path = self.root / BANNER_FILENAME
        self.stop_path = self.root / STOP_FILENAME

    def ensure_layout(self) -> None:
        """Create every queue subdirectory (idempotent, racing-safe)."""
        for path in (
            self.tickets_dir, self.leases_dir, self.results_dir,
            self.failed_dir, self.traces_dir,
        ):
            path.mkdir(parents=True, exist_ok=True)

    def reset(self) -> None:
        """Clear work files from a previous campaign (runner, at start).

        One queue directory serves one campaign at a time; stale
        results from an earlier run must not be ingested as this run's.
        The banner and status directory are overwritten separately.
        """
        self.ensure_layout()
        self.clear_stop()
        for directory in (
            self.tickets_dir, self.leases_dir, self.results_dir,
            self.failed_dir, self.traces_dir,
        ):
            for path in directory.iterdir():
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - racing a straggler
                    pass

    def status_bus(
        self, stale_after: float = DEFAULT_STALE_AFTER_S
    ) -> StatusBus:
        """The queue's own status bus (``<queue>/status``) -- the one
        directory runner and remote workers are guaranteed to share."""
        return StatusBus(self.root / STATUS_DIRNAME, stale_after=stale_after)

    # -- banner / stop sentinel ---------------------------------------

    def write_banner(self, banner: Dict[str, Any]) -> None:
        payload = {"schema_version": QUEUE_SCHEMA_VERSION}
        payload.update(banner)
        write_json_atomic(self.banner_path, payload)

    def read_banner(self) -> Optional[Dict[str, Any]]:
        try:
            return json.loads(self.banner_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None

    def request_stop(self) -> None:
        """Raise the drain sentinel: workers exit at their next poll."""
        write_json_atomic(self.stop_path, {"stop": True})

    def clear_stop(self) -> None:
        try:
            self.stop_path.unlink()
        except OSError:
            pass

    @property
    def stop_requested(self) -> bool:
        return self.stop_path.exists()

    # -- tickets and leases (worker side) -----------------------------

    def ticket_path(self, shard: str) -> Path:
        return self.tickets_dir / f"{shard}.json"

    def lease_path(self, shard: str) -> Path:
        return self.leases_dir / f"{shard}.json"

    def publish_ticket(self, ticket: ShardTicket) -> Path:
        path = self.ticket_path(ticket.shard)
        write_json_atomic(path, ticket.as_dict())
        return path

    def claim_ticket(self) -> Optional[Tuple[ShardTicket, Path]]:
        """Lease the first available ticket via atomic rename.

        Exactly one claimant wins each ticket: ``os.rename`` either
        moves the file into ``leases/`` or raises because another
        worker (or a runner reclaim) got there first, in which case the
        next ticket is tried.  A won lease is immediately ``touch``ed
        so its liveness clock starts at claim time, not publish time.
        A ticket that cannot be parsed (torn by a non-atomic foreign
        writer, or corrupted on disk) is quarantined into
        ``failed/<name>.corrupt`` rather than retried forever; the
        runner's self-heal pass re-publishes the shard from its
        in-memory job list.
        """
        if not self.tickets_dir.is_dir():
            return None
        for path in sorted(self.tickets_dir.glob("*.json")):
            lease = self.leases_dir / path.name
            try:
                os.rename(path, lease)
            except OSError:
                continue  # lost the race; try the next ticket
            try:
                ticket = ShardTicket.from_dict(
                    json.loads(lease.read_text(encoding="utf-8"))
                )
            except (OSError, json.JSONDecodeError, KeyError, TypeError,
                    ValueError):
                quarantine = self.failed_dir / f"{path.name}.corrupt"
                try:
                    os.replace(lease, quarantine)
                except OSError:  # pragma: no cover - racing reclaim
                    pass
                continue
            self.touch(lease)
            return ticket, lease
        return None

    def touch(self, lease: Path) -> None:
        """Refresh a lease's mtime: the holder is alive."""
        try:
            os.utime(lease)
        except OSError:  # lease reclaimed under us; the run still counts
            pass

    def release(self, lease: Path) -> None:
        try:
            lease.unlink()
        except OSError:
            pass

    # -- leases (runner side) -----------------------------------------

    def expired_leases(
        self, timeout: float, now: Optional[float] = None
    ) -> List[Tuple[str, Path]]:
        """(shard, lease-path) pairs whose holder has gone quiet.

        Liveness is the lease file's mtime -- one clock, the shared
        filesystem's, which is the only clock a multi-host queue can
        agree on.  Size *timeout* generously above the worker's
        refresh interval (and any cross-host clock skew).
        """
        if now is None:
            now = time.time()
        expired: List[Tuple[str, Path]] = []
        if not self.leases_dir.is_dir():
            return expired
        for path in sorted(self.leases_dir.glob("*.json")):
            try:
                age = now - path.stat().st_mtime
            except OSError:
                continue  # released while we looked
            if age > timeout:
                expired.append((path.stem, path))
        return expired

    def reclaim_lease(self, lease: Path) -> Optional[ShardTicket]:
        """Take a dead worker's lease back (runner only).

        Returns the leased ticket, or None if the lease vanished or
        cannot be parsed (the self-heal pass covers the shard either
        way).  The lease file is removed; re-publishing with a bumped
        attempt is the caller's decision, under its retry policy.
        """
        try:
            data = json.loads(lease.read_text(encoding="utf-8"))
            ticket = ShardTicket.from_dict(data)
        except (OSError, json.JSONDecodeError, KeyError, TypeError,
                ValueError):
            ticket = None
        self.release(lease)
        return ticket

    # -- results and failure reports ----------------------------------

    def result_path(self, shard: str) -> Path:
        return self.results_dir / f"{shard}.json"

    def write_result(self, record: Dict[str, Any]) -> Path:
        path = self.result_path(record["shard"])
        write_json_atomic(path, record)
        return path

    def read_results(self) -> Dict[str, Dict[str, Any]]:
        """Every parseable result record, keyed by shard id."""
        results: Dict[str, Dict[str, Any]] = {}
        if not self.results_dir.is_dir():
            return results
        for path in sorted(self.results_dir.glob("*.json")):
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue
            if isinstance(record, dict) and "shard" in record:
                results[record["shard"]] = record
        return results

    def sweep_torn_results(self) -> int:
        """Unlink unparseable result files (foreign writers only --
        this module's writes are atomic); the shard re-runs via
        self-heal.  Returns the number swept."""
        swept = 0
        if not self.results_dir.is_dir():
            return swept
        for path in sorted(self.results_dir.glob("*.json")):
            try:
                json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                try:
                    path.unlink()
                    swept += 1
                except OSError:  # pragma: no cover - racing rewrite
                    pass
        return swept

    def failure_path(self, shard: str) -> Path:
        return self.failed_dir / f"{shard}.json"

    def write_failure(
        self, ticket: ShardTicket, kind: str, error: str
    ) -> Path:
        path = self.failure_path(ticket.shard)
        write_json_atomic(path, {
            "schema_version": QUEUE_SCHEMA_VERSION,
            "shard": ticket.shard,
            "technique": ticket.technique,
            "seed": ticket.seed,
            "attempt": ticket.attempt,
            "kind": kind,
            "error": error,
            "worker": {"pid": os.getpid(), "host": socket.gethostname()},
        })
        return path

    def take_failures(self) -> List[Dict[str, Any]]:
        """Read-and-consume every failure report (runner only)."""
        reports: List[Dict[str, Any]] = []
        if not self.failed_dir.is_dir():
            return reports
        for path in sorted(self.failed_dir.glob("*.json")):
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                record = None
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing writer
                continue
            if isinstance(record, dict) and "shard" in record:
                reports.append(record)
        return reports

    def present_shards(self) -> set:
        """Shard ids visible in *any* queue stage right now.

        The self-heal invariant's evidence set: an unresolved shard
        absent from tickets, leases, results *and* failure reports has
        been lost (quarantined corrupt ticket, swept torn result,
        foreign deletion) and must be re-published by the runner.
        """
        present: set = set()
        for directory in (self.tickets_dir, self.leases_dir,
                          self.failed_dir):
            if directory.is_dir():
                present.update(
                    path.stem for path in directory.glob("*.json")
                )
        present.update(self.read_results())
        return present

    def stage_trace(self, source: str, name: str) -> str:
        """Copy a trace file into ``traces/`` (atomically) and return
        *name*; a file already staged under that name is reused."""
        dest = self.traces_dir / name
        if not dest.exists():
            handle, tmp = tempfile.mkstemp(
                dir=str(self.traces_dir), prefix=name + ".", suffix=".tmp"
            )
            os.close(handle)
            try:
                shutil.copyfile(source, tmp)
                os.replace(tmp, dest)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        return name


class QueueExecutor(Executor):
    """Campaign execution over a shared filesystem work queue.

    The runner side of the queue protocol: publishes one ticket per
    shard, optionally spawns ``workers`` local ``campaign-worker``
    subprocesses against the queue, then polls -- ingesting results as
    they land (checkpointing and progress fire per shard, like every
    executor), consuming worker failure reports and reclaiming expired
    leases under the campaign's retry policy, re-publishing lost
    shards, and relaying worker heartbeats from the queue's status bus
    into the campaign's.  On completion (or failure) it raises the
    ``stop`` sentinel so attached workers drain and exit.

    ``workers=0`` publishes work and waits for *external* workers --
    the multi-host mode: start ``repro campaign-worker <queue-dir>`` on
    any machine sharing the directory, before or after the campaign
    starts.  ``lease_timeout`` is the hung/vanished-worker bound (the
    queue's analogue of ``shard_timeout``); it must comfortably exceed
    the workers' lease-refresh interval plus any cross-host clock skew.
    """

    name: ClassVar[str] = "queue"
    profile_section: ClassVar[str] = "campaign:queue"

    def __init__(
        self,
        queue_dir,
        workers: int = 0,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT_S,
        poll_interval: float = 0.2,
        stop_workers: bool = True,
        max_respawns: Optional[int] = None,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0: {workers}")
        if lease_timeout <= 0:
            raise ValueError(
                f"lease_timeout must be positive: {lease_timeout}"
            )
        self.queue_dir = Path(queue_dir)
        self.workers = workers
        self.lease_timeout = lease_timeout
        self.poll_interval = poll_interval
        self.stop_workers = stop_workers
        self.max_respawns = max_respawns

    # -- worker subprocess management ---------------------------------

    def _lease_refresh(self) -> float:
        return max(0.05, min(1.0, self.lease_timeout / 5.0))

    def _spawn_worker(self) -> subprocess.Popen:
        import repro

        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parents[1])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root + os.pathsep + existing if existing else src_root
        )
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro", "campaign-worker",
                str(self.queue_dir),
                "--poll-interval", str(min(0.5, max(0.05, self.poll_interval))),
                "--lease-refresh", str(self._lease_refresh()),
            ],
            env=env,
            stdout=subprocess.DEVNULL,
        )

    def _reap_workers(self, procs: List[subprocess.Popen]) -> None:
        for proc in procs:
            if proc.poll() is None:
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.terminate()
                    try:
                        proc.wait(timeout=5)
                    except subprocess.TimeoutExpired:
                        proc.kill()
                        proc.wait()

    # -- the executor contract ----------------------------------------

    def execute(
        self, jobs: Sequence[CampaignJob], ctx: ExecutionContext
    ) -> List[Optional[JobOutcome]]:
        policy = ctx.policy
        wq = WorkQueue(self.queue_dir)
        wq.reset()
        queue_bus = wq.status_bus()
        queue_bus.clear_workers()
        total = len(jobs)
        # stage each distinct memoized trace once; workers read them
        # from the queue directory (the runner's tmpdir is host-local)
        trace_names: Dict[str, str] = {}
        for job in jobs:
            if job.trace_path and job.trace_path not in trace_names:
                name = f"trace-{len(trace_names)}.npz"
                trace_names[job.trace_path] = wq.stage_trace(
                    job.trace_path, name
                )
        wq.write_banner({
            "engine": jobs[0].engine if jobs else None,
            "shards": total,
            "created_unix": time.time(),
        })
        shard_index: Dict[str, int] = {}
        for index, job in enumerate(jobs):
            shard_index[_shard_id(job.technique, job.seed)] = index
        outcomes: List[Optional[JobOutcome]] = [None] * total
        resolved = [False] * total
        attempts = [0] * total
        done = 0

        def ticket_for(index: int) -> ShardTicket:
            job = jobs[index]
            return ShardTicket.from_job(
                job,
                trace=trace_names.get(job.trace_path),
                attempt=attempts[index],
            )

        for index in range(total):
            wq.publish_ticket(ticket_for(index))
        procs = [self._spawn_worker() for _ in range(self.workers)]
        respawns = 0
        respawn_budget = (
            self.max_respawns
            if self.max_respawns is not None
            else max(4, 2 * total)
        )
        try:
            while not all(resolved):
                progressed = False
                # 1. fold in completed shards
                for shard, record in wq.read_results().items():
                    index = shard_index.get(shard)
                    if index is None or resolved[index]:
                        continue
                    try:
                        outcome = ShardOutcome.from_dict(record)
                    except (KeyError, TypeError, ValueError):
                        continue  # torn by a foreign writer; swept below
                    outcomes[index] = outcome.as_tuple()
                    resolved[index] = True
                    done += 1
                    progressed = True
                    if ctx.shard_callback is not None:
                        ctx.shard_callback(
                            outcomes[index], attempts[index] + 1
                        )
                    if ctx.progress is not None:
                        ctx.progress(done + len(ctx.failures), total)

                def charge_failure(
                    index: int, exc: BaseException, kind: str
                ) -> None:
                    """One failed attempt: count, then retry or exhaust."""
                    nonlocal progressed
                    attempts[index] += 1
                    _count(ctx.metrics,
                           FAULT_COUNTERS.get(kind, FAULT_COUNTERS["error"]))
                    if attempts[index] > policy.max_retries:
                        _exhaust(
                            jobs[index], attempts[index], exc, policy,
                            ctx.failures, ctx.metrics,
                        )
                        resolved[index] = True
                        if ctx.progress is not None:
                            ctx.progress(done + len(ctx.failures), total)
                    else:
                        _count(ctx.metrics, "campaign.shard_retries")
                        delay = policy.delay(attempts[index])
                        if delay > 0:
                            ctx.sleep(delay)
                        wq.publish_ticket(ticket_for(index))
                    progressed = True

                # 2. consume worker failure reports
                for report in wq.take_failures():
                    index = shard_index.get(report.get("shard"))
                    if index is None or resolved[index]:
                        continue
                    kind = report.get("kind", "error")
                    charge_failure(index, RemoteShardError(
                        f"worker {report.get('worker', {})} failed shard "
                        f"{report.get('shard')} on attempt "
                        f"{report.get('attempt', 0)}: "
                        f"{report.get('error', '')}",
                        kind=kind,
                    ), kind)

                # 3. reclaim leases whose holder has gone quiet
                for shard, lease in wq.expired_leases(self.lease_timeout):
                    index = shard_index.get(shard)
                    wq.reclaim_lease(lease)
                    if index is None or resolved[index]:
                        continue
                    charge_failure(index, ShardTimeout(
                        f"queue shard {shard} lease expired after "
                        f"{self.lease_timeout}s on attempt {attempts[index]}"
                    ), "timeout")

                # 4. self-heal: re-publish unresolved shards lost from
                # every stage (quarantined corrupt tickets, swept torn
                # results, foreign deletions)
                swept = wq.sweep_torn_results()
                if swept:
                    _count(ctx.metrics, "campaign.queue_torn_swept", swept)
                present = wq.present_shards()
                for shard, index in shard_index.items():
                    if not resolved[index] and shard not in present:
                        wq.publish_ticket(ticket_for(index))
                        progressed = True

                # 5. keep the local worker complement alive
                if procs and not all(resolved):
                    for slot, proc in enumerate(procs):
                        if proc.poll() is not None:
                            respawns += 1
                            if respawns > respawn_budget:
                                raise RuntimeError(
                                    "queue workers keep dying "
                                    f"({respawns} respawns); aborting the "
                                    "campaign rather than looping"
                                )
                            procs[slot] = self._spawn_worker()

                # 6. relay worker heartbeats into the campaign's bus so
                # campaign-status on the checkpoint shows remote workers
                if ctx.status is not None and \
                        ctx.status.root != queue_bus.root:
                    for heartbeat in queue_bus.read_heartbeats():
                        ctx.status.publish_heartbeat(heartbeat)
                    snapshot = ctx.status.read_snapshot()
                    if snapshot is not None:
                        queue_bus.publish_snapshot(snapshot)

                if not progressed and not all(resolved):
                    time.sleep(self.poll_interval)
        finally:
            if self.stop_workers:
                wq.request_stop()
            self._reap_workers(procs)
        return outcomes


def run_worker(
    queue_dir,
    poll_interval: float = 0.5,
    idle_exit: Optional[float] = None,
    max_shards: Optional[int] = None,
    lease_refresh: float = 1.0,
    hostname: Optional[str] = None,
    log: Optional[Callable[[str], None]] = None,
) -> int:
    """The ``repro campaign-worker`` loop: lease, run, push, repeat.

    Polls *queue_dir* every ``poll_interval`` seconds for tickets,
    leases one at a time (atomic rename), runs it through the same
    :func:`~repro.sim.executors._run_job` every other executor uses,
    and pushes the result (or a failure report) back.  While a shard
    runs, a background :class:`~repro.telemetry.statusbus.Heartbeater`
    refreshes the lease mtime and publishes a status-bus heartbeat
    every ``lease_refresh`` seconds with this worker's host and pid.

    Exits (returning 0) when the queue's ``stop`` sentinel appears,
    after ``max_shards`` completed shards, or after ``idle_exit``
    seconds without available work; runs forever otherwise.  Safe to
    start before the queue directory exists and safe to run in any
    multiplicity -- the lease protocol serialises claims.
    """
    wq = WorkQueue(queue_dir)
    wq.ensure_layout()
    bus = wq.status_bus()
    host = hostname or socket.gethostname()
    emit = log if log is not None else (lambda message: None)
    completed = 0
    idle_since = time.monotonic()
    emit(f"campaign-worker: polling {wq.root} (pid {os.getpid()})")
    while True:
        if wq.stop_requested:
            emit("campaign-worker: stop sentinel seen; draining")
            break
        claim = wq.claim_ticket()
        if claim is None:
            if (
                idle_exit is not None
                and time.monotonic() - idle_since >= idle_exit
            ):
                emit(f"campaign-worker: idle for {idle_exit}s; exiting")
                break
            time.sleep(poll_interval)
            continue
        idle_since = time.monotonic()
        ticket, lease = claim
        job = ticket.to_job(wq.root)
        beater = Heartbeater(
            bus, ticket.shard,
            interval_s=lease_refresh,
            retries=ticket.attempt,
            on_beat=lambda: wq.touch(lease),
            host=host,
        )
        emit(
            f"campaign-worker: leased {ticket.shard} "
            f"(attempt {ticket.attempt})"
        )
        try:
            with beater:
                outcome = _run_job(job)
        except Exception as exc:
            kind = getattr(exc, "shard_fault_kind", "error")
            wq.write_failure(
                ticket, kind=kind, error=f"{type(exc).__name__}: {exc}"
            )
            wq.release(lease)
            bus.beat(
                ticket.shard, 0, 1, retries=ticket.attempt, phase="failed",
                host=host,
            )
            emit(f"campaign-worker: {ticket.shard} failed ({kind}): {exc}")
        else:
            record = ShardOutcome.from_outcome(
                outcome, attempts=ticket.attempt + 1
            ).as_dict()
            record.update({
                "schema_version": QUEUE_SCHEMA_VERSION,
                "shard": ticket.shard,
                "worker": {"pid": os.getpid(), "host": host},
            })
            wq.write_result(record)
            wq.release(lease)
            bus.beat(
                ticket.shard, 1, 1, retries=ticket.attempt, phase="done",
                host=host,
            )
            completed += 1
            emit(f"campaign-worker: {ticket.shard} done")
            if max_shards is not None and completed >= max_shards:
                emit(f"campaign-worker: {completed} shards done; exiting")
                break
    return 0
