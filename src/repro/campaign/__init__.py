"""Durable, fault-tolerant campaign orchestration.

Long (paper-scale) campaigns checkpoint every completed shard to a
directory and can be killed and resumed without losing or changing any
result -- see ``docs/campaigns.md`` for the checkpoint layout, resume
semantics, and failure policies.

Public surface:

* :func:`run_durable_campaign` -- checkpointed/resumable wrapper
  around :func:`repro.sim.parallel.run_campaign`;
* :class:`CampaignStore` / :class:`CampaignSpec` /
  :class:`ShardRecord` -- the checkpoint persistence layer;
* :class:`FaultInjector` -- deterministic crash/hang/error injection
  for fault-tolerance tests (never active unless explicitly supplied
  or set through ``REPRO_FAULT_INJECT``).
"""

from repro.campaign.faults import (
    CRASH_EXIT_CODE,
    FAULT_ENV_VAR,
    FaultInjector,
    FaultRule,
    InjectedFault,
    SimulatedCrash,
)
from repro.campaign.runner import campaign_status, run_durable_campaign
from repro.campaign.store import (
    CampaignSpec,
    CampaignStateError,
    CampaignStatus,
    CampaignStore,
    CheckpointMismatchError,
    ShardRecord,
    write_json_atomic,
)

__all__ = [
    "write_json_atomic",
    "CRASH_EXIT_CODE",
    "FAULT_ENV_VAR",
    "FaultInjector",
    "FaultRule",
    "InjectedFault",
    "SimulatedCrash",
    "campaign_status",
    "run_durable_campaign",
    "CampaignSpec",
    "CampaignStateError",
    "CampaignStatus",
    "CampaignStore",
    "CheckpointMismatchError",
    "ShardRecord",
]
