"""Durable, fault-tolerant campaign orchestration.

Long (paper-scale) campaigns checkpoint every completed shard to a
directory and can be killed and resumed without losing or changing any
result -- see ``docs/campaigns.md`` for the checkpoint layout, resume
semantics, and failure policies.

Public surface:

* :func:`run_durable_campaign` -- checkpointed/resumable wrapper
  around :func:`repro.sim.parallel.run_campaign`;
* :class:`CampaignStore` / :class:`CampaignSpec` /
  :class:`ShardRecord` -- the checkpoint persistence layer;
* :class:`FaultInjector` -- deterministic crash/hang/error injection
  for fault-tolerance tests (never active unless explicitly supplied
  or set through ``REPRO_FAULT_INJECT``);
* :class:`QueueExecutor` / :func:`run_worker` / :class:`WorkQueue` --
  the distributed lane: campaigns over a shared filesystem work queue
  drained by ``repro campaign-worker`` processes on any host (see
  ``docs/distributed.md``).
"""

from repro.campaign.faults import (
    CRASH_EXIT_CODE,
    FAULT_ENV_VAR,
    FaultInjector,
    FaultRule,
    InjectedFault,
    SimulatedCrash,
)
from repro.campaign.queue import (
    DEFAULT_LEASE_TIMEOUT_S,
    QueueExecutor,
    RemoteShardError,
    ShardTicket,
    WorkQueue,
    run_worker,
)
from repro.campaign.runner import campaign_status, run_durable_campaign
from repro.campaign.store import (
    CampaignSpec,
    CampaignStateError,
    CampaignStatus,
    CampaignStore,
    CheckpointMismatchError,
    ShardRecord,
    write_json_atomic,
)

__all__ = [
    "write_json_atomic",
    "CRASH_EXIT_CODE",
    "FAULT_ENV_VAR",
    "FaultInjector",
    "FaultRule",
    "InjectedFault",
    "SimulatedCrash",
    "campaign_status",
    "run_durable_campaign",
    "CampaignSpec",
    "CampaignStateError",
    "CampaignStatus",
    "CampaignStore",
    "CheckpointMismatchError",
    "ShardRecord",
    "DEFAULT_LEASE_TIMEOUT_S",
    "QueueExecutor",
    "RemoteShardError",
    "ShardTicket",
    "WorkQueue",
    "run_worker",
]
