"""Deterministic fault injection for campaign fault-tolerance tests.

A :class:`FaultInjector` carries a list of :class:`FaultRule` entries
and is consulted by the campaign runner immediately before each shard
attempt executes.  A matching rule either raises (``error``), hard-kills
the worker process (``crash`` -- the closest reproducible stand-in for
an OOM kill or SIGKILL), or sleeps past the orchestrator's shard
timeout (``hang``).  Rules match on (technique, seed, attempt), so a
test can say "crash shard (PARA, 0) on its first two attempts, then let
it succeed" and exercise the retry machinery without any flakiness.

Injectors are plain picklable dataclasses, so they travel inside
:class:`~repro.sim.parallel.CampaignJob` to pool workers.  For
subprocess-level tests (and the CI kill-and-resume job) the spec can
also be supplied as JSON through the ``REPRO_FAULT_INJECT`` environment
variable, e.g.::

    REPRO_FAULT_INJECT='[{"mode": "hang", "technique": "TWiCe",
                          "seed": 1, "seconds": 60}]'

Production campaigns never construct an injector; every hook is a
no-op when it is ``None`` (the default everywhere).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: environment variable holding a JSON fault spec (list of rule dicts)
FAULT_ENV_VAR = "REPRO_FAULT_INJECT"

#: process exit code used by ``crash`` rules inside pool workers, so a
#: post-mortem can tell an injected crash from a real one
CRASH_EXIT_CODE = 86

_MODES = ("crash", "error", "hang")


class InjectedFault(RuntimeError):
    """Raised by an ``error`` rule; stands in for any worker exception."""

    #: consumed by the retry loop to classify the failure
    shard_fault_kind = "error"


class SimulatedCrash(RuntimeError):
    """Raised by a ``crash`` rule when the shard runs inline.

    In a pool worker the same rule calls ``os._exit`` instead, which the
    orchestrator observes as a broken process pool -- exactly what a
    real worker death looks like.
    """

    shard_fault_kind = "crash"


@dataclass(frozen=True)
class FaultRule:
    """One deterministic fault: *mode* fired for matching shard attempts.

    ``technique``/``seed`` of ``None`` match any shard; ``attempts`` of
    ``None`` matches every attempt (a shard that can never succeed),
    while e.g. ``attempts=(0, 1)`` fails the first two attempts only.
    """

    mode: str
    technique: Optional[str] = None
    seed: Optional[int] = None
    attempts: Optional[Tuple[int, ...]] = None
    #: sleep duration for ``hang`` rules
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(
                f"unknown fault mode {self.mode!r}; expected one of {_MODES}"
            )
        if self.attempts is not None:
            object.__setattr__(self, "attempts", tuple(self.attempts))

    def matches(self, technique: str, seed: int, attempt: int) -> bool:
        if self.technique is not None and self.technique != technique:
            return False
        if self.seed is not None and self.seed != seed:
            return False
        if self.attempts is not None and attempt not in self.attempts:
            return False
        return True

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"mode": self.mode}
        if self.technique is not None:
            out["technique"] = self.technique
        if self.seed is not None:
            out["seed"] = self.seed
        if self.attempts is not None:
            out["attempts"] = list(self.attempts)
        if self.mode == "hang":
            out["seconds"] = self.seconds
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultRule":
        attempts = data.get("attempts")
        return cls(
            mode=data["mode"],
            technique=data.get("technique"),
            seed=data.get("seed"),
            attempts=tuple(attempts) if attempts is not None else None,
            seconds=float(data.get("seconds", 0.0)),
        )


@dataclass(frozen=True)
class FaultInjector:
    """Fires the first matching rule for each shard attempt."""

    rules: Tuple[FaultRule, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    def fire(
        self, technique: str, seed: int, attempt: int,
        in_worker: bool = False,
    ) -> None:
        """Apply the first rule matching this shard attempt, if any.

        ``hang`` sleeps and returns (the shard then runs normally --
        the orchestrator should have timed it out by then); ``error``
        raises :class:`InjectedFault`; ``crash`` kills the process when
        *in_worker* (pool mode) or raises :class:`SimulatedCrash`
        inline, where killing the process would take the orchestrator
        down with it.
        """
        for rule in self.rules:
            if not rule.matches(technique, seed, attempt):
                continue
            label = f"{technique}/seed={seed}/attempt={attempt}"
            if rule.mode == "hang":
                time.sleep(rule.seconds)
                return
            if rule.mode == "error":
                raise InjectedFault(f"injected worker error at {label}")
            if in_worker:
                os._exit(CRASH_EXIT_CODE)
            raise SimulatedCrash(f"injected worker crash at {label}")

    def spec(self) -> str:
        """JSON round-trip form (suitable for :data:`FAULT_ENV_VAR`)."""
        return json.dumps([rule.as_dict() for rule in self.rules])

    @classmethod
    def from_rules(cls, rules: Sequence[Dict[str, Any]]) -> "FaultInjector":
        return cls(rules=tuple(FaultRule.from_dict(rule) for rule in rules))

    @classmethod
    def from_spec(cls, text: str) -> "FaultInjector":
        """Parse a JSON list of rule dicts (see module docstring)."""
        parsed = json.loads(text)
        if not isinstance(parsed, list):
            raise ValueError(
                f"fault spec must be a JSON list of rules, got {type(parsed)}"
            )
        return cls.from_rules(parsed)

    @classmethod
    def from_env(cls, name: str = FAULT_ENV_VAR) -> Optional["FaultInjector"]:
        """Injector from the environment, or ``None`` when unset/empty."""
        text = os.environ.get(name, "").strip()
        if not text:
            return None
        return cls.from_spec(text)


def describe_rules(injector: Optional[FaultInjector]) -> List[str]:
    """Human-readable rule summaries (empty for no injector)."""
    if injector is None:
        return []
    return [
        f"{rule.mode} technique={rule.technique or '*'} "
        f"seed={'*' if rule.seed is None else rule.seed} "
        f"attempts={'*' if rule.attempts is None else list(rule.attempts)}"
        for rule in injector.rules
    ]
