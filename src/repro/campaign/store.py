"""Durable campaign state: checkpoint directory, spec and shard records.

Layout of a checkpoint directory::

    <checkpoint_dir>/
        campaign.json        # CampaignSpec: config + hash, engine, grid
        failures.json        # degraded shards from the last run (info)
        shards/
            <technique>__s<seed>.json   # one completed shard each

Every write is atomic (temp file + ``os.replace`` in the same
directory), so a campaign killed mid-write leaves at worst an ignored
``*.tmp`` file -- never a torn shard.  A shard file is the unit of
resume: :func:`repro.campaign.runner.run_durable_campaign` re-runs
exactly the (technique, seed) pairs that have no shard file, then
rebuilds the aggregates from the store in canonical order, which makes
a killed-and-resumed campaign bit-identical to an uninterrupted one.

The spec reuses :func:`repro.telemetry.manifest.config_digest` (the run
manifest's config hashing), so "is this checkpoint the same
experiment?" is the same question as "would these two runs' manifests
hash alike?".
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.config import SimConfig
from repro.sim.metrics import SimResult
from repro.sim.parallel import ShardFailure
from repro.telemetry.manifest import config_as_dict, config_digest
from repro.telemetry.statusbus import write_json_atomic

#: bump when the checkpoint layout changes incompatibly
STORE_SCHEMA_VERSION = 1

SPEC_FILENAME = "campaign.json"
FAILURES_FILENAME = "failures.json"
SHARD_DIRNAME = "shards"


class CampaignStateError(RuntimeError):
    """Checkpoint directory is unusable for the requested operation."""


class CheckpointMismatchError(CampaignStateError):
    """Resume attempted against a checkpoint of a different campaign."""

    def __init__(self, mismatches: Dict[str, Tuple[Any, Any]]):
        self.mismatches = mismatches
        details = "; ".join(
            f"{key}: checkpoint={stored!r} requested={requested!r}"
            for key, (stored, requested) in sorted(mismatches.items())
        )
        super().__init__(
            "checkpoint belongs to a different campaign -- refusing to "
            f"resume ({details}); use a fresh --checkpoint-dir"
        )


# The atomic-write primitive now lives in repro.telemetry.statusbus
# (the status bus shares the same durability discipline); re-exported
# here because campaign and adversary checkpoint code has always
# imported it from this module.
#: backwards-compatible alias (pre-adversary name)
_write_json_atomic = write_json_atomic


@dataclass
class CampaignSpec:
    """Everything that identifies one campaign's work grid."""

    config: Dict[str, Any]
    config_hash: str
    engine: str
    total_intervals: int
    #: shard order, technique-major ("none" stands for unmitigated)
    techniques: List[str]
    seeds: List[int]
    workload_kwargs: Dict[str, Any] = field(default_factory=dict)
    schema_version: int = STORE_SCHEMA_VERSION

    @classmethod
    def build(
        cls,
        config: SimConfig,
        engine: str,
        total_intervals: int,
        techniques: Sequence[Optional[str]],
        seeds: Sequence[int],
        workload_kwargs: Optional[Dict[str, Any]] = None,
    ) -> "CampaignSpec":
        return cls(
            config=config_as_dict(config),
            config_hash=config_digest(config),
            engine=engine,
            total_intervals=total_intervals,
            techniques=[name or "none" for name in techniques],
            seeds=list(seeds),
            workload_kwargs=dict(workload_kwargs or {}),
        )

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignSpec":
        return cls(**dict(data))

    def shard_keys(self) -> List[Tuple[str, int]]:
        """Canonical (technique, seed) order of the whole campaign."""
        return [(name, seed) for name in self.techniques for seed in self.seeds]

    def mismatches(self, other: "CampaignSpec") -> Dict[str, Tuple[Any, Any]]:
        """Fields where *other* (the requested run) differs from self."""
        out: Dict[str, Tuple[Any, Any]] = {}
        for key in (
            "schema_version", "config_hash", "engine", "total_intervals",
            "techniques", "seeds", "workload_kwargs",
        ):
            mine, theirs = getattr(self, key), getattr(other, key)
            if mine != theirs:
                out[key] = (mine, theirs)
        return out


@dataclass
class ShardRecord:
    """One persisted (technique, seed) result."""

    technique: str
    seed: int
    result: SimResult
    attempts: int = 1
    metrics: Optional[Dict[str, Any]] = None
    #: serialised worker span tree (:meth:`SpanTracer.as_dict`); resume
    #: re-adopts these so span summaries match uninterrupted runs
    spans: Optional[Dict[str, Any]] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "technique": self.technique,
            "seed": self.seed,
            "attempts": self.attempts,
            "result": self.result.as_dict(include_wall=True),
            "metrics": self.metrics,
            "spans": self.spans,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ShardRecord":
        return cls(
            technique=data["technique"],
            seed=int(data["seed"]),
            result=SimResult.from_dict(data["result"]),
            attempts=int(data.get("attempts", 1)),
            metrics=data.get("metrics"),
            spans=data.get("spans"),
        )


@dataclass
class CampaignStatus:
    """Snapshot of a checkpoint directory for reporting."""

    spec: CampaignSpec
    completed: List[Tuple[str, int]]
    missing: List[Tuple[str, int]]
    failures: List[ShardFailure]

    @property
    def total(self) -> int:
        return len(self.completed) + len(self.missing)

    @property
    def complete(self) -> bool:
        return not self.missing


class CampaignStore:
    """Filesystem-backed campaign checkpoint."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.shard_dir = self.root / SHARD_DIRNAME

    @property
    def spec_path(self) -> Path:
        return self.root / SPEC_FILENAME

    @property
    def exists(self) -> bool:
        return self.spec_path.is_file()

    def initialize(self, spec: CampaignSpec) -> None:
        """Create the checkpoint layout and persist *spec*."""
        self.shard_dir.mkdir(parents=True, exist_ok=True)
        _write_json_atomic(self.spec_path, spec.as_dict())

    def read_spec(self) -> CampaignSpec:
        if not self.exists:
            raise CampaignStateError(
                f"no campaign checkpoint at {self.root} "
                f"(missing {SPEC_FILENAME})"
            )
        data = json.loads(self.spec_path.read_text(encoding="utf-8"))
        return CampaignSpec.from_dict(data)

    def ensure_matches(self, spec: CampaignSpec) -> None:
        """Fail fast if the stored campaign is not *spec*'s campaign."""
        mismatches = self.read_spec().mismatches(spec)
        if mismatches:
            raise CheckpointMismatchError(mismatches)

    # -- shards --------------------------------------------------------

    def shard_path(self, technique: str, seed: int) -> Path:
        return self.shard_dir / f"{technique}__s{seed}.json"

    def write_shard(self, record: ShardRecord) -> Path:
        path = self.shard_path(record.technique, record.seed)
        _write_json_atomic(path, record.as_dict())
        return path

    def load_shards(self) -> Dict[Tuple[str, int], ShardRecord]:
        """All readable shard records, keyed by (technique, seed).

        Partial or corrupt files (possible only from pre-atomic-write
        tooling or disk faults) are skipped: an unreadable shard is
        simply recomputed on resume.
        """
        shards: Dict[Tuple[str, int], ShardRecord] = {}
        if not self.shard_dir.is_dir():
            return shards
        for path in sorted(self.shard_dir.glob("*.json")):
            try:
                record = ShardRecord.from_dict(
                    json.loads(path.read_text(encoding="utf-8"))
                )
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                continue
            shards[(record.technique, record.seed)] = record
        return shards

    def partial_aggregates(self, degrade_missing: bool = False):
        """Aggregate whatever shards exist right now, in canonical order.

        The incremental-aggregation primitive behind live campaign
        views and every executor's final rebuild: results are folded
        technique-major, seed-minor -- the campaign's canonical shard
        order -- so the returned
        :class:`~repro.sim.parallel.CampaignResult` is a pure function
        of the *set* of stored shards.  Two stores holding the same
        shards produce bit-identical aggregates no matter which
        executor produced them, in what order they landed, or how many
        times the campaign was killed and resumed along the way.

        ``degrade_missing=True`` records absent shards as degraded
        seeds (the completed-campaign view, where a missing shard means
        it exhausted its retries); the default leaves them out (the
        mid-run view, where a missing shard is simply still pending).
        ``failures`` carries the store's persisted degraded-shard
        records.
        """
        from repro.sim.experiment import TechniqueAggregate
        from repro.sim.parallel import CampaignResult

        spec = self.read_spec()
        shards = self.load_shards()
        aggregates = CampaignResult(failures=self.read_failures())
        for name in spec.techniques:
            aggregate = TechniqueAggregate(technique=name)
            for seed in spec.seeds:
                record = shards.get((name, seed))
                if record is not None:
                    aggregate.results.append(record.result)
                elif degrade_missing:
                    aggregate.degraded_seeds.append(seed)
            aggregates[name] = aggregate
        return aggregates

    # -- failures ------------------------------------------------------

    @property
    def failures_path(self) -> Path:
        return self.root / FAILURES_FILENAME

    def write_failures(self, failures: Sequence[ShardFailure]) -> None:
        _write_json_atomic(
            self.failures_path,
            [failure.as_dict() for failure in failures],
        )

    def read_failures(self) -> List[ShardFailure]:
        if not self.failures_path.is_file():
            return []
        try:
            entries = json.loads(self.failures_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            return []
        return [ShardFailure.from_dict(entry) for entry in entries]

    # -- reporting -----------------------------------------------------

    def status(self) -> CampaignStatus:
        spec = self.read_spec()
        shards = self.load_shards()
        keys = spec.shard_keys()
        completed = [key for key in keys if key in shards]
        missing = [key for key in keys if key not in shards]
        return CampaignStatus(
            spec=spec,
            completed=completed,
            missing=missing,
            failures=self.read_failures(),
        )
