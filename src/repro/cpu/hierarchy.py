"""Per-core cache hierarchy: L1 -> L2 -> DRAM requests.

Mirrors the paper's gem5 system (Table I): each of the 4 cores owns a
64 KB L1 and a 256 KB L2.  A core access walks L1 then L2; only L2
misses and L2 dirty-victim write-backs become DRAM requests.  The
``clflush`` path (used by the attacker, as in Kim et al. [12]) evicts
the line from both levels so the next access always reaches DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, NamedTuple

from repro.cpu.cache import Cache


class MemoryRequest(NamedTuple):
    """A request leaving the cache hierarchy toward DRAM."""

    address: int
    is_write: bool


@dataclass
class HierarchyParams:
    """Table I cache parameters."""

    l1_size: int = 64 * 1024
    l1_ways: int = 4
    l2_size: int = 256 * 1024
    l2_ways: int = 8
    line_size: int = 64


class CacheHierarchy:
    """One core's L1 + L2, filtering accesses into DRAM requests."""

    def __init__(self, params: HierarchyParams = None):
        self.params = params or HierarchyParams()
        self.l1 = Cache(self.params.l1_size, self.params.l1_ways,
                        self.params.line_size)
        self.l2 = Cache(self.params.l2_size, self.params.l2_ways,
                        self.params.line_size)

    def access(self, address: int, is_write: bool = False) -> List[MemoryRequest]:
        """One core access; returns the DRAM requests it causes (0-2)."""
        requests: List[MemoryRequest] = []
        l1_result = self.l1.access(address, is_write)
        if l1_result.hit:
            return requests
        # L1 victim write-back goes to L2 (allocate-on-writeback)
        if l1_result.writeback is not None:
            l2_wb = self.l2.access(l1_result.writeback, is_write=True)
            if not l2_wb.hit and l2_wb.writeback is not None:
                requests.append(MemoryRequest(l2_wb.writeback, True))
            if not l2_wb.hit:
                # allocating the write-back line fetched nothing from
                # DRAM (the data came from L1), so no read request
                pass
        l2_result = self.l2.access(address, is_write=False)
        if not l2_result.hit:
            if l2_result.writeback is not None:
                requests.append(MemoryRequest(l2_result.writeback, True))
            requests.append(MemoryRequest(address, False))
        return requests

    def flush(self, address: int) -> List[MemoryRequest]:
        """``clflush``: drop the line everywhere; dirty data goes to DRAM."""
        requests: List[MemoryRequest] = []
        l1_wb = self.l1.flush(address)
        l2_wb = self.l2.flush(address)
        if l1_wb is not None:
            requests.append(MemoryRequest(l1_wb, True))
        elif l2_wb is not None:
            requests.append(MemoryRequest(l2_wb, True))
        return requests

    @property
    def dram_filter_rate(self) -> float:
        """Fraction of core accesses that never reached DRAM."""
        total = self.l1.stats.accesses
        if not total:
            return 0.0
        reached = self.l2.stats.misses
        return 1.0 - reached / total
