"""Physical-address to DRAM-coordinate layout.

Maps byte addresses onto (bank, row, column) the way a DDR4 controller
does: column bits at the bottom (one 8 KB row buffer per bank), bank
bits next (consecutive rows of memory stripe across banks), row bits on
top.  The Row-Hammer-relevant property is that two addresses 8 KB apart
land in different banks and addresses ``banks * 8 KB`` apart are
*physically adjacent rows* in the same bank -- which is exactly what an
attacker exploits to pick aggressor addresses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DRAMGeometry


@dataclass(frozen=True)
class DRAMAddressLayout:
    geometry: DRAMGeometry
    row_bytes: int = 8192

    @property
    def capacity_bytes(self) -> int:
        return (
            self.geometry.num_banks * self.geometry.rows_per_bank * self.row_bytes
        )

    def decode(self, address: int) -> tuple:
        """Byte address -> (bank, row, column)."""
        if not 0 <= address < self.capacity_bytes:
            raise ValueError(
                f"address {address:#x} outside device ({self.capacity_bytes:#x})"
            )
        column = address % self.row_bytes
        frame = address // self.row_bytes
        bank = frame % self.geometry.num_banks
        row = frame // self.geometry.num_banks
        return bank, row, column

    def encode(self, bank: int, row: int, column: int = 0) -> int:
        """(bank, row, column) -> byte address."""
        if not 0 <= bank < self.geometry.num_banks:
            raise ValueError(f"bank {bank} out of range")
        self.geometry._check_row(row)
        if not 0 <= column < self.row_bytes:
            raise ValueError(f"column {column} out of range")
        frame = row * self.geometry.num_banks + bank
        return frame * self.row_bytes + column

    def row_neighbors_address(self, address: int) -> tuple:
        """Addresses of the physically adjacent rows (same bank/column)."""
        bank, row, column = self.decode(address)
        return tuple(
            self.encode(bank, neighbor, column)
            for neighbor in self.geometry.neighbors(row)
        )
