"""Set-associative cache model (the gem5 substitute's L1/L2).

The paper's traces come from gem5 simulating 4 cores with 64 KB L1 and
256 KB L2 caches (Table I).  What matters for Row-Hammer evaluation is
the *filtering* the cache hierarchy applies to the core's access
stream: only misses and write-backs reach DRAM, so DRAM-level locality
differs sharply from core-level locality, and the attacker must defeat
the caches with ``clflush`` to hammer at all.

This module models exactly that: a write-back, write-allocate,
set-associative cache with true-LRU replacement and a flush operation.
Latency is not modelled (the trace time base comes from the core's
issue rate); only the hit/miss/writeback behaviour is.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one cache access."""

    hit: bool
    #: line-aligned address evicted and written back to the next level
    #: (None when the victim was clean or the access hit)
    writeback: Optional[int] = None
    #: line-aligned address fetched from the next level on a miss
    fill: Optional[int] = None


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    flushes: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class Cache:
    """One level of a write-back, write-allocate cache."""

    def __init__(self, size_bytes: int, ways: int, line_size: int = 64):
        if line_size < 1 or size_bytes % (ways * line_size):
            raise ValueError(
                f"size {size_bytes} not divisible into {ways} ways of "
                f"{line_size}-byte lines"
            )
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_size = line_size
        self.sets = size_bytes // (ways * line_size)
        if self.sets < 1:
            raise ValueError("cache must have at least one set")
        # each set: OrderedDict tag -> dirty flag, LRU order = insertion
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.sets)]
        self.stats = CacheStats()

    def _locate(self, address: int):
        line = address // self.line_size
        return line % self.sets, line // self.sets

    def _line_address(self, set_index: int, tag: int) -> int:
        return (tag * self.sets + set_index) * self.line_size

    def access(self, address: int, is_write: bool = False) -> AccessResult:
        """Access one byte address; returns hit/miss and any writeback."""
        self.stats.accesses += 1
        set_index, tag = self._locate(address)
        ways = self._sets[set_index]
        if tag in ways:
            self.stats.hits += 1
            dirty = ways.pop(tag) or is_write
            ways[tag] = dirty  # move to MRU
            return AccessResult(hit=True)
        self.stats.misses += 1
        writeback = None
        if len(ways) >= self.ways:
            victim_tag, victim_dirty = ways.popitem(last=False)  # LRU
            if victim_dirty:
                self.stats.writebacks += 1
                writeback = self._line_address(set_index, victim_tag)
        ways[tag] = is_write
        fill = self._line_address(set_index, tag)
        return AccessResult(hit=False, writeback=writeback, fill=fill)

    def flush(self, address: int) -> Optional[int]:
        """``clflush``: evict the line; returns a writeback if dirty."""
        self.stats.flushes += 1
        set_index, tag = self._locate(address)
        ways = self._sets[set_index]
        if tag not in ways:
            return None
        dirty = ways.pop(tag)
        if dirty:
            self.stats.writebacks += 1
            return self._line_address(set_index, tag)
        return None

    def contains(self, address: int) -> bool:
        set_index, tag = self._locate(address)
        return tag in self._sets[set_index]

    @property
    def occupancy(self) -> int:
        return sum(len(ways) for ways in self._sets)
