"""Multi-core system model: cores + caches -> DRAM activation trace.

This is the gem5 substitute end to end (Table I: 4 cores at 3.4 GHz,
64 KB L1, 256 KB L2, DDR4):

1. each core runs a :class:`~repro.cpu.workloads.CoreWorkload` (or the
   attacker's :class:`~repro.cpu.attacker.HammerKernel`) through its
   private cache hierarchy;
2. L2 misses and write-backs become DRAM requests;
3. an open-page row-buffer model per bank turns requests into row
   *activations* -- a request to the already-open row needs no
   activation (that filtering is why benign workloads activate far
   less than they access);
4. the activations of each refresh interval are emitted as a standard
   :class:`~repro.traces.record.Trace`, directly consumable by the
   mitigation simulation engine.

Activations carry the ground-truth ``is_attack`` flag when they were
caused by the attacker core (including its write-backs), which the
metrics layer uses for false-positive attribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.config import SimConfig
from repro.cpu.attacker import HammerKernel
from repro.cpu.hierarchy import CacheHierarchy, MemoryRequest
from repro.cpu.layout import DRAMAddressLayout
from repro.cpu.workloads import CoreWorkload
from repro.traces.record import Trace, TraceMeta, TraceRecord


@dataclass
class CoreState:
    """One core: its access source and cache hierarchy."""

    workload: Optional[CoreWorkload]
    hierarchy: CacheHierarchy
    is_attacker: bool = False
    kernel: Optional[HammerKernel] = None
    _source: Optional[Iterator] = field(default=None, repr=False)

    def requests_for(self, accesses: int) -> List[Tuple[MemoryRequest, bool]]:
        """Run *accesses* core operations; return tagged DRAM requests."""
        out: List[Tuple[MemoryRequest, bool]] = []
        if self.is_attacker:
            for _ in range(accesses):
                for request in self.kernel.step():
                    out.append((request, True))
            return out
        if self._source is None:
            self._source = self.workload.accesses()
        for _ in range(accesses):
            address, is_write = next(self._source)
            for request in self.hierarchy.access(address, is_write):
                out.append((request, False))
        return out


class MultiCoreSystem:
    """Cores + caches + row-buffer model producing an activation trace."""

    def __init__(
        self,
        config: SimConfig,
        workloads: Sequence[CoreWorkload],
        attacker: Optional[HammerKernel] = None,
        accesses_per_core_per_interval: int = 150,
        attacker_accesses_per_interval: int = 80,
        layout: Optional[DRAMAddressLayout] = None,
    ):
        self.config = config
        self.layout = layout or DRAMAddressLayout(config.geometry)
        self.cores: List[CoreState] = [
            CoreState(workload=workload, hierarchy=CacheHierarchy())
            for workload in workloads
        ]
        if attacker is not None:
            self.cores.append(
                CoreState(
                    workload=None,
                    hierarchy=attacker.hierarchy,
                    is_attacker=True,
                    kernel=attacker,
                )
            )
        self.accesses_per_core = accesses_per_core_per_interval
        self.attacker_accesses = attacker_accesses_per_interval
        #: open row per bank (row-buffer model); -1 = closed
        self._open_rows = [-1] * config.geometry.num_banks
        #: total DRAM requests vs activations, for rate reporting
        self.requests_seen = 0
        self.activations_emitted = 0

    def _activations_for_interval(self) -> List[Tuple[int, int, bool]]:
        """(bank, row, is_attack) activations of one refresh interval."""
        activations: List[Tuple[int, int, bool]] = []
        per_core: List[List[Tuple[MemoryRequest, bool]]] = []
        for core in self.cores:
            budget = (
                self.attacker_accesses if core.is_attacker
                else self.accesses_per_core
            )
            per_core.append(core.requests_for(budget))
        # interleave the cores round-robin, as the memory controller's
        # arbiter would, so no core monopolises the per-interval budget
        pending: List[Tuple[MemoryRequest, bool]] = []
        for slot in range(max((len(q) for q in per_core), default=0)):
            for queue in per_core:
                if slot < len(queue):
                    pending.append(queue[slot])
        for request, is_attack in pending:
            self.requests_seen += 1
            bank, row, _column = self.layout.decode(request.address)
            if self._open_rows[bank] == row:
                continue  # row-buffer hit: no activation
            self._open_rows[bank] = row
            activations.append((bank, row, is_attack))
        return activations

    def generate_trace(self, total_intervals: int) -> Trace:
        """Produce the activation trace of *total_intervals* intervals."""
        interval_ns = int(self.config.timing.refresh_interval_ns)
        max_acts = self.config.timing.max_acts_per_interval
        meta = TraceMeta(
            total_intervals=total_intervals,
            interval_ns=interval_ns,
            num_banks=self.config.geometry.num_banks,
        )

        def generate() -> Iterator[TraceRecord]:
            for interval in range(total_intervals):
                activations = self._activations_for_interval()
                per_bank_counts = [0] * self.config.geometry.num_banks
                start = interval * interval_ns
                emitted = 0
                for bank, row, is_attack in activations:
                    if per_bank_counts[bank] >= max_acts:
                        continue  # bank saturated this interval
                    per_bank_counts[bank] += 1
                    slot = emitted
                    emitted += 1
                    time_ns = start + slot * max(
                        1, interval_ns // max(len(activations), 1)
                    )
                    self.activations_emitted += 1
                    yield TraceRecord(time_ns, bank, row, is_attack)

        return Trace(meta=meta, records=generate())

    @property
    def row_buffer_hit_rate(self) -> float:
        if not self.requests_seen:
            return 0.0
        return 1.0 - self.activations_emitted / self.requests_seen
