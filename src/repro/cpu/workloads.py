"""Core-level synthetic workloads (SPEC CPU2006 archetypes).

The paper's workload is "a mixed load from the SPEC CPU2006 benchmark
suite".  Offline we cannot run SPEC, so this module provides access-
pattern *archetypes* capturing the memory behaviours the suite is known
for; a mixed load assigns one archetype per core:

* :class:`StreamingWorkload`   -- long sequential sweeps (libquantum-,
  lbm-like): prefetch-friendly, high DRAM bandwidth, low reuse;
* :class:`PointerChaseWorkload` -- dependent random loads over a large
  working set (mcf-, omnetpp-like): cache-hostile, row-buffer-hostile;
* :class:`StridedWorkload`      -- fixed-stride array walks (milc-,
  leslie3d-like);
* :class:`HotSpotWorkload`      -- zipf-popular pages with occasional
  cold misses (gcc-, perlbench-like): cache-friendly, hot DRAM rows;
* :class:`BlockedComputeWorkload` -- repeated passes over a cache-sized
  block with periodic block changes (bzip2-, h264-like).

Each workload yields byte addresses (with a read/write flag) inside a
private physical region, deterministically from a seed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, Tuple

from repro.rng import stream

Access = Tuple[int, bool]  # (byte address, is_write)


class CoreWorkload(ABC):
    """A deterministic stream of core memory accesses."""

    name: str = "abstract"

    def __init__(self, region_start: int, region_size: int, seed: int = 0):
        if region_size <= 0:
            raise ValueError("region_size must be positive")
        self.region_start = region_start
        self.region_size = region_size
        self._rng = stream(seed, "core-workload", self.name, region_start)

    def _clamp(self, offset: int) -> int:
        return self.region_start + offset % self.region_size

    @abstractmethod
    def accesses(self) -> Iterator[Access]:
        """Yield an unbounded access stream."""


class StreamingWorkload(CoreWorkload):
    name = "streaming"

    def __init__(self, region_start, region_size, seed=0, write_fraction=0.3,
                 element_bytes=8):
        super().__init__(region_start, region_size, seed)
        self.write_fraction = write_fraction
        #: bytes per element: 8 sequential loads share one cache line,
        #: so the DRAM sees one miss per line, as real streaming does
        self.element_bytes = element_bytes

    def accesses(self) -> Iterator[Access]:
        offset = 0
        while True:
            yield self._clamp(offset), self._rng.random() < self.write_fraction
            offset += self.element_bytes


class PointerChaseWorkload(CoreWorkload):
    name = "pointer-chase"

    def accesses(self) -> Iterator[Access]:
        while True:
            offset = self._rng.randrange(self.region_size)
            yield self._clamp(offset), False


class StridedWorkload(CoreWorkload):
    name = "strided"

    def __init__(self, region_start, region_size, seed=0, stride=4096):
        super().__init__(region_start, region_size, seed)
        if stride <= 0:
            raise ValueError("stride must be positive")
        self.stride = stride

    def accesses(self) -> Iterator[Access]:
        offset = 0
        while True:
            yield self._clamp(offset), False
            offset += self.stride


class HotSpotWorkload(CoreWorkload):
    name = "hotspot"

    def __init__(self, region_start, region_size, seed=0,
                 hot_pages=32, page_size=4096, hot_fraction=0.9):
        super().__init__(region_start, region_size, seed)
        pages = max(1, region_size // page_size)
        count = min(hot_pages, pages)
        self.page_size = page_size
        self._hot = self._rng.sample(range(pages), count)
        self.hot_fraction = hot_fraction

    def accesses(self) -> Iterator[Access]:
        pages = max(1, self.region_size // self.page_size)
        while True:
            if self._rng.random() < self.hot_fraction:
                page = self._hot[self._rng.randrange(len(self._hot))]
            else:
                page = self._rng.randrange(pages)
            offset = page * self.page_size + self._rng.randrange(self.page_size)
            yield self._clamp(offset), self._rng.random() < 0.2


class BlockedComputeWorkload(CoreWorkload):
    name = "blocked-compute"

    def __init__(self, region_start, region_size, seed=0,
                 block_size=128 * 1024, passes_per_block=4):
        super().__init__(region_start, region_size, seed)
        self.block_size = min(block_size, region_size)
        self.passes_per_block = passes_per_block

    def accesses(self) -> Iterator[Access]:
        block_start = 0
        while True:
            for _ in range(self.passes_per_block):
                for line in range(0, self.block_size, 64):
                    yield self._clamp(block_start + line), line % 256 == 0
            block_start = self._rng.randrange(
                max(1, self.region_size - self.block_size)
            )


def spec_mixed_load(region_size_per_core: int, seed: int = 0):
    """The paper's 4-core mixed load: one archetype per core."""
    kinds = (
        HotSpotWorkload,
        StreamingWorkload,
        PointerChaseWorkload,
        BlockedComputeWorkload,
    )
    workloads = []
    for core, kind in enumerate(kinds):
        workloads.append(
            kind(
                region_start=core * region_size_per_core,
                region_size=region_size_per_core,
                seed=seed + core,
            )
        )
    return workloads
