"""The attacker's code, modelled at the core level.

The paper's attacker is "similar to the attack suggested in [12] using
cache flushing": a loop that reads each aggressor address and
immediately ``clflush``-es it, so every iteration reaches DRAM and
activates the aggressor row.  This module models that kernel running
on its own core with its own cache hierarchy -- the same path benign
accesses take -- so the attack's DRAM footprint emerges from the cache
model instead of being injected directly.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from repro.cpu.hierarchy import CacheHierarchy, MemoryRequest
from repro.cpu.layout import DRAMAddressLayout


class HammerKernel:
    """``for a in aggressors: load a; clflush a`` -- forever."""

    def __init__(
        self,
        layout: DRAMAddressLayout,
        bank: int,
        aggressor_rows: Sequence[int],
        hierarchy: CacheHierarchy = None,
    ):
        if not aggressor_rows:
            raise ValueError("need at least one aggressor row")
        self.layout = layout
        self.bank = bank
        self.aggressor_rows = tuple(aggressor_rows)
        self.addresses = tuple(
            layout.encode(bank, row) for row in self.aggressor_rows
        )
        self.hierarchy = hierarchy or CacheHierarchy()
        self._position = 0

    def step(self) -> List[MemoryRequest]:
        """One load + clflush on the next aggressor; returns the DRAM
        requests the pair generated (the load misses every time because
        the previous iteration flushed the line)."""
        address = self.addresses[self._position]
        self._position = (self._position + 1) % len(self.addresses)
        requests = self.hierarchy.access(address, is_write=False)
        requests.extend(self.hierarchy.flush(address))
        return requests

    def requests(self) -> Iterator[MemoryRequest]:
        while True:
            for request in self.step():
                yield request


def pick_aggressor_rows(
    layout: DRAMAddressLayout, victim_row: int, sided: int = 2
) -> Tuple[int, ...]:
    """Aggressor rows around *victim_row* (1 = single, 2 = double sided)."""
    geometry = layout.geometry
    geometry._check_row(victim_row)
    if sided == 1:
        row = victim_row + 1 if victim_row + 1 < geometry.rows_per_bank else victim_row - 1
        return (row,)
    if sided == 2:
        if not 0 < victim_row < geometry.rows_per_bank - 1:
            raise ValueError("double-sided attack needs an interior victim")
        return (victim_row - 1, victim_row + 1)
    raise ValueError("sided must be 1 or 2")
