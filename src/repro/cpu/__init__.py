"""Core-level substrate: caches, workload archetypes, attacker kernel,
and the multi-core system that produces DRAM activation traces (the
gem5 substitute of DESIGN.md section 2)."""

from repro.cpu.attacker import HammerKernel, pick_aggressor_rows
from repro.cpu.cache import AccessResult, Cache, CacheStats
from repro.cpu.hierarchy import CacheHierarchy, HierarchyParams, MemoryRequest
from repro.cpu.layout import DRAMAddressLayout
from repro.cpu.system import CoreState, MultiCoreSystem
from repro.cpu.workloads import (
    BlockedComputeWorkload,
    CoreWorkload,
    HotSpotWorkload,
    PointerChaseWorkload,
    StreamingWorkload,
    StridedWorkload,
    spec_mixed_load,
)

__all__ = [
    "AccessResult",
    "BlockedComputeWorkload",
    "Cache",
    "CacheHierarchy",
    "CacheStats",
    "CoreState",
    "CoreWorkload",
    "DRAMAddressLayout",
    "HammerKernel",
    "HierarchyParams",
    "HotSpotWorkload",
    "MemoryRequest",
    "MultiCoreSystem",
    "PointerChaseWorkload",
    "StreamingWorkload",
    "StridedWorkload",
    "pick_aggressor_rows",
    "spec_mixed_load",
]
