"""Small statistics helpers for multi-seed experiment aggregation."""

from __future__ import annotations

import math
from typing import Sequence


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def std(values: Sequence[float]) -> float:
    """Sample standard deviation (0 for fewer than two values)."""
    if len(values) < 2:
        return 0.0
    center = mean(values)
    return math.sqrt(sum((v - center) ** 2 for v in values) / (len(values) - 1))


def median(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def mean_pm_std(values: Sequence[float], digits: int = 4) -> str:
    """Format as the paper's ``(mu +- sigma)%`` cells of Table III."""
    return f"({mean(values):.{digits}f} +- {std(values):.{digits}f})%"
