"""Closed-form models of the mitigation techniques.

Independent analytic predictions used to cross-validate the simulator
(and to extrapolate to scales too slow to simulate in Python):

* **PARA**: a trigger is a Bernoulli(p) per activation costing one
  extra activation, so overhead% = 100·p exactly.
* **TiVaPRoMi** (no history table): an activation at window-relative
  interval ``i`` of a row refreshed at ``f`` triggers with
  ``w_eff(i-f)·Pbase``; with activation phases uniform over the window
  the expected per-activation probability integrates to
  ``E[w_eff]·Pbase``, and a trigger costs two extra activations.
* **Flooding**: hammering one row at ``rate`` activations per interval
  from starting weight ``w0`` accrues the cumulative hazard
  ``H(n) = rate · Pbase · Σ w_eff(w0 + k)``; the first trigger is the
  first success of inhomogeneous Bernoulli trials, so
  ``P(no trigger in n intervals) = exp(-H(n))`` (Poissonised) and the
  median reaction is where ``H = ln 2``.
* **Tabled counters** (TWiCe/CRA): deterministic -- extra activations
  are ``2 · floor(aggressor_acts / trigger_threshold)``.

These formulas are what EXPERIMENTS.md uses to argue which paper
numbers are reachable under a literal reading of Eq. 1/Eq. 2 (the
flooding discussion) and what the integration tests check the engine
against.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.config import SimConfig
from repro.core.weights import log_weight

LN2 = math.log(2.0)


def para_overhead_pct(probability: float = 0.001) -> float:
    """PARA's exact expected overhead in percent."""
    return 100.0 * probability


def expected_weight(variant: str, refint: int) -> float:
    """``E[w_eff]`` over a uniformly distributed weight in [0, refint)."""
    weights = range(refint)
    if variant == "linear":
        return (refint - 1) / 2.0
    if variant == "log":
        return sum(log_weight(w) for w in weights) / refint
    raise ValueError(f"unknown variant {variant!r}")


def tivapromi_overhead_pct_no_history(
    variant: str, config: SimConfig
) -> float:
    """Upper-bound overhead with the history table disabled.

    A trigger activates both neighbours (cost 2); real runs come in
    below this because the history table suppresses repeat triggers for
    hot rows.
    """
    mean_weight = expected_weight(
        "linear" if variant == "linear" else "log", config.geometry.refint
    )
    per_act = min(1.0, mean_weight * config.pbase)
    return 200.0 * per_act


def flood_hazard(
    variant: str,
    intervals: int,
    start_weight: int,
    rate: float,
    config: SimConfig,
) -> float:
    """Cumulative hazard after *intervals* of flooding one row.

    ``variant``: 'linear', 'log', or 'capromi' (one collective decision
    per interval with probability ``min(1, rate·w_log·Pbase)`` -- for
    the hazard sum the cap matters only at extreme weights).
    """
    total = 0.0
    refint = config.geometry.refint
    for k in range(intervals):
        weight = (start_weight + k) % refint
        if variant == "linear":
            effective = weight
            total += rate * min(1.0, effective * config.pbase)
        elif variant == "log":
            effective = log_weight(weight)
            total += rate * min(1.0, effective * config.pbase)
        elif variant == "capromi":
            per_interval = min(1.0, rate * log_weight(weight) * config.pbase)
            # hazard of a single Bernoulli with probability p
            total += -math.log(max(1e-12, 1.0 - per_interval)) if per_interval < 1 else 30.0
        else:
            raise ValueError(f"unknown variant {variant!r}")
    return total


def flood_median_acts(
    variant: str,
    config: SimConfig,
    start_weight: int = 0,
    rate: Optional[float] = None,
    max_windows: int = 4,
) -> Optional[float]:
    """Median activations until the first mitigation under flooding.

    Solves ``H(n) = ln 2`` interval by interval; None when the hazard
    never reaches ln 2 within *max_windows* windows.
    """
    rate = rate or config.timing.max_acts_per_interval
    refint = config.geometry.refint
    total = 0.0
    for k in range(refint * max_windows):
        weight = (start_weight + k) % refint
        if variant == "linear":
            step = rate * min(1.0, weight * config.pbase)
        elif variant == "log":
            step = rate * min(1.0, log_weight(weight) * config.pbase)
        elif variant == "capromi":
            per_interval = min(1.0, rate * log_weight(weight) * config.pbase)
            step = (
                -math.log(max(1e-12, 1.0 - per_interval))
                if per_interval < 1.0
                else 30.0
            )
        else:
            raise ValueError(f"unknown variant {variant!r}")
        if total + step >= LN2:
            # linear interpolation inside the interval
            fraction = (LN2 - total) / step if step > 0 else 1.0
            return (k + fraction) * rate
        total += step
    return None


def miss_probability(
    variant: str,
    config: SimConfig,
    activations: int,
    start_weight: int = 0,
    rate: Optional[float] = None,
) -> float:
    """P(no mitigation before *activations* aggressor activations)."""
    rate = rate or config.timing.max_acts_per_interval
    intervals = math.ceil(activations / rate)
    hazard = flood_hazard(variant, intervals, start_weight, rate, config)
    return math.exp(-hazard)


def counter_overhead_pct(
    aggressor_activations: int,
    total_activations: int,
    trigger_threshold: int,
) -> float:
    """TWiCe/CRA deterministic overhead (2 extra acts per trigger)."""
    if total_activations <= 0:
        return 0.0
    triggers = aggressor_activations // trigger_threshold
    return 100.0 * 2 * triggers / total_activations
