"""Analysis layer: area model, statistics, report rendering."""

from repro.analysis.area import (
    AreaEstimate,
    PRIMITIVES,
    TechniqueArea,
    area_estimate,
    fig4_points,
    search_parallelism,
    storage_reduction_vs_twice,
    table3_resources,
)
from repro.analysis.pareto import (
    ParetoPoint,
    classify,
    dominated_by,
    from_fig4,
    pareto_frontier,
)
from repro.analysis.report import (
    render_comparison,
    render_fig4,
    render_flooding,
    render_table,
    render_table1,
    render_table2,
    render_table3,
)
from repro.analysis.stats import mean, mean_pm_std, median, std
from repro.analysis.theory import (
    flood_median_acts,
    miss_probability,
    para_overhead_pct,
)
from repro.analysis.trace_stats import TraceStatistics, characterize

__all__ = [
    "AreaEstimate",
    "ParetoPoint",
    "PRIMITIVES",
    "TechniqueArea",
    "area_estimate",
    "classify",
    "dominated_by",
    "fig4_points",
    "from_fig4",
    "mean",
    "mean_pm_std",
    "pareto_frontier",
    "median",
    "render_comparison",
    "render_fig4",
    "render_flooding",
    "render_table",
    "render_table1",
    "render_table2",
    "render_table3",
    "search_parallelism",
    "std",
    "storage_reduction_vs_twice",
    "table3_resources",
    "TraceStatistics",
    "characterize",
    "flood_median_acts",
    "miss_probability",
    "para_overhead_pct",
]
