"""Render the paper's tables and figure series as ASCII reports.

Every benchmark prints through these helpers so the regenerated rows
look like the paper's tables and can be diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Mapping, Sequence

from repro.analysis.area import TechniqueArea, table3_resources
from repro.config import SimConfig
from repro.core.timing import cycle_report

if TYPE_CHECKING:  # imported lazily at call time: sim imports analysis
    from repro.adversary.frontier import AdversaryFrontier
    from repro.adversary.search import SearchOutcome
    from repro.sim.attacks import FloodingOutcome
    from repro.sim.experiment import TechniqueAggregate


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Minimal fixed-width table renderer."""
    widths = [len(header) for header in headers]
    for row in rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = []
    fmt = "  ".join(f"{{:<{width}}}" for width in widths)
    lines.append(fmt.format(*headers))
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append(fmt.format(*row))
    return "\n".join(lines)


def render_table1(config: SimConfig) -> str:
    """Table I: simulated system specification."""
    timing = config.timing
    geometry = config.geometry
    rows = [
        ("Refresh window", f"{timing.refresh_window_ms} ms"),
        ("Refresh interval", f"{timing.refresh_interval_us} us"),
        ("Activation to activation", f"{timing.act_to_act_ns} ns"),
        ("Refresh time", f"{timing.refresh_time_ns} ns"),
        ("DRAM I/O frequency", f"{timing.io_freq_ghz} GHz"),
        ("Banks", str(geometry.num_banks)),
        ("Rows per bank", str(geometry.rows_per_bank)),
        ("Rows per refresh interval", str(geometry.rows_per_interval)),
        ("Refresh intervals per window (RefInt)", str(geometry.refint)),
        ("Max activations per interval", str(timing.max_acts_per_interval)),
        ("Bit-flip activation threshold", str(config.flip_threshold)),
        ("Pbase", f"2^-{round(-__import__('math').log2(config.pbase))}"),
        ("RefInt * Pbase", f"{config.max_probability:.2e}"),
        ("History table entries", str(config.history_table_entries)),
        ("CaPRoMi counter table entries", str(config.counter_table_entries)),
    ]
    return render_table(("parameter", "value"), rows)


def render_table2(config: SimConfig) -> str:
    """Table II: FSM cycles per observed act/ref command."""
    return "\n".join(cycle_report(config))


def render_table3(
    config: SimConfig,
    comparison: Mapping[str, "TechniqueAggregate"],
    resources: Dict[str, TechniqueArea] = None,
    frontiers: Mapping[str, "AdversaryFrontier"] = None,
) -> str:
    """Table III: resources, vulnerability, overhead, FPR.

    With *frontiers* (per-technique adversary-search results), a second
    section lists the worst pattern the red-team fuzzer discovered
    against each technique -- the empirical margin next to the paper's
    literature-based vulnerability column.
    """
    from repro.sim.attacks import vulnerability_verdicts

    resources = resources or table3_resources(config)
    verdicts = vulnerability_verdicts(list(resources), frontiers=frontiers)
    para = resources["PARA"]
    rows = []
    for name, area in resources.items():
        aggregate = comparison.get(name)
        overhead = aggregate.overhead_cell() if aggregate else "n/a"
        fpr = f"{aggregate.fpr_mean:.4f}%" if aggregate else "n/a"
        vulnerable, _reason = verdicts[name]
        rows.append(
            (
                name,
                f"{area.luts_ddr4:,} ({area.relative_to(para):.1f}x)",
                f"{area.luts_ddr3:,}",
                "Yes" if vulnerable else "No",
                overhead,
                fpr,
            )
        )
    table = render_table(
        (
            "technique",
            "LUTs DDR4 (vs PARA)",
            "LUTs DDR3",
            "vulnerable",
            "overhead mu+-sigma",
            "FPR",
        ),
        rows,
    )
    discovered = [
        (name, frontier.best)
        for name, frontier in (frontiers or {}).items()
        if frontier.best is not None
    ]
    if discovered:
        extra = render_table(
            ("technique", "worst discovered pattern",
             "acts to 1st mitigation", "acts/window"),
            [
                (name, best.name, f"{best.fitness:,.0f}",
                 f"{best.acts_per_window:,}")
                for name, best in discovered
            ],
        )
        table += "\n\n" + extra
    return table


def render_techniques(
    config: SimConfig,
    include_extended: bool = True,
    include_modern: bool = True,
) -> str:
    """The `repro techniques` listing: every registered technique.

    One row per technique with its registry tier, fused-dedup traits,
    per-bank table bytes, a DDR4 LUT estimate where the area model
    covers it, and the documented vulnerabilities.
    """
    from repro.analysis.area import area_estimate
    from repro.mitigations.registry import (
        make_mitigation,
        technique_names,
        technique_tier,
    )

    rows = []
    for name in technique_names(
        include_extended=include_extended, include_modern=include_modern
    ):
        cls_instance = make_mitigation(name, config)
        try:
            luts = f"{area_estimate(name, config, config.timing).total:,}"
        except ValueError:
            luts = "n/a"
        vulnerabilities = "; ".join(type(cls_instance).known_vulnerabilities)
        rows.append(
            (
                name,
                technique_tier(name),
                "yes" if type(cls_instance).consumes_rng else "no",
                "yes" if type(cls_instance).consumes_pbase else "no",
                f"{cls_instance.table_bytes:,}",
                luts,
                vulnerabilities or "none documented",
            )
        )
    return render_table(
        (
            "technique",
            "tier",
            "rng",
            "pbase",
            "table B/bank",
            "LUTs DDR4",
            "known vulnerabilities",
        ),
        rows,
    )


def render_fig4(points: Sequence[Mapping[str, float]]) -> str:
    """Fig. 4: table size vs activation overhead (log-log scatter data)."""
    ordered = sorted(points, key=lambda point: point["table_bytes"])
    rows = [
        (
            str(point["technique"]),
            f"{point['table_bytes']:.0f}",
            f"{point['overhead_pct']:.4f}",
        )
        for point in ordered
    ]
    table = render_table(
        ("technique", "table bytes/bank", "overhead %"), rows
    )
    return table + "\n\n" + _ascii_scatter(ordered)


def _ascii_scatter(
    points: Sequence[Mapping[str, float]], width: int = 64, height: int = 16
) -> str:
    """Crude log-log scatter of the Fig. 4 tradeoff."""
    import math

    xs = [math.log10(max(point["table_bytes"], 1.0)) for point in points]
    ys = []
    for point in points:
        overhead = point["overhead_pct"]
        ys.append(math.log10(overhead) if overhead > 0 else -4.0)
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for point, x, y in zip(points, xs, ys):
        column = int((x - x_low) / x_span * (width - 1))
        row = int((y_high - y) / y_span * (height - 1))
        marker = str(point["technique"])[0]
        grid[row][column] = marker
    lines = ["overhead% (log) ^  markers = technique initials"]
    lines.extend("".join(row) for row in grid)
    lines.append("-" * width + "> table bytes/bank (log)")
    return "\n".join(lines)


def render_flooding(outcomes: Sequence["FloodingOutcome"]) -> str:
    """The Section IV flooding experiment summary."""
    rows = []
    for outcome in outcomes:
        acts = outcome.median_acts
        rows.append(
            (
                outcome.technique,
                str(outcome.start_weight),
                f"{acts:,.0f}" if acts is not None else "no trigger",
                "yes" if outcome.below_safety_margin else "NO",
            )
        )
    return render_table(
        ("technique", "start weight", "median acts to 1st mitigation", "<69K?"),
        rows,
    )


def render_adversary(outcome: "SearchOutcome") -> str:
    """Adversary-search summary: headline numbers + Pareto frontier.

    The headline compares the best discovered pattern against the best
    canned seed (improvement > 1 means the fuzzer found something the
    literature corpus does not cover); the frontier table lists every
    non-dominated (activation budget, activations-to-first-mitigation)
    pattern.
    """
    corpus, best = outcome.corpus_best, outcome.best
    header_rows = [
        ("technique", outcome.technique),
        ("strategy", outcome.strategy),
        ("evaluations", f"{outcome.evaluations} (budget {outcome.budget})"),
        ("generations", str(outcome.generations)),
        ("best canned seed",
         f"{corpus.fitness:,.0f} acts ({corpus.genome.name})"),
        ("best discovered",
         f"{best.fitness:,.0f} acts ({best.genome.name})"),
        ("improvement", f"{outcome.improvement:.2f}x"),
    ]
    sections = [render_table(("field", "value"), header_rows)]
    rows = [
        (
            point.name,
            f"{point.acts_per_window:,}",
            f"{point.fitness:,.0f}",
            f"{point.escape_rate:.0%}",
            str(point.generation),
        )
        for point in outcome.frontier.points
    ]
    sections.append(render_table(
        ("pattern", "acts/window", "acts to 1st mitigation", "escape", "gen"),
        rows,
    ))
    return "\n\n".join(sections)


def render_comparison(comparison: Mapping[str, "TechniqueAggregate"]) -> str:
    """Generic per-technique summary table."""
    rows = [
        (
            name,
            aggregate.overhead_cell(),
            f"{aggregate.fpr_mean:.4f}%",
            str(aggregate.total_flips),
            f"{aggregate.table_bytes:,}",
        )
        for name, aggregate in comparison.items()
    ]
    return render_table(
        ("technique", "overhead", "FPR", "flips", "table B/bank"), rows
    )


def render_manifest(manifest) -> str:
    """Human-readable summary of a :class:`~repro.telemetry.RunManifest`.

    The header recaps the provenance fields (config hash, engine,
    seeds, git revision), then one row per technique, then the headline
    metric counters when the run collected any.
    """
    header_rows = [
        ("engine", manifest.engine),
        ("config hash", manifest.config_hash),
        ("seeds", ", ".join(str(seed) for seed in manifest.seeds) or "-"),
        ("git rev", (manifest.git_rev or "unknown")[:12]),
        ("created", manifest.created_at or "-"),
        ("schema", str(manifest.schema_version)),
    ]
    if manifest.total_intervals is not None:
        header_rows.append(("intervals", str(manifest.total_intervals)))
    sections = [render_table(("field", "value"), header_rows)]
    if manifest.results:
        rows = [
            (
                name,
                str(summary.get("runs", 0)),
                f"{summary.get('overhead_mean_pct', 0.0):.4f}%",
                f"{summary.get('fpr_mean_pct', 0.0):.4f}%",
                str(summary.get("total_flips", 0)),
                f"{summary.get('wall_seconds', 0.0):.2f}s",
            )
            for name, summary in sorted(manifest.results.items())
        ]
        sections.append(render_table(
            ("technique", "runs", "overhead", "FPR", "flips", "wall"), rows
        ))
    counters = manifest.metrics.get("counters", {}) if manifest.metrics else {}
    if counters:
        rows = [
            (name, f"{entry.get('value', 0):,}"
                   + (" (saturated)" if entry.get("saturated") else ""))
            for name, entry in sorted(counters.items())
        ]
        sections.append(render_table(("counter", "value"), rows))
    return "\n\n".join(sections)


def render_manifest_diff(
    a_label: str, b_label: str, differences: Mapping[str, tuple]
) -> str:
    """Render :func:`~repro.telemetry.diff_manifests` output."""
    if not differences:
        return f"manifests match: {a_label} == {b_label} (volatile fields ignored)"
    rows = [
        (path, str(left), str(right))
        for path, (left, right) in sorted(differences.items())
    ]
    table = render_table((
        "path", f"a: {a_label}", f"b: {b_label}"
    ), rows)
    return f"{len(rows)} difference(s):\n\n{table}"


def render_campaign_failures(failures: Sequence) -> str:
    """Degraded-shard table for a fault-tolerant campaign."""
    rows = [
        (
            failure.technique,
            str(failure.seed),
            str(failure.attempts),
            failure.kind,
            failure.error,
        )
        for failure in failures
    ]
    table = render_table(
        ("technique", "seed", "attempts", "kind", "error"), rows
    )
    return f"{len(rows)} degraded shard(s):\n\n{table}"


def render_campaign(
    comparison: Mapping[str, "TechniqueAggregate"],
    failures: Sequence = (),
) -> str:
    """Campaign summary: one line per technique plus degraded shards."""
    sections = ["\n".join(
        aggregate.summary() for aggregate in comparison.values()
    )]
    if failures:
        sections.append(render_campaign_failures(failures))
    return "\n\n".join(sections)


def render_campaign_status(status, aggregates=None) -> str:
    """Render a :class:`~repro.campaign.store.CampaignStatus`.

    Header recaps the stored spec; the body shows per-technique
    completed seeds so an interrupted campaign's remaining work is
    visible at a glance.  Pass the store's incremental
    ``partial_aggregates()`` as *aggregates* to append the summary
    lines of every technique with at least one landed shard -- the
    mid-run numbers, folded in canonical order, that the completed
    campaign will report for those cells.
    """
    spec = status.spec
    header_rows = [
        ("engine", spec.engine),
        ("config hash", spec.config_hash),
        ("intervals", str(spec.total_intervals)),
        ("seeds", ", ".join(str(seed) for seed in spec.seeds)),
        ("shards", f"{len(status.completed)}/{status.total} completed"),
        ("state", "complete" if status.complete else "resumable"),
    ]
    sections = [render_table(("field", "value"), header_rows)]
    done = {}
    for technique, seed in status.completed:
        done.setdefault(technique, []).append(seed)
    rows = [
        (
            technique,
            ", ".join(str(s) for s in done.get(technique, [])) or "-",
            ", ".join(
                str(seed) for name, seed in status.missing
                if name == technique
            ) or "-",
        )
        for technique in spec.techniques
    ]
    sections.append(render_table(("technique", "done", "missing"), rows))
    if aggregates:
        lines = [
            aggregate.summary()
            for aggregate in aggregates.values()
            if aggregate.results
        ]
        if lines:
            sections.append("\n".join(lines))
    if status.failures:
        sections.append(render_campaign_failures(status.failures))
    return "\n\n".join(sections)


def _fmt_eta(seconds) -> str:
    if seconds is None:
        return "-"
    seconds = int(round(seconds))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


def render_campaign_live(snapshot, workers=(), stale=(), now=None) -> str:
    """One frame of ``campaign-status --follow``.

    *snapshot* is a :class:`~repro.telemetry.statusbus.CampaignSnapshot`
    (or ``None`` while the runner has not published one yet), *workers*
    the heartbeats read from the status bus, *stale* the worker names
    flagged stale, and *now* a ``time.monotonic()`` stamp for heartbeat
    ages (injectable so tests render deterministic frames).
    """
    import time as _time

    if now is None:
        now = _time.monotonic()
    stale = set(stale)
    lines = []
    if snapshot is None:
        lines.append("campaign: waiting for first status snapshot...")
    else:
        pct = (100.0 * snapshot.done / snapshot.total
               if snapshot.total else 0.0)
        rate = snapshot.throughput
        head = (
            f"campaign: {snapshot.done}/{snapshot.total} shards ({pct:.0f}%)"
        )
        if rate is not None:
            head += f"  throughput {rate:.2f}/s"
        head += f"  eta {_fmt_eta(snapshot.eta_seconds)}"
        if snapshot.complete:
            head += "  [complete]"
        lines.append(head)
        lines.append(
            f"retries {snapshot.retries}  degraded {snapshot.degraded}  "
            f"stale {snapshot.stale}"
        )
    if workers:
        rows = []
        for beat in workers:
            flags = []
            if beat.degraded:
                flags.append("degraded")
            if beat.worker in stale and beat.phase == "running":
                flags.append("STALE")
            rows.append((
                beat.worker,
                f"{beat.cells_done}/{beat.cells_total}",
                beat.phase,
                f"{max(0.0, now - beat.mono):.1f}s",
                str(beat.retries),
                ",".join(flags) or "-",
            ))
        lines.append("")
        lines.append(render_table(
            ("worker", "done", "phase", "age", "retries", "flags"), rows
        ))
    return "\n".join(lines)


def render_ingest(result) -> str:
    """Render an :class:`~repro.traces.ingest.IngestResult`.

    Header recaps the ingest provenance (format, mapper, digests,
    cache outcome), followed by the trace-statistics characterisation
    from :func:`repro.analysis.trace_stats.characterize`.
    """
    from repro.analysis.trace_stats import characterize

    provenance = result.provenance
    cache = provenance.get("cache", {})
    if not cache.get("enabled"):
        cache_cell = "disabled"
    elif cache.get("hit"):
        cache_cell = "hit"
    else:
        cache_cell = "miss (entry written)"
    header_rows = [
        ("source", str(provenance.get("source", "-"))),
        ("format", str(provenance.get("format", "-"))),
        ("mapper", str(provenance.get("mapper") or "-")),
        ("source digest", str(provenance.get("source_digest", "-"))[:16]),
        ("spec digest", str(provenance.get("spec_digest", "-"))),
        ("records", f"{provenance.get('records', 0):,}"),
        ("skipped", f"{provenance.get('skipped', 0):,}"),
        ("cache", cache_cell),
    ]
    sections = [render_table(("field", "value"), header_rows)]
    samples = provenance.get("skipped_samples") or []
    if samples:
        sections.append(
            "skipped-record samples:\n" + "\n".join(
                f"  {sample}" for sample in samples
            )
        )
    stats = characterize(result.trace)
    sections.append(render_table(("statistic", "value"), stats.summary_rows()))
    return "\n\n".join(sections)


def render_serve_session(outcome) -> str:
    """Render a ``repro submit`` :class:`~repro.serve.client.SessionOutcome`.

    A provenance header (session id, shard, server cache outcome),
    then one :meth:`~repro.sim.metrics.SimResult.summary` line per
    verdict -- byte-identical to what an offline ``repro run`` of the
    same cell prints, which is what lets the CI smoke job diff the
    streamed and offline outputs directly.
    """
    from repro.sim.metrics import SimResult

    provenance = outcome.provenance
    cache = provenance.get("cache", {})
    if not cache.get("enabled"):
        cache_cell = "disabled"
    elif cache.get("hit"):
        cache_cell = "hit"
    else:
        cache_cell = "miss (entry written)"
    header_rows = [
        ("session", str(outcome.session or "-")),
        ("shard", str(outcome.accepted.get("shard", "-"))),
        ("engine", str(outcome.accepted.get("engine", "-"))),
        ("format", str(provenance.get("format", "-"))),
        ("source digest", str(provenance.get("source_digest", "-"))[:16]),
        ("records", f"{provenance.get('records', 0):,}"),
        ("server cache", cache_cell),
        ("verdicts", str(len(outcome.verdicts))),
    ]
    sections = [render_table(("field", "value"), header_rows)]
    if outcome.verdicts:
        lines = [
            SimResult.from_dict(verdict["result"]).summary()
            for verdict in outcome.verdicts
        ]
        sections.append("\n".join(lines))
    return "\n\n".join(sections)
