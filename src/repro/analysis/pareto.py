"""Pareto-frontier analysis of the Fig. 4 tradeoff.

The paper's central claim about Fig. 4: "our TiVaPRoMi variants provide
a very good Pareto-optimal compromise" between table size and
activation overhead.  This module computes the frontier of the measured
(table bytes, overhead %) points so the claim can be *checked* rather
than eyeballed: a technique is Pareto-optimal when no other technique
is at least as good on both axes and strictly better on one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple


@dataclass(frozen=True)
class ParetoPoint:
    technique: str
    table_bytes: float
    overhead_pct: float

    def dominates(self, other: "ParetoPoint") -> bool:
        """True when self is no worse on both axes and better on one."""
        no_worse = (
            self.table_bytes <= other.table_bytes
            and self.overhead_pct <= other.overhead_pct
        )
        better = (
            self.table_bytes < other.table_bytes
            or self.overhead_pct < other.overhead_pct
        )
        return no_worse and better


def pareto_frontier(points: Sequence[ParetoPoint]) -> List[ParetoPoint]:
    """The non-dominated subset, sorted by table size."""
    frontier = [
        point
        for point in points
        if not any(other.dominates(point) for other in points)
    ]
    return sorted(frontier, key=lambda point: (point.table_bytes, point.overhead_pct))


def classify(points: Sequence[ParetoPoint]) -> Dict[str, bool]:
    """Map technique -> is it on the Pareto frontier?"""
    frontier_names = {point.technique for point in pareto_frontier(points)}
    return {point.technique: point.technique in frontier_names for point in points}


def from_fig4(points: Sequence[Mapping[str, float]]) -> List[ParetoPoint]:
    """Adapt :func:`repro.analysis.area.fig4_points` output."""
    return [
        ParetoPoint(
            technique=str(point["technique"]),
            table_bytes=float(point["table_bytes"]),
            overhead_pct=float(point["overhead_pct"]),
        )
        for point in points
    ]


def dominated_by(
    points: Sequence[ParetoPoint], technique: str
) -> List[Tuple[str, str]]:
    """(dominator, dominated) pairs involving *technique*."""
    by_name = {point.technique: point for point in points}
    target = by_name[technique]
    out = []
    for other in points:
        if other.technique == technique:
            continue
        if other.dominates(target):
            out.append((other.technique, technique))
        if target.dominates(other):
            out.append((technique, other.technique))
    return out
