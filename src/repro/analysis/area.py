"""Structural area model: LUT estimates for Table III and Fig. 4 sizes.

The paper synthesises VHDL for a Virtex UltraScale+ XCVU9P and reports
LUTs for two targets: the 1.2 GHz DDR4 controller and a 320 MHz DDR3
FPGA controller whose tighter cycle budgets force table-searching
techniques to check several entries per cycle ("increasing their
parallelism per cycle, which also increases their area requirements",
Section IV).

Synthesis is unavailable offline, so this module substitutes a
*structural* model (see DESIGN.md section 2): each technique is an
inventory of primitives -- RNG + comparator core, table storage/readout
logic per entry, search lanes, weight units, CAM bits, per-row counter
bits -- whose LUT costs are calibrated once against the paper's DDR4
column.  The DDR3 column is then *derived*: the cycle model computes
the search parallelism each technique needs to fit the 14-cycle act /
112-cycle ref budgets at 320 MHz, and the scalable part of the
inventory is replicated accordingly.  DDR4 numbers land within ~1 % of
the paper; derived DDR3 numbers reproduce the ordering and
order-of-magnitude ratios (exact values depended on the authors'
synthesis flow; EXPERIMENTS.md tabulates the deviations).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.config import DDR3_TIMING, DRAMTiming, SimConfig
from repro.mitigations.registry import (
    MODERN_TECHNIQUES,
    TECHNIQUES,
    make_mitigation,
)

#: calibrated primitive LUT costs (DDR4 column of Table III)
PRIMITIVES = {
    # PARA's stateless core: LFSR random source + probability comparator
    "para_core": 349,
    # history table: storage/FIFO/readout logic per entry, and one
    # sequential-search lane (comparator + read mux)
    "history_entry": 135,
    "search_lane": 477,
    # weight units of the Fig. 2 variants
    "linear_weight": 20,
    "log_encoder": 73,
    "weight_mux": 146,
    # CaPRoMi: counter-table entry logic, per-search-lane cost, and the
    # cnt * w_log * Pbase decision datapath (real multiplier)
    "counter_entry": 200,
    "counter_lane": 960,
    "decision_unit": 718,
    # ProHit / MRLoc: control core + one full table-search lane
    "prohit_control": 357,
    "prohit_lane": 1296,
    "mrloc_control": 569,
    "mrloc_lane": 1296,
    # TWiCe: CAM cell cost per stored bit (match logic dominates)
    "cam_bit": 10.2,
    # CRA: per counter bit (increment + threshold compare, replicated
    # per row because any row can be active)
    "counter_bit": 5.43,
    # modern trackers (LUT inventories are modelled, not calibrated:
    # none of the 2024-2025 papers synthesise for the paper's FPGA
    # targets, so these reuse the calibrated primitives above plus the
    # structures each paper describes)
    # Loaded Dice: count-weighted selection datapath (prefix adder +
    # threshold walk) on top of a PARA-style core
    "dice_unit": 240,
    # RVC / ProbTracker: tagged counter-table entry (storage + match)
    "tracker_entry": 150,
    # PRAC family: ALERT_n handshake and back-off FSM
    "alert_logic": 410,
    # PRACtical: per-subarray counter-bank select / arbitration
    "subarray_mux": 92,
}


@dataclass(frozen=True)
class AreaEstimate:
    """LUT estimate split into fixed and per-lane scalable parts."""

    technique: str
    fixed_luts: float
    lane_luts: float
    lanes: int

    @property
    def total(self) -> int:
        return int(round(self.fixed_luts + self.lane_luts * self.lanes))


def _budget_parallelism(work_cycles: int, overhead_cycles: int, budget: int) -> int:
    """Lanes needed so ``work/lanes + overhead <= budget``."""
    available = budget - overhead_cycles
    if available < 1:
        raise ValueError(
            f"cycle budget {budget} cannot even cover the fixed "
            f"{overhead_cycles}-cycle control path"
        )
    return max(1, math.ceil(work_cycles / available))


def search_parallelism(name: str, config: SimConfig, timing: DRAMTiming) -> int:
    """Entries-per-cycle search replication *name* needs under *timing*.

    Coarse per-technique cycle shapes: the four TiVaPRoMi variants use
    the Table II model's structure; ProHit/MRLoc sequentially search
    their small tables per activation; TWiCe's pruning sweep must fit
    the ref budget; PARA and CRA are search-free (the paper notes only
    they fit the DDR3 budget unmodified).
    """
    act_budget = timing.act_cycle_budget
    ref_budget = timing.ref_cycle_budget
    history = config.history_table_entries
    counters = config.counter_table_entries
    if name == "PARA" or name == "CRA":
        return 1
    if name in ("LiPRoMi", "LoPRoMi", "LoLiPRoMi"):
        return _budget_parallelism(history, 5, act_budget)
    if name == "CaPRoMi":
        # the baseline datapath already searches two entries per cycle
        # (Table II model), so one "lane" covers two entries
        act_lanes = _budget_parallelism((counters + history) // 2, 2, act_budget)
        ref_lanes = _budget_parallelism(counters * 4, 2, ref_budget)
        return max(act_lanes, ref_lanes)
    if name == "ProHit":
        return _budget_parallelism(16, 4, act_budget)
    if name == "MRLoc":
        return _budget_parallelism(32, 4, act_budget)  # two victims per act
    if name == "TWiCe":
        capacity = make_mitigation("TWiCe", config).analytic_capacity
        return _budget_parallelism(capacity, 2, ref_budget)
    if name in ("PVAC", "PRAC", "PRACtical"):
        # exhaustive per-row counters: direct index, search-free
        return 1
    if name == "LoadedDice":
        return _budget_parallelism(history, 4, act_budget)
    if name == "RVC":
        # two victims charged per act: the table is searched twice
        return _budget_parallelism(2 * counters, 4, act_budget)
    if name == "ProbTracker":
        return _budget_parallelism(counters, 4, act_budget)
    raise ValueError(f"unknown technique {name!r}")


def area_estimate(name: str, config: SimConfig, timing: DRAMTiming) -> AreaEstimate:
    """LUT estimate of *name* for a controller with *timing* budgets."""
    p = PRIMITIVES
    lanes = search_parallelism(name, config, timing)
    history_storage = config.history_table_entries * p["history_entry"]
    if name == "PARA":
        return AreaEstimate(name, p["para_core"], 0.0, 1)
    if name in ("LiPRoMi", "LoPRoMi", "LoLiPRoMi"):
        fixed = p["para_core"] + history_storage + p["linear_weight"]
        if name in ("LoPRoMi", "LoLiPRoMi"):
            fixed += p["log_encoder"]
        if name == "LoLiPRoMi":
            fixed += p["weight_mux"]
        return AreaEstimate(name, fixed, p["search_lane"], lanes)
    if name == "CaPRoMi":
        fixed = (
            p["para_core"]
            + history_storage
            + config.counter_table_entries * p["counter_entry"]
        )
        # DDR4 baseline: two-per-cycle search lanes on both tables and
        # one decision unit; scaling replicates all three.
        lane_cost = 2 * p["search_lane"] + 2 * p["counter_lane"] + p["decision_unit"]
        return AreaEstimate(name, fixed, lane_cost, lanes)
    if name == "ProHit":
        return AreaEstimate(name, p["prohit_control"], p["prohit_lane"], lanes)
    if name == "MRLoc":
        return AreaEstimate(name, p["mrloc_control"], p["mrloc_lane"], lanes)
    if name == "TWiCe":
        instance = make_mitigation("TWiCe", config)
        cam_bits = instance.table_bytes * 8
        cam_area = cam_bits * p["cam_bit"]
        # The CAM match network is the scalable part: the prune sweep
        # replicates comparator banks to fit the ref budget (baseline
        # DDR4 synthesis checks two entries per cycle).
        baseline_lanes = 2
        per_lane = cam_area / baseline_lanes
        return AreaEstimate(name, 0.0, per_lane, max(lanes, baseline_lanes))
    if name == "CRA":
        instance = make_mitigation("CRA", config)
        counter_bits = instance.table_bytes * 8
        return AreaEstimate(name, counter_bits * p["counter_bit"], 0.0, 1)
    if name == "LoadedDice":
        fixed = (
            p["para_core"]
            + config.history_table_entries * p["tracker_entry"]
            + p["dice_unit"]
        )
        return AreaEstimate(name, fixed, p["search_lane"], lanes)
    if name in ("RVC", "ProbTracker"):
        fixed = config.counter_table_entries * p["tracker_entry"]
        if name == "ProbTracker":
            fixed += p["para_core"]  # insertion-lottery random source
        return AreaEstimate(name, fixed, p["search_lane"], lanes)
    if name in ("PVAC", "PRAC", "PRACtical"):
        instance = make_mitigation(name, config)
        counter_bits = instance.table_bytes * 8
        fixed = counter_bits * p["counter_bit"]
        if name in ("PRAC", "PRACtical"):
            fixed += p["alert_logic"]
        if name == "PRACtical":
            fixed += config.geometry.subarrays_per_bank * p["subarray_mux"]
        return AreaEstimate(name, fixed, 0.0, 1)
    raise ValueError(f"unknown technique {name!r}")


@dataclass(frozen=True)
class TechniqueArea:
    """One Table III resource row."""

    technique: str
    luts_ddr4: int
    luts_ddr3: int
    table_bytes: int

    def relative_to(self, reference: "TechniqueArea") -> float:
        return self.luts_ddr4 / max(reference.luts_ddr4, 1)


def table3_resources(
    config: SimConfig, include_modern: bool = False
) -> Dict[str, TechniqueArea]:
    """Resource columns of Table III.

    The nine paper rows by default; ``include_modern=True`` appends the
    2024-2025 tracker families below them (modelled, not calibrated --
    see PRIMITIVES).
    """
    names: List[str] = list(TECHNIQUES)
    if include_modern:
        names.extend(MODERN_TECHNIQUES)
    rows: Dict[str, TechniqueArea] = {}
    for name in names:
        ddr4 = area_estimate(name, config, config.timing)
        ddr3 = area_estimate(name, config, DDR3_TIMING)
        table_bytes = make_mitigation(name, config).table_bytes
        rows[name] = TechniqueArea(
            technique=name,
            luts_ddr4=ddr4.total,
            luts_ddr3=ddr3.total,
            table_bytes=table_bytes,
        )
    return rows


def fig4_points(
    config: SimConfig, overheads: Dict[str, float]
) -> List[Dict[str, float]]:
    """Fig. 4 scatter: (table size per bank, activation overhead %).

    *overheads* maps technique name to measured overhead %; stateless
    PARA is plotted at 1 B so it survives the log axis, as in the
    paper's figure.
    """
    points = []
    for name in TECHNIQUES:
        table_bytes = make_mitigation(name, config).table_bytes
        points.append(
            {
                "technique": name,
                "table_bytes": float(max(table_bytes, 1)),
                "overhead_pct": overheads.get(name, float("nan")),
            }
        )
    return points


def storage_reduction_vs_twice(config: SimConfig) -> Dict[str, float]:
    """The headline 9x-27x storage-reduction claim vs TWiCe."""
    twice_bytes = make_mitigation("TWiCe", config).table_bytes
    reductions = {}
    for name in ("LiPRoMi", "LoPRoMi", "LoLiPRoMi", "CaPRoMi"):
        ours = make_mitigation(name, config).table_bytes
        reductions[name] = twice_bytes / max(ours, 1)
    return reductions
