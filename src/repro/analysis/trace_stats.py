"""Trace statistics: the numbers Table I summarises about the workload.

The paper characterises its gem5 trace by a few aggregates -- 175 M
memory activations over 1.56 M refresh intervals, an average of ~40
activations per interval (vs. the physical maximum of 165), and an
attacker ramping to 20 aggressors.  This module computes the same
statistics from any :class:`~repro.traces.record.Trace`, so the
synthetic-workload substitution (DESIGN.md section 2) can be checked
against the paper's characterisation, and externally converted traces
can be validated before use.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.traces.record import Trace


@dataclass
class TraceStatistics:
    """Aggregate characterisation of an activation trace."""

    total_activations: int = 0
    attack_activations: int = 0
    total_intervals: int = 0
    num_banks: int = 0
    #: per-(bank) activation counts
    per_bank: Dict[int, int] = field(default_factory=dict)
    #: distribution of activations per (interval, bank) bucket
    acts_per_interval_mean: float = 0.0
    acts_per_interval_max: int = 0
    #: distinct rows activated, and the share of the top 32 rows
    distinct_rows: int = 0
    top32_share: float = 0.0
    #: distinct ground-truth aggressor rows per bank
    aggressors_per_bank: Dict[int, int] = field(default_factory=dict)

    @property
    def attack_fraction(self) -> float:
        if not self.total_activations:
            return 0.0
        return self.attack_activations / self.total_activations

    def summary_rows(self) -> List[Tuple[str, str]]:
        return [
            ("activations", f"{self.total_activations:,}"),
            ("refresh intervals", f"{self.total_intervals:,}"),
            ("banks", str(self.num_banks)),
            ("acts / interval / bank (mean)", f"{self.acts_per_interval_mean:.1f}"),
            ("acts / interval / bank (max)", str(self.acts_per_interval_max)),
            ("attacker share", f"{self.attack_fraction:.1%}"),
            ("distinct rows", f"{self.distinct_rows:,}"),
            ("top-32-row share", f"{self.top32_share:.1%}"),
            ("aggressor rows per bank",
             str(dict(sorted(self.aggressors_per_bank.items())))),
        ]


def characterize(trace: Trace) -> TraceStatistics:
    """Compute :class:`TraceStatistics` for *trace* (one pass)."""
    trace.materialize()
    stats = TraceStatistics(
        total_intervals=trace.meta.total_intervals,
        num_banks=trace.meta.num_banks,
    )
    interval_ns = trace.meta.interval_ns
    per_bucket: Counter = Counter()
    per_row: Counter = Counter()
    per_bank: Counter = Counter()
    aggressors = defaultdict(set)
    for record in trace.records:
        stats.total_activations += 1
        per_bank[record.bank] += 1
        per_bucket[(record.time_ns // interval_ns, record.bank)] += 1
        per_row[(record.bank, record.row)] += 1
        if record.is_attack:
            stats.attack_activations += 1
            aggressors[record.bank].add(record.row)
    stats.per_bank = dict(per_bank)
    buckets = trace.meta.total_intervals * max(trace.meta.num_banks, 1)
    stats.acts_per_interval_mean = (
        stats.total_activations / buckets if buckets else 0.0
    )
    stats.acts_per_interval_max = max(per_bucket.values(), default=0)
    stats.distinct_rows = len(per_row)
    top32 = sum(count for _, count in per_row.most_common(32))
    stats.top32_share = (
        top32 / stats.total_activations if stats.total_activations else 0.0
    )
    stats.aggressors_per_bank = {
        bank: len(rows) for bank, rows in aggressors.items()
    }
    return stats
