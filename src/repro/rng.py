"""Deterministic random-number utilities.

Every stochastic component of the simulator (trace generators, the
probabilistic mitigations, refresh-policy shuffling) receives its own
:class:`random.Random` stream derived from a single experiment seed, so
that runs are reproducible and components are statistically independent.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator


def derive_seed(root_seed: int, *labels: object) -> int:
    """Derive a child seed from *root_seed* and a label path.

    Uses SHA-256 over the textual path so that the mapping is stable
    across Python versions and processes (unlike ``hash()``).
    """
    text = repr((int(root_seed),) + tuple(str(label) for label in labels))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def stream(root_seed: int, *labels: object) -> random.Random:
    """Return an independent :class:`random.Random` for a label path."""
    return random.Random(derive_seed(root_seed, *labels))


def seed_sequence(root_seed: int, count: int, *labels: object) -> Iterator[int]:
    """Yield *count* independent seeds below a label path."""
    for index in range(count):
        yield derive_seed(root_seed, *labels, index)


class BufferedRandom:
    """Draw ``random()`` values in blocks while preserving exact order.

    Mersenne-Twister output is a fixed sequence, so the *k*-th
    ``random()`` value is identical whether drawn eagerly or in a
    pre-filled block -- which lets the fast simulation engine bulk-draw
    trigger decisions per chunk and still match the reference engine
    draw-for-draw.

    Other :class:`random.Random` methods consume the same underlying
    stream, so before forwarding one the wrapper rewinds the generator
    to just past the values already handed out (``setstate`` plus a
    replay of the consumed draws) and discards the rest of the block.
    That keeps interleavings such as PARA's ``randrange`` on trigger
    bit-exact with unbuffered use.
    """

    __slots__ = ("_rng", "_block", "_buf", "_pos", "_state")

    def __init__(self, rng: random.Random, block: int = 1024):
        if block < 1:
            raise ValueError(f"block size must be positive: {block}")
        self._rng = rng
        self._block = block
        self._buf: list[float] = []
        self._pos = 0
        self._state: object = None

    def random(self) -> float:
        if self._pos >= len(self._buf):
            self._state = self._rng.getstate()
            self._buf = [self._rng.random() for _ in range(self._block)]
            self._pos = 0
        value = self._buf[self._pos]
        self._pos += 1
        return value

    def _sync(self) -> None:
        """Rewind the generator to just after the draws consumed so far."""
        if self._buf:
            self._rng.setstate(self._state)
            for _ in range(self._pos):
                self._rng.random()
            self._buf = []
            self._pos = 0

    def randrange(self, stop: int) -> int:
        self._sync()
        return self._rng.randrange(stop)

    def getstate(self):
        self._sync()
        return self._rng.getstate()
