"""Deterministic random-number utilities.

Every stochastic component of the simulator (trace generators, the
probabilistic mitigations, refresh-policy shuffling) receives its own
:class:`random.Random` stream derived from a single experiment seed, so
that runs are reproducible and components are statistically independent.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator


def derive_seed(root_seed: int, *labels: object) -> int:
    """Derive a child seed from *root_seed* and a label path.

    Uses SHA-256 over the textual path so that the mapping is stable
    across Python versions and processes (unlike ``hash()``).
    """
    text = repr((int(root_seed),) + tuple(str(label) for label in labels))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def stream(root_seed: int, *labels: object) -> random.Random:
    """Return an independent :class:`random.Random` for a label path."""
    return random.Random(derive_seed(root_seed, *labels))


def seed_sequence(root_seed: int, count: int, *labels: object) -> Iterator[int]:
    """Yield *count* independent seeds below a label path."""
    for index in range(count):
        yield derive_seed(root_seed, *labels, index)
