"""Structure-of-arrays fused engine: one trace pass, a whole cell grid.

The paper's headline numbers are *campaigns*: the same activation trace
replayed under nine techniques, several seeds, and a pbase grid.  The
fast engine (:mod:`repro.sim.fast_engine`) evaluates one
``(technique, seed)`` pair per call, so a campaign decodes and replays
the identical trace once per cell.  This engine decodes the trace
**once** into structure-of-arrays form and replays it for the entire
``(technique, seed, pbase)`` cell grid simultaneously.

Layout and strategy
-------------------

* **SoA trace tape** -- the record stream is decoded once into parallel
  ``times / banks / rows / attacks`` arrays plus a precomputed run-length
  *segment schedule* (maximal runs of identical records, split at
  refresh-interval boundaries).  Segmentation is cell-independent: the
  refresh clock is driven purely by record timestamps, so every cell
  shares one tape.
* **Cell lanes** -- each *computed* cell owns a lane holding its mutable
  state (disturbance counters, pending actions, flip events, decider
  tables).  A lane is a faithful port of the fast-engine replay loop,
  driven by the shared segment schedule; per-cell RNG streams derive
  from the existing ``derive_seed(seed, "mitigation", bank)`` scheme, so
  every lane is bit-identical to a solo reference-engine run.
* **Cell dedup** -- mitigation classes declare ``consumes_rng`` /
  ``consumes_pbase`` traits.  TWiCe and CRA consume neither, so their
  seed x pbase plane collapses to one computed cell; PARA, ProHit and
  MRLoc ignore ``pbase``, collapsing that axis.  Results are replicated
  to the requested cells with the ``seed`` field fixed up.
* **Vectorised deciders** -- the probabilistic techniques pre-draw their
  Mersenne-Twister ``random()`` values in blocks (the *k*-th draw is the
  same value eagerly or batched) and scan them as numpy arrays; the
  table-based techniques (TWiCe, CRA, CaPRoMi) collapse a run of ``n``
  identical activations into one arithmetic update; ProHit and MRLoc
  detect their steady table state and scan the remaining draws in bulk.

Exact equivalence to the reference engine on every cell is the
non-negotiable invariant, enforced by ``tests/sim/test_fused_differential.py``
via :func:`tests.harness.assert_grid_equivalent`.  numpy is optional:
without it every scan falls back to the scalar loop (identical results,
reduced throughput).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

try:  # numpy accelerates the draw scans; the scalar fallback is exact
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None

from repro.config import SimConfig
from repro.controller.controller import MitigationFactory
from repro.core.capromi import CaPRoMi
from repro.core.tivapromi import LiPRoMi, LoLiPRoMi, LoPRoMi
from repro.dram.disturbance import FlipEvent
from repro.dram.refresh import RefreshPolicy, SequentialRefresh
from repro.mitigations.base import (
    ActivateNeighbors,
    Mitigation,
    RecoveryRefresh,
    RefreshRow,
)
from repro.mitigations.cra import CRA
from repro.mitigations.mrloc import MRLoc
from repro.mitigations.para import PARA
from repro.mitigations.prohit import ProHit
from repro.mitigations.registry import (
    make_factory,
    resolve_technique,
    technique_class,
)
from repro.mitigations.twice import TWiCe, _Entry
from repro.rng import derive_seed
from repro.sim.fast_engine import (
    _SKIP_THRESHOLD,
    _GenericDecider,
    _PARADecider,
    _RunMethodDecider,
    _TiVaPRoMiDecider,
)
from repro.sim.metrics import SimResult
from repro.telemetry.hooks import EngineTelemetry
from repro.telemetry.profiler import section_of
from repro.traces.record import Trace

#: block size for the pre-drawn ``random()`` buffers of the fused
#: deciders (matches the fast engine's TiVaPRoMi block)
_BLOCK = 4096

#: sentinel pbase used to canonicalise configs of techniques that do not
#: consume ``pbase`` when building dedup keys (any valid value works --
#: it only has to be the *same* value for every such cell)
_PBASE_DONT_CARE = 0.5


# ---------------------------------------------------------------------------
# public cell grid specification
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GridCell:
    """One requested cell of the fused campaign grid.

    ``technique`` is a registry name (``None`` = unmitigated baseline);
    ``config`` optionally overrides the base config (typically only
    ``pbase`` differs); ``kwargs`` are extra mitigation-factory keyword
    arguments as a sorted tuple of pairs.
    """

    technique: Optional[str]
    seed: int = 0
    config: Optional[SimConfig] = None
    kwargs: Tuple[Tuple[str, Any], ...] = ()


def grid_cells(
    techniques: Sequence[Optional[str]],
    seeds: Sequence[int],
    pbase_scales: Sequence[float] = (1.0,),
    config: Optional[SimConfig] = None,
) -> List[GridCell]:
    """Build the full ``technique x seed x pbase`` cell grid.

    ``pbase_scales`` multiply ``config.pbase``; duplicate scales (after
    float coercion, so ``"0.1"`` and ``"1e-1"`` collapse) are dropped.
    ``config=None`` leaves per-cell configs unset (the grid call's base
    config applies), which requires ``pbase_scales == (1.0,)``.
    """
    scales: List[float] = []
    for scale in pbase_scales:
        value = float(scale)
        if value not in scales:
            scales.append(value)
    cells = []
    for technique in techniques:
        for seed in seeds:
            for scale in scales:
                if scale == 1.0:
                    cell_config = config
                elif config is None:
                    raise ValueError(
                        "pbase_scales != 1.0 require an explicit config"
                    )
                else:
                    cell_config = config.scaled(pbase=config.pbase * scale)
                cells.append(
                    GridCell(technique=technique, seed=seed, config=cell_config)
                )
    return cells


@dataclass
class _Plan:
    """Internal resolved cell: factory + config + dedup key."""

    factory: Optional[MitigationFactory]
    seed: int
    config: SimConfig
    key: Optional[Tuple]  # None = never deduplicated


def _plan_cell(cell: GridCell, base_config: SimConfig) -> _Plan:
    config = cell.config if cell.config is not None else base_config
    if cell.technique is None:
        # the unmitigated baseline consumes neither RNG nor pbase
        key = (None, cell.kwargs, None, replace(config, pbase=_PBASE_DONT_CARE))
        return _Plan(None, cell.seed, config, key)
    name = resolve_technique(cell.technique)
    cls = technique_class(name)
    factory = make_factory(name, **dict(cell.kwargs))
    consumes_rng = getattr(cls, "consumes_rng", True)
    consumes_pbase = getattr(cls, "consumes_pbase", True)
    eff_seed = cell.seed if consumes_rng else None
    eff_config = (
        config if consumes_pbase else replace(config, pbase=_PBASE_DONT_CARE)
    )
    key = (name, cell.kwargs, eff_seed, eff_config)
    return _Plan(factory, cell.seed, config, key)


# ---------------------------------------------------------------------------
# SoA trace tape
# ---------------------------------------------------------------------------


class _Tape:
    """The decoded trace: SoA record columns plus the segment schedule.

    ``segments`` is a list of ``(start, end, bank, row, is_attack,
    interval)`` tuples -- maximal runs of identical records that never
    cross a refresh-interval boundary, exactly the runs the fast engine
    discovers by peeking ahead.
    """

    __slots__ = ("times", "segments", "interval_ns", "total_intervals")

    def __init__(self, trace: Trace):
        meta = trace.meta
        self.interval_ns = meta.interval_ns
        self.total_intervals = meta.total_intervals
        times: List[int] = []
        banks: List[int] = []
        rows: List[int] = []
        attacks: List[bool] = []
        for record in trace:
            times.append(record[0])
            banks.append(record[1])
            rows.append(record[2])
            attacks.append(record[3])
        self.times = times
        self.segments = self._segment(times, banks, rows, attacks)

    def _segment(self, times, banks, rows, attacks):
        n = len(times)
        if n == 0:
            return []
        interval_ns = self.interval_ns
        if _np is not None:
            ta = _np.asarray(times, dtype=_np.int64)
            ba = _np.asarray(banks, dtype=_np.int64)
            ra = _np.asarray(rows, dtype=_np.int64)
            aa = _np.asarray(attacks, dtype=bool)
            iv = ta // interval_ns
            if n > 1:
                breaks = (
                    _np.flatnonzero(
                        (ba[1:] != ba[:-1])
                        | (ra[1:] != ra[:-1])
                        | (aa[1:] != aa[:-1])
                        | (iv[1:] != iv[:-1])
                    )
                    + 1
                ).tolist()
            else:
                breaks = []
            starts = [0] + breaks
            ends = breaks + [n]
            return [
                (s, e, banks[s], rows[s], attacks[s], times[s] // interval_ns)
                for s, e in zip(starts, ends)
            ]
        segments = []
        start = 0
        key = (banks[0], rows[0], attacks[0], times[0] // interval_ns)
        for i in range(1, n):
            nxt = (banks[i], rows[i], attacks[i], times[i] // interval_ns)
            if nxt != key:
                segments.append((start, i) + key)
                start = i
                key = nxt
        segments.append((start, n) + key)
        return segments


# ---------------------------------------------------------------------------
# fused deciders (all bit-exact ports -- see tests/sim/test_fused_differential)
# ---------------------------------------------------------------------------


class _NumpyScanMixin:
    """Lazy numpy mirror of a pre-drawn ``random()`` block."""

    def _mirror(self):
        buf = self._buf
        if self._arr_src is not buf:
            self._arr = _np.asarray(buf)
            self._arr_src = buf
        return self._arr


class _FusedTiVaDecider(_TiVaPRoMiDecider, _NumpyScanMixin):
    """TiVaPRoMi fast decider with the draw scan vectorised."""

    __slots__ = ("_arr", "_arr_src")

    def __init__(self, mitigation):
        super().__init__(mitigation)
        self._arr = None
        self._arr_src = None

    def decide_run(self, row: int, interval: int, count: int):
        if _np is None:
            return super().decide_run(row, interval, count)
        p = self._probability(row, interval)
        clean = 0
        pos = self._pos
        buf = self._buf
        while clean < count:
            if pos >= len(buf):
                rand = self._rand
                buf = self._buf = [rand() for _ in range(_BLOCK)]
                pos = 0
                if self.telemetry is not None:
                    self.telemetry.on_rng_block(self.mitigation.bank, _BLOCK)
            end = pos + (count - clean)
            if end > len(buf):
                end = len(buf)
            if p > 0.0:
                hits = _np.flatnonzero(self._mirror()[pos:end] < p)
                if hits.size:
                    hit = pos + int(hits[0])
                    clean += hit - pos
                    self._pos = hit + 1
                    return clean, self._record_trigger(row, interval)
            clean += end - pos
            pos = end
        self._pos = pos
        return count, ()


class _BufferedVictimDecider(_NumpyScanMixin):
    """Shared plumbing for the ProHit / MRLoc fused deciders.

    Owns *every* draw of the wrapped mitigation's RNG stream through a
    pre-filled block buffer (the mitigations only ever call ``random()``,
    so eager block draws preserve the exact sequence), plus the cached
    assumed-neighbour lookups.
    """

    __slots__ = (
        "mitigation", "telemetry", "name", "_rand", "_buf", "_arr",
        "_arr_src", "_pos", "_victims",
    )

    def __init__(self, mitigation: Mitigation):
        self.mitigation = mitigation
        self.telemetry = None
        self.name = mitigation.name
        self._rand = mitigation._rng.random
        self._buf: List[float] = []
        self._arr = None
        self._arr_src = None
        self._pos = 0
        self._victims: Dict[int, Tuple[int, ...]] = {}

    def attach_telemetry(self, telemetry) -> None:
        self.telemetry = telemetry
        self.mitigation.telemetry = telemetry

    @property
    def table_bytes(self) -> int:
        return self.mitigation.table_bytes

    @property
    def table_occupancy(self):
        return getattr(self.mitigation, "table_occupancy", None)

    def _refill(self) -> None:
        rand = self._rand
        self._buf = [rand() for _ in range(_BLOCK)]
        self._pos = 0
        self._arr_src = None
        if self.telemetry is not None:
            self.telemetry.on_rng_block(self.mitigation.bank, _BLOCK)

    def _draw(self) -> float:
        if self._pos >= len(self._buf):
            self._refill()
        value = self._buf[self._pos]
        self._pos += 1
        return value

    def _neighbors(self, row: int) -> Tuple[int, ...]:
        victims = self._victims.get(row)
        if victims is None:
            victims = self._victims[row] = (
                self.mitigation.config.geometry.assumed_neighbors(row)
            )
        return victims

    def clear_window(self) -> None:
        # only reachable for trivial_refresh deciders, whose reference
        # counterpart keeps its state across window boundaries
        pass


class _FusedProHitDecider(_BufferedVictimDecider):
    """ProHit with run batching.

    ``on_activation`` never issues actions (all ProHit refreshes come
    from ``on_refresh``), so a run always decides clean.  Acts are
    replayed scalar until the hot/cold tables reach a fixed point; the
    remaining acts then consume ``len(missing)`` draws each against the
    constant insert probability and are scanned in bulk for the first
    successful insertion.
    """

    __slots__ = ()

    trivial_refresh = False  # ProHit refreshes its top hot entry per ref

    def _observe(self, victim: int, trigger_row: int) -> None:
        # exact port of ProHit._observe_victim with buffered draws
        m = self.mitigation
        m._trigger[victim] = trigger_row
        hot = m._hot
        if victim in hot:
            index = hot.index(victim)
            if index > 0:
                hot[index - 1], hot[index] = hot[index], hot[index - 1]
            return
        cold = m._cold
        if victim in cold:
            index = cold.index(victim)
            if index == 0:
                m._promote(victim)
            else:
                cold[index - 1], cold[index] = cold[index], cold[index - 1]
            return
        if self._draw() < m.insert_probability:
            if len(cold) >= m.cold_entries:
                dropped = cold.pop()
                m._trigger.pop(dropped, None)
            cold.append(victim)

    def on_activation(self, row: int, interval: int):
        for victim in self._neighbors(row):
            self._observe(victim, row)
        return ()

    def on_refresh(self, interval: int):
        return self.mitigation.on_refresh(interval)  # draw-free

    def decide_run(self, row: int, interval: int, count: int):
        m = self.mitigation
        victims = self._neighbors(row)
        hot = m._hot
        cold = m._cold
        p = m.insert_probability
        i = 0
        while i < count:
            before = (tuple(hot), tuple(cold))
            for victim in victims:
                self._observe(victim, row)
            i += 1
            if i >= count:
                break
            if (tuple(hot), tuple(cold)) != before:
                continue
            # Fixed point: the previous act changed nothing, so every
            # further act is identical until an insertion draw succeeds.
            missing = 0
            for victim in victims:
                if victim not in hot and victim not in cold:
                    missing += 1
            if missing == 0:
                # no draws at all -> pure no-ops (the _trigger writes
                # are idempotent re-assignments of the same value)
                i = count
                break
            if _np is None:
                continue  # scalar path stays exact, just slower
            # consume whole clean acts from the current block; the act
            # containing the first success (or straddling a block
            # boundary) is replayed scalar at the top of the loop
            while i < count:
                if self._pos >= len(self._buf):
                    self._refill()
                avail = (len(self._buf) - self._pos) // missing
                span = min(avail, count - i)
                if span <= 0:
                    break
                start = self._pos
                stop = start + span * missing
                hits = _np.flatnonzero(self._mirror()[start:stop] < p)
                if hits.size:
                    clean_acts = int(hits[0]) // missing
                    self._pos = start + clean_acts * missing
                    i += clean_acts
                    break
                self._pos = stop
                i += span
        return count, ()


class _FusedMRLocDecider(_BufferedVictimDecider):
    """MRLoc with run batching.

    Every victim lookup draws exactly once, so a run consumes a fixed
    number of draws per act.  Once the recency queue reaches its steady
    cycle (one scalar act leaves it unchanged) the per-victim
    probabilities are constant and the draws are scanned in bulk for the
    first refresh trigger.
    """

    __slots__ = ()

    trivial_refresh = True  # MRLoc inherits the no-op on_refresh

    def _act(self, row: int, victims: Tuple[int, ...]):
        # exact port of MRLoc.on_activation with buffered draws
        m = self.mitigation
        queue = m._queue
        base = m.base_probability
        boost = m.max_boost
        actions = None
        for victim in victims:
            length = len(queue)
            probability = base
            if length:
                try:
                    position = list(queue).index(victim)
                except ValueError:
                    position = -1
                if position >= 0:
                    recency = (position + 1) / length
                    probability = base * (1.0 + (boost - 1.0) * recency)
                    if probability > 1.0:
                        probability = 1.0
            if self._draw() < probability:
                if actions is None:
                    actions = []
                actions.append(RefreshRow(row=victim, trigger_row=row))
            if victim in queue:
                queue.remove(victim)
            queue.append(victim)
        return tuple(actions) if actions else ()

    def on_activation(self, row: int, interval: int):
        return self._act(row, self._neighbors(row))

    def on_refresh(self, interval: int):
        return ()

    def _steady_pattern(self, victims: Tuple[int, ...]) -> List[float]:
        """Per-victim probabilities of one act in the steady state."""
        m = self.mitigation
        queue = list(m._queue)
        base = m.base_probability
        boost = m.max_boost
        pattern = []
        for victim in victims:
            length = len(queue)
            probability = base
            if length:
                try:
                    position = queue.index(victim)
                except ValueError:
                    position = -1
                if position >= 0:
                    recency = (position + 1) / length
                    probability = base * (1.0 + (boost - 1.0) * recency)
                    if probability > 1.0:
                        probability = 1.0
            pattern.append(probability)
            if victim in queue:
                queue.remove(victim)
            queue.append(victim)
        return pattern

    def decide_run(self, row: int, interval: int, count: int):
        victims = self._neighbors(row)
        queue = self.mitigation._queue
        width = len(victims)
        i = 0
        while i < count:
            before = tuple(queue)
            actions = self._act(row, victims)
            i += 1
            if actions:
                return i - 1, actions
            if i >= count:
                break
            if tuple(queue) != before:
                continue
            if _np is None:
                continue
            pattern = _np.asarray(self._steady_pattern(victims))
            # consume whole clean acts; the act containing the first
            # trigger draw (or straddling a block) replays scalar above
            while i < count:
                if self._pos >= len(self._buf):
                    self._refill()
                avail = (len(self._buf) - self._pos) // width
                span = min(avail, count - i)
                if span <= 0:
                    break
                start = self._pos
                stop = start + span * width
                window = self._mirror()[start:stop].reshape(span, width)
                hits = _np.flatnonzero((window < pattern).ravel())
                if hits.size:
                    clean_acts = int(hits[0]) // width
                    self._pos = start + clean_acts * width
                    i += clean_acts
                    break
                self._pos = stop
                i += span
        return count, ()


class _TableDecider:
    """Shared plumbing for the draw-free table deciders (TWiCe, CRA,
    CaPRoMi): decisions delegate to the real mitigation object, runs
    collapse into one arithmetic update on its tables."""

    __slots__ = ("mitigation", "telemetry", "name")

    trivial_refresh = False  # all three mutate state on every ``ref``

    def __init__(self, mitigation: Mitigation):
        self.mitigation = mitigation
        self.telemetry = None
        self.name = mitigation.name

    def attach_telemetry(self, telemetry) -> None:
        self.telemetry = telemetry
        self.mitigation.telemetry = telemetry

    @property
    def table_bytes(self) -> int:
        return self.mitigation.table_bytes

    @property
    def table_occupancy(self):
        return getattr(self.mitigation, "table_occupancy", None)

    def on_activation(self, row: int, interval: int):
        return self.mitigation.on_activation(row, interval)

    def on_refresh(self, interval: int):
        return self.mitigation.on_refresh(interval)

    def clear_window(self) -> None:  # pragma: no cover - non-trivial refresh
        pass


class _FusedTWiCeDecider(_TableDecider):
    """TWiCe run batching: a counter either stays below the trigger
    threshold for the whole run (one ``+= n``) or crosses it at an
    arithmetically recoverable act."""

    __slots__ = ()

    def decide_run(self, row: int, interval: int, count: int):
        m = self.mitigation
        table = m._table
        entry = table.get(row)
        if entry is None:
            entry = _Entry()
            table[row] = entry
            if len(table) > m.max_occupancy:
                m.max_occupancy = len(table)
        need = m.trigger_threshold - entry.count
        if need > count:
            entry.count += count
            return count, ()
        entry.count = 0
        return need - 1, (ActivateNeighbors(row=row),)


class _FusedCRADecider(_TableDecider):
    """CRA run batching (same arithmetic as TWiCe, sparse counters)."""

    __slots__ = ()

    def decide_run(self, row: int, interval: int, count: int):
        m = self.mitigation
        counters = m._counters
        current = counters.get(row, 0)
        need = m.trigger_threshold - current
        if need > count:
            counters[row] = current + count
            return count, ()
        counters.pop(row, None)
        return need - 1, (ActivateNeighbors(row=row),)


class _FusedCaPRoMiDecider(_TableDecider):
    """CaPRoMi run batching.

    Activations only observe (no draws, no actions): the first
    observation of a run inserts/evicts exactly like the reference, the
    rest collapse into one count update.  The history link is constant
    across the run (the history table only changes at ``ref``) and
    re-assignments are idempotent.
    """

    __slots__ = ()

    def decide_run(self, row: int, interval: int, count: int):
        m = self.mitigation
        link = m.history.lookup_index(row)
        entry = m.counters.observe(row, history_link=link)
        if count > 1:
            if entry is None:
                # table full of locked entries: every further observe of
                # this row drops too (no draws -- nothing is unlocked)
                m.counters.dropped += count - 1
            else:
                entry.count += count - 1
                if entry.count >= m.counters.lock_threshold:
                    entry.locked = True
        return count, ()


def _make_fused_decider(mitigation: Mitigation):
    kind = type(mitigation)
    if kind in (LiPRoMi, LoPRoMi, LoLiPRoMi):
        if _np is None:
            return _TiVaPRoMiDecider(mitigation)
        return _FusedTiVaDecider(mitigation)
    if kind is PARA:
        return _PARADecider(mitigation)
    if kind is ProHit:
        return _FusedProHitDecider(mitigation)
    if kind is MRLoc:
        return _FusedMRLocDecider(mitigation)
    if kind is TWiCe:
        return _FusedTWiCeDecider(mitigation)
    if kind is CRA:
        return _FusedCRADecider(mitigation)
    if kind is CaPRoMi:
        return _FusedCaPRoMiDecider(mitigation)
    if hasattr(mitigation, "observe_run"):
        # modern counter families batch runs through their own
        # observe_run arithmetic (same contract as decide_run)
        return _RunMethodDecider(mitigation)
    # unknown techniques run as real Mitigation objects: equivalence by
    # construction, per-record replay (no run batching)
    return _GenericDecider(mitigation)


# ---------------------------------------------------------------------------
# the shared tape context and per-cell lanes
# ---------------------------------------------------------------------------


class _Shared:
    """Read-only state shared by every lane of one grid call."""

    __slots__ = (
        "geometry", "policy", "sequential", "refint", "rows_per_interval",
        "interval_ns", "total_intervals", "times", "neighbors_of",
        "second_of", "stop_after_first_trigger", "max_activations",
        "_refresh_rows",
    )

    def __init__(self, geometry, policy, tape, stop_after_first_trigger,
                 max_activations):
        self.geometry = geometry
        self.policy = policy
        self.sequential = type(policy) is SequentialRefresh
        self.refint = geometry.refint
        self.rows_per_interval = geometry.rows_per_interval
        self.interval_ns = tape.interval_ns
        self.total_intervals = tape.total_intervals
        self.times = tape.times
        self.neighbors_of: Dict[int, Tuple[int, ...]] = {}
        self.second_of: Dict[int, List[int]] = {}
        self.stop_after_first_trigger = stop_after_first_trigger
        self.max_activations = max_activations
        self._refresh_rows: Dict[int, List[int]] = {}

    def refresh_rows(self, slot: int) -> List[int]:
        rows = self._refresh_rows.get(slot)
        if rows is None:
            rows = self._refresh_rows[slot] = list(
                self.policy.rows_for_interval(slot)
            )
        return rows


class _Lane:
    """One computed cell: a faithful port of the fast-engine replay loop
    driven by the shared segment schedule."""

    __slots__ = (
        "sh", "config", "seed", "deciders", "tele", "technique",
        "flip_threshold", "distance2", "plain_disturbance", "all_trivial",
        "can_batch", "counters", "bank_flips", "aggressors",
        "max_disturbance", "extra_activations", "fp_extra_activations",
        "mitigation_triggers", "max_occupancy", "pending", "time_now",
        "current_interval", "activation_index", "attack_activations",
        "first_trigger", "stopped",
    )

    def __init__(self, shared: _Shared, factory, seed: int,
                 config: SimConfig, tele):
        self.sh = shared
        self.config = config
        self.seed = seed
        num_banks = shared.geometry.num_banks
        if factory is None:
            self.deciders: List = []
        else:
            self.deciders = [
                _make_fused_decider(
                    factory(config, bank, derive_seed(seed, "mitigation", bank))
                )
                for bank in range(num_banks)
            ]
        self.tele = tele
        if tele is not None:
            for decider in self.deciders:
                decider.attach_telemetry(tele)
        self.technique = self.deciders[0].name if self.deciders else "none"
        self.flip_threshold = config.flip_threshold
        self.distance2 = config.distance2_rate
        self.plain_disturbance = self.distance2 == 0.0
        self.all_trivial = all(d.trivial_refresh for d in self.deciders)
        self.can_batch = self.plain_disturbance and all(
            hasattr(d, "decide_run") for d in self.deciders
        )
        self.counters: List[Dict[int, float]] = [
            {} for _ in range(num_banks)
        ]
        self.bank_flips: List[List[FlipEvent]] = [[] for _ in range(num_banks)]
        self.aggressors: List[Set[int]] = [set() for _ in range(num_banks)]
        self.max_disturbance = 0
        self.extra_activations = 0
        self.fp_extra_activations = 0
        self.mitigation_triggers = 0
        self.max_occupancy = 0
        self.pending: List[Tuple[int, object, bool]] = []
        self.time_now = 0
        self.current_interval = -1
        self.activation_index = 0
        self.attack_activations = 0
        self.first_trigger: Optional[int] = None
        self.stopped = False

    # -- device mirror (ports of the fast-engine closures) -------------

    def do_activation(self, bank: int, row: int) -> None:
        sh = self.sh
        c = self.counters[bank]
        flips = self.bank_flips[bank]
        flip_threshold = self.flip_threshold
        neighbors = sh.neighbors_of.get(row)
        if neighbors is None:
            neighbors = sh.neighbors_of[row] = sh.geometry.neighbors(row)
        c.pop(row, None)
        for victim in neighbors:
            before = c.get(victim, 0.0)
            count = before + 1.0
            c[victim] = count
            whole = int(count)
            if whole > self.max_disturbance:
                self.max_disturbance = whole
            if before < flip_threshold <= count:
                flips.append(
                    FlipEvent(bank=bank, row=victim, count=whole,
                              time_ns=self.time_now)
                )
        if self.distance2 > 0.0:
            seconds = sh.second_of.get(row)
            if seconds is None:
                seconds = sh.second_of[row] = [
                    second
                    for neighbor in neighbors
                    for second in sh.geometry.neighbors(neighbor)
                    if second != row
                ]
            for victim in seconds:
                before = c.get(victim, 0.0)
                count = before + self.distance2
                c[victim] = count
                whole = int(count)
                if whole > self.max_disturbance:
                    self.max_disturbance = whole
                if before < flip_threshold <= count:
                    flips.append(
                        FlipEvent(bank=bank, row=victim, count=whole,
                                  time_ns=self.time_now)
                    )

    def apply_pending(self) -> None:
        sh = self.sh
        tele = self.tele
        for bank, action, was_attack in self.pending:
            self.mitigation_triggers += 1
            if isinstance(action, RefreshRow):
                self.do_activation(bank, action.row)
                cost = 1
            elif isinstance(action, RecoveryRefresh):
                cost = 0
                for aggressor in action.rows:
                    neighbors = sh.neighbors_of.get(aggressor)
                    if neighbors is None:
                        neighbors = sh.neighbors_of[aggressor] = (
                            sh.geometry.neighbors(aggressor)
                        )
                    for victim in neighbors:
                        self.do_activation(bank, victim)
                    cost += len(neighbors)
            elif isinstance(action, ActivateNeighbors):
                row = action.row
                neighbors = sh.neighbors_of.get(row)
                if neighbors is None:
                    neighbors = sh.neighbors_of[row] = sh.geometry.neighbors(row)
                for victim in neighbors:
                    self.do_activation(bank, victim)
                cost = len(neighbors)
            else:  # pragma: no cover - future action kinds
                raise TypeError(f"unknown mitigation action {action!r}")
            self.extra_activations += cost
            if not was_attack:
                self.fp_extra_activations += cost
            if tele is not None:
                tele.on_apply(
                    bank, action.row, self.current_interval, cost, not was_attack
                )
        self.pending.clear()

    def enqueue(self, bank: int, actions) -> None:
        tele = self.tele
        bank_aggressors = self.aggressors[bank]
        pending = self.pending
        for action in actions:
            pending.append((bank, action, action.trigger_row in bank_aggressors))
            if tele is not None:
                tele.on_trigger(
                    bank, action.row, self.current_interval,
                    type(action).__name__,
                )
        if len(pending) > self.max_occupancy:
            self.max_occupancy = len(pending)

    def refresh_tick(self) -> None:
        sh = self.sh
        if self.pending:
            self.apply_pending()
        self.current_interval += 1
        rows = sh.refresh_rows(self.current_interval % sh.refint)
        for c in self.counters:
            for row in rows:
                c.pop(row, None)
        for bank, decider in enumerate(self.deciders):
            actions = decider.on_refresh(self.current_interval)
            if actions:
                self.enqueue(bank, actions)
        if self.pending:
            self.apply_pending()
        if self.tele is not None:
            self.tele.on_interval(
                self.current_interval,
                self.current_interval * sh.interval_ns,
                self.activation_index,
                self.attack_activations,
                [decider.table_occupancy for decider in self.deciders],
            )

    def skip_to(self, target: int) -> None:
        sh = self.sh
        if self.pending:
            self.apply_pending()
        first_skipped = self.current_interval + 1
        span = target - self.current_interval
        refint = sh.refint
        if span >= refint:
            for c in self.counters:
                c.clear()
            boundary = True
        else:
            lo = (self.current_interval + 1) % refint
            hi = target % refint
            wrapped = lo > hi
            boundary = wrapped or lo == 0
            rows_per_interval = sh.rows_per_interval
            sequential = sh.sequential
            policy = sh.policy
            for c in self.counters:
                if not c:
                    continue
                doomed = []
                for row in c:
                    slot = (
                        row // rows_per_interval
                        if sequential
                        else policy.refresh_slot_of(row)
                    )
                    covered = (
                        (slot >= lo or slot <= hi)
                        if wrapped
                        else lo <= slot <= hi
                    )
                    if covered:
                        doomed.append(row)
                for row in doomed:
                    del c[row]
        if boundary:
            for decider in self.deciders:
                decider.clear_window()
        self.current_interval = target
        if self.tele is not None:
            self.tele.on_interval_skip(
                first_skipped, target, target * sh.interval_ns
            )

    def advance_to(self, interval: int) -> None:
        if interval <= self.current_interval:
            return
        if self.all_trivial and interval - self.current_interval > _SKIP_THRESHOLD:
            self.skip_to(interval)
        else:
            while self.current_interval < interval:
                self.refresh_tick()

    # -- the replay loop ------------------------------------------------

    def process_segment(self, start: int, end: int, bank: int, row: int,
                        is_attack: bool, interval: int) -> None:
        sh = self.sh
        self.advance_to(interval)
        times = sh.times
        tele = self.tele
        max_acts = sh.max_activations
        neighbors_of = sh.neighbors_of
        i = start
        while i < end:
            t = times[i]
            self.time_now = t
            if tele is not None:
                tele.now = t
            if self.pending:
                self.apply_pending()
            remaining = end - i
            if (
                remaining >= 2
                and self.can_batch
                and (self.first_trigger is not None
                     or self.mitigation_triggers == 0)
            ):
                room = -1 if max_acts is None else max_acts - self.activation_index
                if room != 1:
                    length = (
                        remaining if room < 0 or remaining <= room else room
                    )
                    if self.deciders:
                        clean, actions = self.deciders[bank].decide_run(
                            row, self.current_interval, length
                        )
                        done = length if clean == length else clean + 1
                    else:
                        actions = ()
                        done = length
                    if is_attack:
                        self.aggressors[bank].add(row)
                        self.attack_activations += done
                    c = self.counters[bank]
                    neighbors = neighbors_of.get(row)
                    if neighbors is None:
                        neighbors = neighbors_of[row] = sh.geometry.neighbors(row)
                    c.pop(row, None)
                    bump = float(done)
                    flip_threshold = self.flip_threshold
                    flips = self.bank_flips[bank]
                    flips_before = len(flips)
                    for victim in neighbors:
                        before = c.get(victim, 0.0)
                        count = before + bump
                        c[victim] = count
                        whole = int(count)
                        if whole > self.max_disturbance:
                            self.max_disturbance = whole
                        if before < flip_threshold <= count:
                            crossing = flip_threshold - int(before)
                            flips.append(
                                FlipEvent(
                                    bank=bank,
                                    row=victim,
                                    count=flip_threshold,
                                    time_ns=times[i + crossing - 1],
                                )
                            )
                    if len(flips) - flips_before > 1:
                        # several victims crossed inside one run: the
                        # reference emits flips in act order, not in
                        # victim order (timestamps break the tie)
                        flips[flips_before:] = sorted(
                            flips[flips_before:], key=lambda f: f.time_ns
                        )
                    self.activation_index += done
                    self.time_now = times[i + done - 1]
                    if tele is not None:
                        tele.now = self.time_now
                    if actions:
                        self.enqueue(bank, actions)
                    i += done
                    if max_acts is not None and self.activation_index >= max_acts:
                        self.stopped = True
                        return
                    continue
            # per-record path (mirror of the fast engine's tail)
            if is_attack:
                self.aggressors[bank].add(row)
                self.attack_activations += 1
            if self.plain_disturbance:
                c = self.counters[bank]
                neighbors = neighbors_of.get(row)
                if neighbors is None:
                    neighbors = neighbors_of[row] = sh.geometry.neighbors(row)
                c.pop(row, None)
                flip_threshold = self.flip_threshold
                for victim in neighbors:
                    before = c.get(victim, 0.0)
                    count = before + 1.0
                    c[victim] = count
                    whole = int(count)
                    if whole > self.max_disturbance:
                        self.max_disturbance = whole
                    if before < flip_threshold <= count:
                        self.bank_flips[bank].append(
                            FlipEvent(bank=bank, row=victim, count=whole,
                                      time_ns=t)
                        )
            else:
                self.do_activation(bank, row)
            if self.deciders:
                actions = self.deciders[bank].on_activation(
                    row, self.current_interval
                )
                if actions:
                    self.enqueue(bank, actions)
            self.activation_index += 1
            if self.first_trigger is None and self.mitigation_triggers > 0:
                self.first_trigger = self.activation_index
                if sh.stop_after_first_trigger:
                    self.stopped = True
                    return
            if max_acts is not None and self.activation_index >= max_acts:
                self.stopped = True
                return
            i += 1

    def drain(self) -> None:
        sh = self.sh
        if not (sh.stop_after_first_trigger and self.first_trigger):
            if (
                self.all_trivial
                and sh.total_intervals - 1 - self.current_interval
                > _SKIP_THRESHOLD
            ):
                self.skip_to(sh.total_intervals - 1)
            else:
                while self.current_interval < sh.total_intervals - 1:
                    self.refresh_tick()
        if self.pending:
            self.apply_pending()
        if self.tele is not None:
            self.tele.finish(self.activation_index, self.attack_activations)

    def result(self) -> SimResult:
        flips: List[FlipEvent] = []
        for events in self.bank_flips:
            flips.extend(events)
        out = SimResult(
            technique=self.technique,
            seed=self.seed,
            flip_threshold=self.flip_threshold,
        )
        out.normal_activations = self.activation_index
        out.attack_activations = self.attack_activations
        out.extra_activations = self.extra_activations
        out.fp_extra_activations = self.fp_extra_activations
        out.mitigation_triggers = self.mitigation_triggers
        out.flips = flips
        out.max_disturbance = self.max_disturbance
        out.intervals_simulated = self.current_interval + 1
        out.first_trigger_activation = self.first_trigger
        out.max_rh_buffer_occupancy = self.max_occupancy
        if self.deciders:
            out.table_bytes = self.deciders[0].table_bytes
        return out


# ---------------------------------------------------------------------------
# grid runner
# ---------------------------------------------------------------------------


def _run_plans(
    config: SimConfig,
    trace: Trace,
    plans: List[_Plan],
    refresh_policy: Optional[RefreshPolicy],
    stop_after_first_trigger: bool,
    max_activations: Optional[int],
    tracer,
    metrics,
    profiler,
) -> List[SimResult]:
    started = time.perf_counter()
    geometry = config.geometry
    policy = (
        refresh_policy if refresh_policy is not None
        else SequentialRefresh(geometry)
    )
    if policy.geometry is not geometry:
        raise ValueError("refresh policy geometry differs from device geometry")
    if tracer is not None and getattr(tracer, "enabled", True) and len(plans) > 1:
        raise ValueError(
            "a tracer records one event stream; attach it to a single-cell "
            "run (use metrics for fused multi-cell aggregation)"
        )
    for plan in plans:
        if plan.config.geometry != geometry:
            raise ValueError(
                "fused cells must share the base geometry "
                f"(cell technique={plan.factory and getattr(plan.factory, 'technique_name', '?')})"
            )
        if plan.config.timing != config.timing:
            raise ValueError("fused cells must share the base timing")

    with section_of(profiler, "engine:decode"):
        tape = _Tape(trace)
    shared = _Shared(
        geometry, policy, tape, stop_after_first_trigger, max_activations
    )

    with section_of(profiler, "engine:setup"):
        lanes: List[_Lane] = []
        assign: List[int] = []
        owners: Dict[Tuple, int] = {}
        for plan in plans:
            if plan.key is not None and plan.key in owners:
                assign.append(owners[plan.key])
                continue
            tele = EngineTelemetry.create(
                tracer if len(plans) == 1 else None, metrics
            )
            lane = _Lane(shared, plan.factory, plan.seed, plan.config, tele)
            index = len(lanes)
            lanes.append(lane)
            if plan.key is not None:
                owners[plan.key] = index
            assign.append(index)

    if metrics is not None:
        metrics.counter("fused.cells_requested").add(len(plans))
        metrics.counter("fused.cells_computed").add(len(lanes))
        metrics.counter("fused.cells_deduped").add(len(plans) - len(lanes))
        metrics.counter("fused.segments").add(len(tape.segments))
        metrics.counter("fused.records").add(len(tape.times))

    replay_started = time.perf_counter()
    active = list(lanes)
    for segment in tape.segments:
        start, end, bank, row, is_attack, interval = segment
        stopped_any = False
        for lane in active:
            lane.process_segment(start, end, bank, row, is_attack, interval)
            if lane.stopped:
                stopped_any = True
        if stopped_any:
            active = [lane for lane in active if not lane.stopped]
            if not active:
                break
    if profiler is not None:
        profiler.add("engine:replay", time.perf_counter() - replay_started)

    with section_of(profiler, "engine:drain"):
        for lane in lanes:
            lane.drain()

    wall = time.perf_counter() - started
    computed = [lane.result() for lane in lanes]
    results: List[SimResult] = []
    for plan, index in zip(plans, assign):
        base = computed[index]
        if base.seed == plan.seed and all(
            j == index or computed[j] is not base for j in range(len(computed))
        ) and assign.count(index) == 1:
            result = base
        else:
            # deduplicated replica: same simulation outcome, the cell's
            # own seed, and a private flips list
            result = replace(base, seed=plan.seed, flips=list(base.flips))
        result.wall_seconds = wall
        results.append(result)
    return results


def run_simulation_grid(
    config: SimConfig,
    trace: Trace,
    cells: Sequence[GridCell],
    refresh_policy: Optional[RefreshPolicy] = None,
    stop_after_first_trigger: bool = False,
    max_activations: Optional[int] = None,
    tracer=None,
    metrics=None,
    profiler=None,
) -> List[SimResult]:
    """Evaluate every grid *cell* in a single decode+replay of *trace*.

    Returns one :class:`SimResult` per cell, in cell order, each
    bit-identical (except ``wall_seconds``, which carries the wall time
    of the whole grid call) to a solo :func:`repro.sim.engine.run_simulation`
    of that cell.  The trace is consumed exactly once, so lazy traces
    are safe; the *seed* axis only re-seeds the mitigations -- callers
    whose traces vary per seed must issue one grid call per trace.
    """
    plans = [_plan_cell(cell, config) for cell in cells]
    return _run_plans(
        config, trace, plans, refresh_policy, stop_after_first_trigger,
        max_activations, tracer, metrics, profiler,
    )


def run_simulation_fused(
    config: SimConfig,
    trace: Trace,
    mitigation_factory: Optional[MitigationFactory],
    seed: int = 0,
    refresh_policy: Optional[RefreshPolicy] = None,
    stop_after_first_trigger: bool = False,
    max_activations: Optional[int] = None,
    tracer=None,
    metrics=None,
    profiler=None,
) -> SimResult:
    """Single-cell fused run -- the ``--engine fused`` entry point.

    Drop-in compatible with :func:`repro.sim.engine.run_simulation`; the
    grid machinery degenerates to one lane.  Accepts arbitrary
    mitigation factories (unknown techniques replay per-record through
    the real ``Mitigation`` object, exactly like the fast engine).
    """
    plans = [_Plan(mitigation_factory, seed, config, None)]
    return _run_plans(
        config, trace, plans, refresh_policy, stop_after_first_trigger,
        max_activations, tracer, metrics, profiler,
    )[0]
