"""Simulation layer: engine, metrics, experiments, attacks, sweeps."""

from repro.sim.attacks import (
    FloodingOutcome,
    HalfDoublePoint,
    MultiAggressorPoint,
    RemappedAdjacencyOutcome,
    SoftwareDetectionOutcome,
    TreeSaturationOutcome,
    flooding_experiment,
    half_double_experiment,
    multi_aggressor_experiment,
    remapped_adjacency_experiment,
    software_detection_experiment,
    tree_saturation_experiment,
    vulnerability_verdicts,
)
from repro.sim.engine import ENGINE_NAMES, get_engine, run_simulation
from repro.sim.executors import (
    EXECUTOR_NAMES,
    ExecutionContext,
    Executor,
    PoolExecutor,
    RetryPolicy,
    SerialExecutor,
    ShardFailure,
    ShardOutcome,
    ShardTimeout,
    get_executor,
)
from repro.sim.fast_engine import run_simulation_fast
from repro.sim.fused_engine import (
    GridCell,
    grid_cells,
    run_simulation_fused,
    run_simulation_grid,
)
from repro.sim.experiment import (
    TechniqueAggregate,
    compare_techniques,
    default_trace_factory,
    run_technique,
)
from repro.sim.metrics import SimResult
from repro.sim.sweep import (
    SweepPoint,
    sweep_counter_table,
    sweep_history_table,
    sweep_pbase,
)

__all__ = [
    "ENGINE_NAMES",
    "EXECUTOR_NAMES",
    "ExecutionContext",
    "Executor",
    "PoolExecutor",
    "RetryPolicy",
    "SerialExecutor",
    "ShardFailure",
    "ShardOutcome",
    "ShardTimeout",
    "get_executor",
    "FloodingOutcome",
    "HalfDoublePoint",
    "MultiAggressorPoint",
    "RemappedAdjacencyOutcome",
    "SoftwareDetectionOutcome",
    "SimResult",
    "SweepPoint",
    "TreeSaturationOutcome",
    "TechniqueAggregate",
    "compare_techniques",
    "default_trace_factory",
    "flooding_experiment",
    "half_double_experiment",
    "multi_aggressor_experiment",
    "remapped_adjacency_experiment",
    "software_detection_experiment",
    "GridCell",
    "get_engine",
    "grid_cells",
    "run_simulation",
    "run_simulation_fast",
    "run_simulation_fused",
    "run_simulation_grid",
    "run_technique",
    "sweep_counter_table",
    "sweep_history_table",
    "sweep_pbase",
    "tree_saturation_experiment",
    "vulnerability_verdicts",
]
