"""Trace-driven simulation loop.

Plays a trace through the :class:`~repro.controller.MemoryController`
(which owns the DRAM device and the per-bank mitigation instances),
issuing the ``ref`` command at every refresh-interval boundary and an
``act`` per trace record, then collects a :class:`SimResult`.

The paper's pipeline is gem5 -> memory trace -> mitigation simulation;
this module is the last stage of that pipeline.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.config import SimConfig
from repro.controller.controller import MemoryController, MitigationFactory
from repro.dram.refresh import RefreshPolicy
from repro.sim.metrics import SimResult
from repro.telemetry.hooks import EngineTelemetry
from repro.telemetry.profiler import section_of
from repro.traces.record import Trace


def _occupancies(controller: MemoryController):
    """Per-bank mitigation-table occupancy (None for tableless techniques)."""
    return [
        getattr(mitigation, "table_occupancy", None)
        for mitigation in controller.mitigations
    ]


def run_simulation(
    config: SimConfig,
    trace: Trace,
    mitigation_factory: Optional[MitigationFactory],
    seed: int = 0,
    refresh_policy: Optional[RefreshPolicy] = None,
    stop_after_first_trigger: bool = False,
    max_activations: Optional[int] = None,
    tracer=None,
    metrics=None,
    profiler=None,
) -> SimResult:
    """Run one technique (or no mitigation) over *trace*.

    ``mitigation_factory = None`` simulates an unprotected device --
    the baseline showing the attack would succeed.
    ``stop_after_first_trigger`` ends the run at the first mitigation
    trigger (used by the flooding experiments, which only need the
    activation count up to that point).

    ``tracer`` / ``metrics`` / ``profiler`` enable the observability
    layer (see :mod:`repro.telemetry`); all three default to off and
    none of them can alter the returned :class:`SimResult`.
    """
    started = time.perf_counter()
    tele = EngineTelemetry.create(tracer, metrics)
    with section_of(profiler, "engine:setup"):
        controller = MemoryController(
            config=config,
            mitigation_factory=mitigation_factory,
            refresh_policy=refresh_policy,
            seed=seed,
            telemetry=tele,
        )
    technique = "none"
    if controller.mitigations:
        technique = controller.mitigations[0].name
    result = SimResult(
        technique=technique, seed=seed, flip_threshold=config.flip_threshold
    )
    interval_ns = trace.meta.interval_ns
    total_intervals = trace.meta.total_intervals
    current_interval = -1
    activation_index = 0

    with section_of(profiler, "engine:replay"):
        for record in trace:
            record_interval = record.time_ns // interval_ns
            while current_interval < record_interval:
                current_interval += 1
                controller.refresh_tick()
                if tele is not None:
                    tele.on_interval(
                        current_interval,
                        current_interval * interval_ns,
                        result.normal_activations,
                        result.attack_activations,
                        _occupancies(controller),
                    )
            is_attack = record.is_attack
            controller.activate(
                record.bank, record.row, record.time_ns, is_attack
            )
            activation_index += 1
            result.normal_activations += 1
            if is_attack:
                result.attack_activations += 1
            if (
                result.first_trigger_activation is None
                and controller.mitigation_triggers > 0
            ):
                result.first_trigger_activation = activation_index
                if stop_after_first_trigger:
                    break
            if max_activations is not None and activation_index >= max_activations:
                break

    with section_of(profiler, "engine:drain"):
        if not (stop_after_first_trigger and result.first_trigger_activation):
            while current_interval < total_intervals - 1:
                current_interval += 1
                controller.refresh_tick()
                if tele is not None:
                    tele.on_interval(
                        current_interval,
                        current_interval * interval_ns,
                        result.normal_activations,
                        result.attack_activations,
                        _occupancies(controller),
                    )
        controller.finish()
    if tele is not None:
        tele.finish(result.normal_activations, result.attack_activations)

    device = controller.device
    result.extra_activations = controller.extra_activations
    result.fp_extra_activations = controller.fp_extra_activations
    result.mitigation_triggers = controller.mitigation_triggers
    result.flips = device.flips
    result.max_disturbance = device.max_disturbance
    result.intervals_simulated = current_interval + 1
    result.max_rh_buffer_occupancy = controller.max_buffer_occupancy
    if controller.mitigations:
        result.table_bytes = controller.mitigations[0].table_bytes
    result.wall_seconds = time.perf_counter() - started
    return result


#: engine names accepted by :func:`get_engine` (and the CLI ``--engine`` flag)
ENGINE_NAMES = ("reference", "fast", "fused")


def get_engine(name: str):
    """Resolve an engine name to its ``run_simulation``-compatible function.

    ``"reference"`` is the canonical per-record loop above; ``"fast"``
    is the batched engine of :mod:`repro.sim.fast_engine`; ``"fused"``
    is the structure-of-arrays grid engine of
    :mod:`repro.sim.fused_engine` (this resolves its single-cell
    wrapper -- campaign callers use :func:`repro.sim.fused_engine.
    run_simulation_grid` directly to share one trace decode across the
    whole cell grid).  All engines are kept field-for-field
    result-identical by the differential test harness.
    """
    if name == "reference":
        return run_simulation
    if name == "fast":
        from repro.sim.fast_engine import run_simulation_fast

        return run_simulation_fast
    if name == "fused":
        from repro.sim.fused_engine import run_simulation_fused

        return run_simulation_fused
    raise ValueError(
        f"unknown engine {name!r} (expected one of {', '.join(ENGINE_NAMES)})"
    )
