"""Batched fast-path simulation engine.

A drop-in replacement for :func:`repro.sim.engine.run_simulation` that
produces a **field-for-field identical** :class:`SimResult` (everything
except ``wall_seconds``) while running several times faster.  The
differential harness in ``tests/sim/test_differential.py`` pins that
equivalence as a tier-1 invariant.

Where the speed comes from
--------------------------

The reference engine routes every trace record through the full
controller / device / bank / disturbance object stack.  None of that
layering is observable in the result, only its arithmetic is, so this
engine replays the same arithmetic directly:

* **Chunked replay** -- records are grouped into per-interval chunks:
  the loop keeps the next interval boundary in nanoseconds, so chunk
  membership is one integer comparison per record and the refresh /
  weight state is resolved once per chunk instead of once per record.
* **Bulk RNG draws** -- the probabilistic deciders pre-draw their
  ``random()`` values in blocks, following the rewind protocol of
  :class:`repro.rng.BufferedRandom`.  Mersenne-Twister output is a
  fixed sequence, so the *k*-th draw is identical whether taken eagerly
  or from a block; interleaved calls (PARA's ``randrange`` on trigger)
  rewind the generator first, keeping the stream bit-exact with the
  reference mitigation objects.
* **Per-interval probability vectors** -- the TiVaPRoMi deciders cache
  ``refresh-slot -> probability`` per interval, computed from the same
  :func:`repro.core.weights.trigger_probability` math the reference
  evaluates row by row.
* **Run batching** -- consecutive identical records (the shape of a
  flooding trace: one row hammered for a whole interval) are decided in
  bulk.  A row's trigger probability is constant between triggers
  within an interval and the draws are a fixed pre-buffered sequence,
  so the no-trigger prefix of a run reduces to one scan over buffered
  draws plus a single ``+= n`` per victim counter; threshold crossings
  inside the run are recovered arithmetically with the exact per-record
  timestamp.
* **Empty-interval short-circuit** -- spans of intervals containing no
  trace records (the idle stretches of flooding traces, and every
  trailing interval after ``stop_after_first_trigger``) are skipped in
  one step for techniques whose ``on_refresh`` is decision-free
  (the TiVaPRoMi variants, PARA, MRLoc, and unmitigated runs): the
  periodic refresh of a whole span reduces to popping the disturbance
  counters whose refresh slot the span covers.  Counter-based
  techniques (TWiCe, CRA, CaPRoMi, ProHit) mutate state on every
  ``ref`` and therefore tick through refreshes one by one, exactly like
  the reference.

Mitigations with bespoke state machines run as real ``Mitigation``
objects behind a thin adapter -- identical decisions by construction --
while still enjoying the flattened record loop.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.config import SimConfig
from repro.controller.controller import MitigationFactory
from repro.core.tivapromi import LiPRoMi, LoLiPRoMi, LoPRoMi, TiVaPRoMiBase
from repro.core.weights import linear_weight, log_weight, trigger_probability
from repro.dram.disturbance import FlipEvent
from repro.dram.refresh import RefreshPolicy, SequentialRefresh
from repro.mitigations.base import (
    ActivateNeighbors,
    Mitigation,
    RecoveryRefresh,
    RefreshRow,
)
from repro.mitigations.para import PARA
from repro.rng import derive_seed
from repro.sim.metrics import SimResult
from repro.telemetry.hooks import EngineTelemetry
from repro.telemetry.profiler import section_of
from repro.traces.record import Trace

#: minimum number of empty intervals before the span short-circuit is
#: cheaper than ticking through them
_SKIP_THRESHOLD = 4


class _GenericDecider:
    """Adapter driving a real :class:`Mitigation` object.

    Used for techniques without a specialised fast path (ProHit, MRLoc,
    CaPRoMi, TWiCe, CRA, and any user-supplied factory): decisions are
    made by the reference implementation itself, so equivalence is by
    construction.
    """

    __slots__ = ("mitigation", "trivial_refresh")

    def __init__(self, mitigation: Mitigation):
        self.mitigation = mitigation
        # a mitigation that inherits the base no-op on_refresh has no
        # refresh-time state at all, so empty intervals can be skipped
        self.trivial_refresh = (
            type(mitigation).on_refresh is Mitigation.on_refresh
        )

    def attach_telemetry(self, telemetry) -> None:
        # the wrapped reference mitigation owns the technique hooks
        self.mitigation.telemetry = telemetry

    @property
    def name(self) -> str:
        return self.mitigation.name

    @property
    def table_bytes(self) -> int:
        return self.mitigation.table_bytes

    @property
    def table_occupancy(self):
        return getattr(self.mitigation, "table_occupancy", None)

    def on_activation(self, row: int, interval: int):
        return self.mitigation.on_activation(row, interval)

    def on_refresh(self, interval: int):
        return self.mitigation.on_refresh(interval)

    def clear_window(self) -> None:
        # only reachable when trivial_refresh, i.e. on_refresh is the
        # stateless base no-op: nothing to clear
        pass


class _RunMethodDecider(_GenericDecider):
    """Run-batching adapter for techniques exposing ``observe_run``.

    A technique that can consume a run of identical activations in one
    step (the modern counter families) implements
    ``observe_run(row, interval, count) -> (clean, actions)`` with the
    same contract as :meth:`decide_run`; this adapter simply forwards,
    keeping the batching arithmetic inside the technique module while
    decisions remain the reference object's own.
    """

    __slots__ = ()

    def decide_run(self, row: int, interval: int, count: int):
        return self.mitigation.observe_run(row, interval, count)


class _TiVaPRoMiDecider:
    """Fast path for LiPRoMi / LoPRoMi / LoLiPRoMi.

    Mirrors :class:`TiVaPRoMiBase` exactly: one ``random()`` per
    activation (bulk-drawn), the FIFO history table as an
    insertion-ordered dict, and per-interval ``slot -> probability``
    vectors computed with :func:`trigger_probability`.
    """

    __slots__ = (
        "name", "mitigation", "weighting", "pbase", "capacity", "refint",
        "slot_fn", "_rand", "_buf", "_pos", "table", "_slots", "_slot_p",
        "_p_interval", "telemetry",
    )

    trivial_refresh = True

    def __init__(self, mitigation: TiVaPRoMiBase):
        self.mitigation = mitigation
        self.telemetry = None
        self.name = mitigation.name
        self.weighting = type(mitigation).weighting
        self.pbase = mitigation.pbase
        self.capacity = mitigation.history.capacity
        self.refint = mitigation.refint
        self.slot_fn = mitigation.refresh_slot_fn
        # block-buffered random(): the k-th Mersenne-Twister draw is the
        # same value whether taken eagerly or pre-drawn, and this
        # mitigation never interleaves other generator calls
        self._rand = mitigation._rng.random
        self._buf: List[float] = []
        self._pos = 0
        #: FIFO history-table mirror: dict preserves insertion order,
        #: in-place update keeps position, eviction removes the oldest
        self.table: Dict[int, int] = {}
        self._slots: Dict[int, int] = {}
        self._slot_p: Dict[int, float] = {}
        self._p_interval: Optional[int] = None

    def attach_telemetry(self, telemetry) -> None:
        self.telemetry = telemetry

    @property
    def table_bytes(self) -> int:
        return self.mitigation.table_bytes

    @property
    def table_occupancy(self) -> int:
        return len(self.table)

    def on_activation(self, row: int, interval: int):
        pos = self._pos
        buf = self._buf
        if pos >= len(buf):
            rand = self._rand
            buf = self._buf = [rand() for _ in range(4096)]
            pos = 0
            if self.telemetry is not None:
                self.telemetry.on_rng_block(self.mitigation.bank, 4096)
        draw = buf[pos]
        self._pos = pos + 1
        p = self._probability(row, interval)
        if draw >= p:
            return ()
        return self._record_trigger(row, interval)

    def _probability(self, row: int, interval: int) -> float:
        """Current trigger probability of *row* (no draw consumed).

        The weight of a row not in the history table depends only on
        its refresh slot, so those probabilities are cached as a
        per-interval ``slot -> p`` vector built lazily from
        :func:`trigger_probability`.  Table hits inline the same Eq. 1 /
        Eq. 2 arithmetic (both the stored and the current interval are
        window-relative by construction, so the reference's range
        validation cannot fire).
        """
        window_now = interval % self.refint
        stored = self.table.get(row)
        if stored is None:
            if interval != self._p_interval:
                self._p_interval = interval
                self._slot_p = {}
            slot = self._slots.get(row)
            if slot is None:
                slot = self._slots[row] = self.slot_fn(row)
            p = self._slot_p.get(slot)
            if p is None:
                p = self._slot_p[slot] = trigger_probability(
                    window_now, slot, self.refint, self.pbase,
                    self.weighting, in_table=False,
                )
            return p
        weight = window_now - stored
        if weight < 0:
            weight += self.refint
        if self.weighting == "log":
            weight = 1 << weight.bit_length()
        p = weight * self.pbase
        return p if p < 1.0 else 1.0

    def _weight_of(self, row: int, interval: int, hit: bool) -> int:
        """Effective (uncapped) weight, telemetry only -- never on the
        decision path, which uses the cached :meth:`_probability`."""
        window_now = interval % self.refint
        if hit:
            weight = window_now - self.table[row]
            if weight < 0:
                weight += self.refint
            # a history hit is weighted linearly except under pure 'log'
            return log_weight(weight) if self.weighting == "log" else weight
        slot = self._slots.get(row)
        if slot is None:
            slot = self._slots[row] = self.slot_fn(row)
        weight = linear_weight(window_now, slot, self.refint)
        # both 'log' and 'loli' quantise rows missing from the table
        return weight if self.weighting == "linear" else log_weight(weight)

    def _record_trigger(self, row: int, interval: int):
        table = self.table
        telemetry = self.telemetry
        if telemetry is not None:
            hit = row in table
            telemetry.on_trigger_weight(
                self.mitigation.bank, row, interval,
                self._weight_of(row, interval, hit), hit,
            )
        if row in table:
            table[row] = interval % self.refint
        else:
            if len(table) >= self.capacity:
                oldest = next(iter(table))
                del table[oldest]
                if telemetry is not None:
                    telemetry.on_history_evict(
                        self.mitigation.bank, oldest, interval
                    )
            table[row] = interval % self.refint
        return (ActivateNeighbors(row=row),)

    def decide_run(self, row: int, interval: int, count: int):
        """Decide *count* consecutive activations of *row* in one go.

        Returns ``(clean, actions)``: ``clean`` is the number of
        non-trigger decisions before the first trigger.  ``clean ==
        count`` means no trigger (exactly *count* draws consumed);
        otherwise ``clean + 1`` draws were consumed and *actions* is the
        trigger's action tuple.  Exact because the probability of a row
        is constant between triggers within one interval and the draws
        are a fixed pre-buffered sequence.
        """
        p = self._probability(row, interval)
        clean = 0
        pos = self._pos
        buf = self._buf
        while clean < count:
            if pos >= len(buf):
                rand = self._rand
                buf = self._buf = [rand() for _ in range(4096)]
                pos = 0
                if self.telemetry is not None:
                    self.telemetry.on_rng_block(self.mitigation.bank, 4096)
            end = pos + (count - clean)
            if end > len(buf):
                end = len(buf)
            if p > 0.0:
                base = pos
                while pos < end:
                    if buf[pos] < p:
                        clean += pos - base
                        self._pos = pos + 1
                        return clean, self._record_trigger(row, interval)
                    pos += 1
                clean += end - base
            else:
                clean += end - pos
                pos = end
        self._pos = pos
        return count, ()

    def on_refresh(self, interval: int):
        if interval % self.refint == 0:
            self.table.clear()
        return ()

    def clear_window(self) -> None:
        self.table.clear()


class _PARADecider:
    """Fast path for PARA: buffered draws, cached assumed adjacency.

    Implements the same rewind-on-interleave protocol as
    :class:`repro.rng.BufferedRandom` with the buffer inlined as plain
    fields: a trigger's ``randrange`` must consume the generator right
    after the draws handed out so far, so the generator is restored to
    the block's start state and the consumed draws are replayed.  A
    modest block size keeps that replay cheap.
    """

    __slots__ = (
        "name", "mitigation", "probability", "_rng", "_buf", "_pos",
        "_state", "geometry", "_neighbors", "telemetry",
    )

    trivial_refresh = True

    def __init__(self, mitigation: PARA):
        self.mitigation = mitigation
        self.telemetry = None
        self.name = mitigation.name
        self.probability = mitigation.probability
        self._rng = mitigation._rng
        self._buf: List[float] = []
        self._pos = 0
        self._state: object = None
        self.geometry = mitigation.config.geometry
        self._neighbors: Dict[int, Tuple[int, ...]] = {}

    def attach_telemetry(self, telemetry) -> None:
        self.telemetry = telemetry

    @property
    def table_bytes(self) -> int:
        return self.mitigation.table_bytes

    @property
    def table_occupancy(self):
        return None  # PARA is stateless

    def on_activation(self, row: int, interval: int):
        pos = self._pos
        buf = self._buf
        if pos >= len(buf):
            rng = self._rng
            self._state = rng.getstate()
            rand = rng.random
            buf = self._buf = [rand() for _ in range(256)]
            pos = 0
            if self.telemetry is not None:
                self.telemetry.on_rng_block(self.mitigation.bank, 256)
        draw = buf[pos]
        pos += 1
        self._pos = pos
        if draw >= self.probability:
            return ()
        rng = self._rng
        rng.setstate(self._state)
        for _ in range(pos):
            rng.random()
        self._buf = []
        self._pos = 0
        neighbors = self._neighbors.get(row)
        if neighbors is None:
            neighbors = self._neighbors[row] = self.geometry.assumed_neighbors(row)
        victim = neighbors[rng.randrange(len(neighbors))]
        return (RefreshRow(row=victim, trigger_row=row),)

    def decide_run(self, row: int, interval: int, count: int):
        """Bulk-decide *count* consecutive activations (see
        :meth:`_TiVaPRoMiDecider.decide_run` for the contract)."""
        p = self.probability
        clean = 0
        pos = self._pos
        buf = self._buf
        rng = self._rng
        while clean < count:
            if pos >= len(buf):
                self._state = rng.getstate()
                rand = rng.random
                buf = self._buf = [rand() for _ in range(256)]
                pos = 0
                if self.telemetry is not None:
                    self.telemetry.on_rng_block(self.mitigation.bank, 256)
            end = pos + (count - clean)
            if end > len(buf):
                end = len(buf)
            base = pos
            while pos < end:
                if buf[pos] < p:
                    clean += pos - base
                    consumed = pos + 1
                    rng.setstate(self._state)
                    for _ in range(consumed):
                        rng.random()
                    self._buf = []
                    self._pos = 0
                    neighbors = self._neighbors.get(row)
                    if neighbors is None:
                        neighbors = self._neighbors[row] = (
                            self.geometry.assumed_neighbors(row)
                        )
                    victim = neighbors[rng.randrange(len(neighbors))]
                    return clean, (RefreshRow(row=victim, trigger_row=row),)
                pos += 1
            clean += end - base
        self._pos = pos
        return count, ()

    def on_refresh(self, interval: int):
        return ()

    def clear_window(self) -> None:
        pass


def _make_decider(mitigation: Mitigation):
    kind = type(mitigation)
    if kind in (LiPRoMi, LoPRoMi, LoLiPRoMi):
        return _TiVaPRoMiDecider(mitigation)
    if kind is PARA:
        return _PARADecider(mitigation)
    if hasattr(mitigation, "observe_run"):
        return _RunMethodDecider(mitigation)
    return _GenericDecider(mitigation)


def run_simulation_fast(
    config: SimConfig,
    trace: Trace,
    mitigation_factory: Optional[MitigationFactory],
    seed: int = 0,
    refresh_policy: Optional[RefreshPolicy] = None,
    stop_after_first_trigger: bool = False,
    max_activations: Optional[int] = None,
    tracer=None,
    metrics=None,
    profiler=None,
) -> SimResult:
    """Drop-in fast replacement for :func:`repro.sim.engine.run_simulation`.

    Same signature, same semantics, same ``SimResult`` fields (only
    ``wall_seconds`` differs).  See the module docstring for the
    batching strategy and ``tests/sim/test_differential.py`` for the
    equivalence guarantee.  The telemetry event stream legitimately
    differs from the reference engine's (batched rollovers, rng-block
    events); only the ``SimResult`` is pinned identical.
    """
    geometry = config.geometry
    policy = refresh_policy if refresh_policy is not None else SequentialRefresh(geometry)
    if policy.geometry is not geometry:
        raise ValueError("refresh policy geometry differs from device geometry")
    num_banks = geometry.num_banks
    refint = geometry.refint
    started = time.perf_counter()
    tele = EngineTelemetry.create(tracer, metrics)

    with section_of(profiler, "engine:setup"):
        if mitigation_factory is None:
            deciders: List = []
        else:
            deciders = [
                _make_decider(
                    mitigation_factory(
                        config, bank, derive_seed(seed, "mitigation", bank)
                    )
                )
                for bank in range(num_banks)
            ]
        if tele is not None:
            for decider in deciders:
                decider.attach_telemetry(tele)
    technique = deciders[0].name if deciders else "none"
    result = SimResult(
        technique=technique, seed=seed, flip_threshold=config.flip_threshold
    )

    interval_ns = trace.meta.interval_ns
    total_intervals = trace.meta.total_intervals
    flip_threshold = config.flip_threshold
    distance2 = config.distance2_rate
    sequential = type(policy) is SequentialRefresh
    rows_per_interval = geometry.rows_per_interval
    all_trivial = all(decider.trivial_refresh for decider in deciders)

    # ground-truth device state, kept flat (per-bank dicts and lists)
    counters: List[Dict[int, float]] = [{} for _ in range(num_banks)]
    bank_flips: List[List[FlipEvent]] = [[] for _ in range(num_banks)]
    aggressors: List[set] = [set() for _ in range(num_banks)]
    neighbors_of: Dict[int, Tuple[int, ...]] = {}
    second_of: Dict[int, List[int]] = {}
    max_disturbance = 0
    extra_activations = 0
    fp_extra_activations = 0
    mitigation_triggers = 0
    max_occupancy = 0
    pending: List[Tuple[int, object, bool]] = []
    time_now = 0
    current_interval = -1
    activation_index = 0
    attack_activations = 0
    first_trigger: Optional[int] = None

    def do_activation(bank: int, row: int) -> None:
        """Mirror of Bank.activate: restore *row*, disturb its neighbours."""
        nonlocal max_disturbance
        c = counters[bank]
        flips = bank_flips[bank]
        neighbors = neighbors_of.get(row)
        if neighbors is None:
            neighbors = neighbors_of[row] = geometry.neighbors(row)
        c.pop(row, None)
        for victim in neighbors:
            before = c.get(victim, 0.0)
            count = before + 1.0
            c[victim] = count
            whole = int(count)
            if whole > max_disturbance:
                max_disturbance = whole
            if before < flip_threshold <= count:
                flips.append(
                    FlipEvent(bank=bank, row=victim, count=whole, time_ns=time_now)
                )
        if distance2 > 0.0:
            seconds = second_of.get(row)
            if seconds is None:
                seconds = second_of[row] = [
                    second
                    for neighbor in neighbors
                    for second in geometry.neighbors(neighbor)
                    if second != row
                ]
            for victim in seconds:
                before = c.get(victim, 0.0)
                count = before + distance2
                c[victim] = count
                whole = int(count)
                if whole > max_disturbance:
                    max_disturbance = whole
                if before < flip_threshold <= count:
                    flips.append(
                        FlipEvent(bank=bank, row=victim, count=whole, time_ns=time_now)
                    )

    def apply_pending() -> None:
        """Mirror of MemoryController._drain_buffer / _apply."""
        nonlocal extra_activations, fp_extra_activations, mitigation_triggers
        for bank, action, was_attack in pending:
            mitigation_triggers += 1
            if isinstance(action, ActivateNeighbors):
                row = action.row
                neighbors = neighbors_of.get(row)
                if neighbors is None:
                    neighbors = neighbors_of[row] = geometry.neighbors(row)
                for victim in neighbors:
                    do_activation(bank, victim)
                cost = len(neighbors)
            elif isinstance(action, RefreshRow):
                do_activation(bank, action.row)
                cost = 1
            elif isinstance(action, RecoveryRefresh):
                cost = 0
                for aggressor in action.rows:
                    neighbors = neighbors_of.get(aggressor)
                    if neighbors is None:
                        neighbors = neighbors_of[aggressor] = geometry.neighbors(
                            aggressor
                        )
                    for victim in neighbors:
                        do_activation(bank, victim)
                    cost += len(neighbors)
            else:  # pragma: no cover - future action kinds
                raise TypeError(f"unknown mitigation action {action!r}")
            extra_activations += cost
            if not was_attack:
                fp_extra_activations += cost
            if tele is not None:
                tele.on_apply(
                    bank, action.row, current_interval, cost, not was_attack
                )
        pending.clear()

    def enqueue(bank: int, actions) -> None:
        nonlocal max_occupancy
        bank_aggressors = aggressors[bank]
        for action in actions:
            pending.append((bank, action, action.trigger_row in bank_aggressors))
            if tele is not None:
                tele.on_trigger(
                    bank, action.row, current_interval, type(action).__name__
                )
        if len(pending) > max_occupancy:
            max_occupancy = len(pending)

    def refresh_tick() -> None:
        """Mirror of MemoryController.refresh_tick (one ``ref`` command)."""
        nonlocal current_interval
        if pending:
            apply_pending()
        current_interval += 1
        rows = policy.rows_for_interval(current_interval % refint)
        for c in counters:
            for row in rows:
                c.pop(row, None)
        for bank, decider in enumerate(deciders):
            actions = decider.on_refresh(current_interval)
            if actions:
                enqueue(bank, actions)
        if pending:
            apply_pending()
        if tele is not None:
            tele.on_interval(
                current_interval,
                current_interval * interval_ns,
                activation_index,
                attack_activations,
                [decider.table_occupancy for decider in deciders],
            )

    def skip_to(target: int) -> None:
        """Fast-forward over refresh ticks of record-free intervals.

        Only legal when every decider's ``on_refresh`` is decision-free:
        the span's ticks then reduce to popping the disturbance counters
        whose refresh slot falls inside the span, plus a history clear
        if a window boundary was crossed.
        """
        nonlocal current_interval
        if pending:
            apply_pending()
        first_skipped = current_interval + 1
        span = target - current_interval
        if span >= refint:
            # at least one full window: every row refreshed at least once
            for c in counters:
                c.clear()
            boundary = True
        else:
            lo = (current_interval + 1) % refint
            hi = target % refint
            wrapped = lo > hi
            boundary = wrapped or lo == 0
            for c in counters:
                if not c:
                    continue
                doomed = []
                for row in c:
                    slot = (
                        row // rows_per_interval
                        if sequential
                        else policy.refresh_slot_of(row)
                    )
                    covered = (
                        (slot >= lo or slot <= hi)
                        if wrapped
                        else lo <= slot <= hi
                    )
                    if covered:
                        doomed.append(row)
                for row in doomed:
                    del c[row]
        if boundary:
            for decider in deciders:
                decider.clear_window()
        current_interval = target
        if tele is not None:
            tele.on_interval_skip(
                first_skipped, target, target * interval_ns
            )

    # Hot loop.  A record starts a new chunk exactly when its timestamp
    # reaches the next interval boundary (equivalent to the reference's
    # ``time_ns // interval_ns > current_interval`` for non-negative
    # times), so the common case is one integer comparison per record.
    # The distance-1 disturbance update is inlined; ``do_activation``
    # is kept for the rare mitigation-action path.
    stop = False
    replay_started = time.perf_counter()
    boundary = 0  # (current_interval + 1) * interval_ns
    neighbors_get = neighbors_of.get
    has_deciders = bool(deciders)
    plain_disturbance = distance2 == 0.0
    # Run batching is legal when every decider can bulk-decide (the
    # specialised probabilistic deciders, or none at all for the
    # unmitigated baseline) and disturbance moves in whole +1 steps.
    can_batch = plain_disturbance and all(
        hasattr(decider, "decide_run") for decider in deciders
    )
    it = iter(trace)
    replay: List = []  # pushed-back records, popped in LIFO order
    while True:
        if replay:
            record = replay.pop()
        else:
            record = next(it, None)
            if record is None:
                break
        time_ns = record[0]
        if time_ns >= boundary:
            record_interval = time_ns // interval_ns
            if all_trivial and record_interval - current_interval > _SKIP_THRESHOLD:
                skip_to(record_interval)
            else:
                while current_interval < record_interval:
                    refresh_tick()
            boundary = (current_interval + 1) * interval_ns
        time_now = time_ns
        if tele is not None:
            tele.now = time_ns
        if pending:
            apply_pending()
        bank = record[1]
        row = record[2]
        is_attack = record[3]

        # Batch a run of identical records (flooding traces hammer one
        # row, so runs span whole intervals).  A row's probability is
        # constant between triggers within one interval and the draws
        # are pre-buffered, so the whole no-trigger prefix collapses
        # into one draw scan plus one counter update per victim.  The
        # per-act first-trigger check is skipped because it cannot fire
        # mid-batch: no action is *applied* during the run (only
        # enqueued at its very end), so ``mitigation_triggers`` cannot
        # rise from zero -- runs starting in any other state are
        # excluded below.
        if can_batch and (first_trigger is not None or mitigation_triggers == 0):
            run = None
            room = -1 if max_activations is None else max_activations - activation_index
            if room != 1:
                while True:
                    nxt = replay.pop() if replay else next(it, None)
                    if nxt is None:
                        break
                    if (
                        nxt[0] >= boundary
                        or nxt[1] != bank
                        or nxt[2] != row
                        or nxt[3] != is_attack
                    ):
                        replay.append(nxt)
                        break
                    if run is None:
                        run = [record, nxt]
                    else:
                        run.append(nxt)
                    if len(run) == room:
                        break
            if run is not None:
                length = len(run)
                if has_deciders:
                    clean, actions = deciders[bank].decide_run(
                        row, current_interval, length
                    )
                    done = length if clean == length else clean + 1
                else:
                    actions = ()
                    done = length
                if is_attack:
                    aggressors[bank].add(row)
                    attack_activations += done
                c = counters[bank]
                neighbors = neighbors_get(row)
                if neighbors is None:
                    neighbors = neighbors_of[row] = geometry.neighbors(row)
                c.pop(row, None)
                bump = float(done)
                flips = bank_flips[bank]
                flips_before = len(flips)
                for victim in neighbors:
                    before = c.get(victim, 0.0)
                    count = before + bump
                    c[victim] = count
                    whole = int(count)
                    if whole > max_disturbance:
                        max_disturbance = whole
                    if before < flip_threshold <= count:
                        # counts move in whole +1 steps, so the act at
                        # which the threshold is crossed is computable
                        crossing = flip_threshold - int(before)
                        flips.append(
                            FlipEvent(
                                bank=bank,
                                row=victim,
                                count=flip_threshold,
                                time_ns=run[crossing - 1][0],
                            )
                        )
                if len(flips) - flips_before > 1:
                    # several victims crossed inside one run: the
                    # reference emits flips in act order, not in victim
                    # order (timestamps break the tie)
                    flips[flips_before:] = sorted(
                        flips[flips_before:], key=lambda f: f.time_ns
                    )
                activation_index += done
                time_now = run[done - 1][0]
                if tele is not None:
                    tele.now = time_now
                if actions:
                    enqueue(bank, actions)
                if done < length:
                    # acts after the trigger act are re-queued raw; the
                    # enqueued action applies at the next one, exactly
                    # like the reference's next-command drain
                    replay.extend(reversed(run[done:]))
                if max_activations is not None and activation_index >= max_activations:
                    stop = True
                    break
                continue

        if is_attack:
            aggressors[bank].add(row)
            attack_activations += 1
        if plain_disturbance:
            c = counters[bank]
            neighbors = neighbors_get(row)
            if neighbors is None:
                neighbors = neighbors_of[row] = geometry.neighbors(row)
            c.pop(row, None)
            for victim in neighbors:
                before = c.get(victim, 0.0)
                count = before + 1.0
                c[victim] = count
                whole = int(count)
                if whole > max_disturbance:
                    max_disturbance = whole
                if before < flip_threshold <= count:
                    bank_flips[bank].append(
                        FlipEvent(bank=bank, row=victim, count=whole, time_ns=time_ns)
                    )
        else:
            do_activation(bank, row)
        if has_deciders:
            actions = deciders[bank].on_activation(row, current_interval)
            if actions:
                enqueue(bank, actions)
        activation_index += 1
        if first_trigger is None and mitigation_triggers > 0:
            first_trigger = activation_index
            if stop_after_first_trigger:
                stop = True
                break
        if max_activations is not None and activation_index >= max_activations:
            stop = True
            break

    if profiler is not None:
        profiler.add("engine:replay", time.perf_counter() - replay_started)

    with section_of(profiler, "engine:drain"):
        if not (stop_after_first_trigger and first_trigger):
            if (
                all_trivial
                and total_intervals - 1 - current_interval > _SKIP_THRESHOLD
            ):
                skip_to(total_intervals - 1)
            else:
                while current_interval < total_intervals - 1:
                    refresh_tick()
        if pending:
            apply_pending()
    if tele is not None:
        tele.finish(activation_index, attack_activations)

    flips: List[FlipEvent] = []
    for events in bank_flips:
        flips.extend(events)
    result.normal_activations = activation_index
    result.attack_activations = attack_activations
    result.extra_activations = extra_activations
    result.fp_extra_activations = fp_extra_activations
    result.mitigation_triggers = mitigation_triggers
    result.flips = flips
    result.max_disturbance = max_disturbance
    result.intervals_simulated = current_interval + 1
    result.first_trigger_activation = first_trigger
    result.max_rh_buffer_occupancy = max_occupancy
    if deciders:
        result.table_bytes = deciders[0].table_bytes
    result.wall_seconds = time.perf_counter() - started
    return result
