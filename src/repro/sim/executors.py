"""The pluggable executor contract behind :func:`run_campaign`.

A campaign is a list of :class:`CampaignJob` shards -- pure
(technique, seed) work units -- and an :class:`Executor` is *how* they
run: inline in this process, over a local process pool, or leased from
a shared filesystem work queue by workers on other hosts (see
:class:`repro.campaign.queue.QueueExecutor`).  The contract every
implementation owes its caller:

* **Ordering** -- :meth:`Executor.execute` returns one slot per input
  job, in input order, regardless of completion order.  A slot is a
  :data:`JobOutcome` for a completed shard or ``None`` for a shard
  degraded under ``on_failure="skip"``.
* **Streaming** -- ``ctx.shard_callback(outcome, attempts)`` fires as
  each shard lands (the durable runner checkpoints from it) and
  ``ctx.progress(done, total)`` after every resolved shard, so
  completion order is observable even though the return value is
  canonical.
* **Retry / timeout / degradation** -- ``ctx.retry`` (a
  :class:`RetryPolicy`) governs every implementation alike: each
  failed attempt is counted under the ``campaign.*`` metrics, retried
  with backoff up to ``max_retries`` extra attempts, and exhaustion
  either re-raises (``on_failure="raise"``) or appends a
  :class:`ShardFailure` to ``ctx.failures`` and leaves the slot
  ``None`` (``"skip"``).  Hung shards must be bounded where the
  implementation can observe them (pool round timeouts, queue lease
  expiry); the serial executor is exempt by construction and documents
  it.
* **Determinism** -- executors transport results, they never compute
  differently: for any fault-free campaign, every implementation
  yields byte-identical results for every shard.  The shared contract
  suite (``tests/campaign/test_executors.py``) asserts all of the
  above for every registered executor.

:func:`get_executor` resolves the CLI names (``auto``/``serial``/
``pool``/``queue``); the spec lives in ``docs/distributed.md``.
"""

from __future__ import annotations

import math
import os
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from contextlib import ExitStack
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    ClassVar,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.config import SimConfig
from repro.mitigations.registry import make_factory
from repro.rng import derive_seed
from repro.sim.engine import get_engine
from repro.sim.metrics import SimResult
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import SpanTracer, span_of
from repro.telemetry.statusbus import StatusBus
from repro.traces.mixer import paper_mixed_workload
from repro.traces.trace_io import load_trace_npz

#: called as ``progress(completed_jobs, total_jobs)`` after each chunk
ProgressCallback = Callable[[int, int], None]

#: shard failure policies accepted by :class:`RetryPolicy`
ON_FAILURE_MODES = ("raise", "skip")

#: executor names accepted by :func:`get_executor` (and ``--executor``)
EXECUTOR_NAMES = ("auto", "serial", "pool", "queue")


class ShardTimeout(RuntimeError):
    """A shard attempt exceeded the retry policy's ``shard_timeout``."""

    shard_fault_kind = "timeout"


@dataclass(frozen=True)
class RetryPolicy:
    """Worker-level fault handling for a campaign.

    ``max_retries`` extra attempts are granted per shard beyond the
    first; retry *n* (1-based) is preceded by a backoff delay of
    ``min(backoff_cap, backoff_base * backoff_factor ** (n - 1))``
    seconds.  ``shard_timeout`` bounds one pool dispatch round: a round
    of *n* pending shards on a *w*-wide pool may take
    ``shard_timeout * ceil(n / w)`` seconds before every unfinished
    shard in it is declared hung (each then consumes one retry
    attempt), so set it comfortably above a single shard's expected
    duration.  Timeouts require pool mode; inline execution
    (``workers=0``) is single-threaded and cannot interrupt a shard.
    The queue executor bounds hangs with its *lease timeout* instead
    (a vanished or hung worker's lease expires and the shard is
    re-ticketed), and ``shard_timeout`` is not used there.

    ``on_failure`` decides what happens when a shard exhausts its
    attempts: ``"raise"`` re-raises the shard's final exception,
    ``"skip"`` records a :class:`ShardFailure` and degrades the
    campaign summary instead.
    """

    max_retries: int = 0
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    backoff_cap: float = 30.0
    shard_timeout: Optional[float] = None
    on_failure: str = "raise"

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0: {self.max_retries}")
        if self.on_failure not in ON_FAILURE_MODES:
            raise ValueError(
                f"on_failure must be one of {ON_FAILURE_MODES}: "
                f"{self.on_failure!r}"
            )
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError(
                f"shard_timeout must be positive: {self.shard_timeout}"
            )
        if self.backoff_base < 0 or self.backoff_factor < 0:
            raise ValueError("backoff parameters must be non-negative")

    def delay(self, retry: int) -> float:
        """Backoff before 1-based retry number *retry* (0 for retry 0)."""
        if retry <= 0 or self.backoff_base == 0:
            return 0.0
        return min(
            self.backoff_cap,
            self.backoff_base * self.backoff_factor ** (retry - 1),
        )


@dataclass
class ShardFailure:
    """One shard that exhausted its attempts under ``on_failure="skip"``."""

    technique: str
    seed: int
    attempts: int
    kind: str  # "error" | "crash" | "timeout"
    error: str

    def as_dict(self) -> Dict[str, Any]:
        return {
            "technique": self.technique,
            "seed": self.seed,
            "attempts": self.attempts,
            "kind": self.kind,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ShardFailure":
        return cls(
            technique=data["technique"],
            seed=int(data["seed"]),
            attempts=int(data["attempts"]),
            kind=data["kind"],
            error=data.get("error", ""),
        )


@dataclass(frozen=True)
class CampaignJob:
    """One (technique, seed) unit of work; fully picklable."""

    config: SimConfig
    technique: Optional[str]
    seed: int
    total_intervals: int
    workload_kwargs: tuple = ()  # sorted (key, value) pairs
    #: pre-serialised trace shared by every technique of this seed;
    #: ``None`` regenerates the trace from the workload knobs instead
    trace_path: Optional[str] = None
    engine: str = "reference"
    #: collect a per-job :class:`MetricsRegistry` in the worker and ship
    #: it back for merging (tracers cannot cross process boundaries, but
    #: metric counters merge exactly)
    collect_metrics: bool = False
    #: retry attempt number (0 = first try); informs fault injection
    attempt: int = 0
    #: test-only deterministic fault hook (see :mod:`repro.campaign.faults`)
    fault_injector: Optional[Any] = None
    #: record a worker-local span tree (shard -> trace/simulate) and ship
    #: it back serialised for re-parenting, like the metrics registry
    collect_spans: bool = False
    #: deterministic id seed shared by the campaign's tracers
    span_seed: str = ""
    #: status-bus directory for worker heartbeats (None = no bus)
    status_dir: Optional[str] = None


#: (technique, seed, result, per-job metrics or None, serialised spans or None)
JobOutcome = Tuple[
    str, int, SimResult, Optional[MetricsRegistry], Optional[Dict[str, Any]]
]

#: called with each completed shard outcome and its attempt count; the
#: durable campaign runner uses this to checkpoint shards as they land
ShardCallback = Callable[[JobOutcome, int], None]


@dataclass
class ShardOutcome:
    """One completed shard, as a named record instead of a bare tuple.

    The typed face of :data:`JobOutcome`: executors that transport
    results out of process (the filesystem queue) serialise and
    rehydrate shards through :meth:`as_dict`/:meth:`from_dict`, and
    the round trip reuses the exact serialisation the checkpoint store
    uses (``SimResult.as_dict(include_wall=True)``), so a shard that
    travelled through a queue directory is byte-identical to one that
    never left the process.
    """

    #: technique name; ``"none"`` stands for the unmitigated baseline
    technique: str
    seed: int
    result: SimResult
    metrics: Optional[MetricsRegistry] = None
    #: serialised worker span tree (:meth:`SpanTracer.as_dict`)
    spans: Optional[Dict[str, Any]] = None
    #: attempts consumed to produce this result (1 = first try worked)
    attempts: int = 1

    @classmethod
    def from_outcome(
        cls, outcome: JobOutcome, attempts: int = 1
    ) -> "ShardOutcome":
        technique, seed, result, metrics, spans = outcome
        return cls(
            technique=technique,
            seed=seed,
            result=result,
            metrics=metrics,
            spans=spans,
            attempts=attempts,
        )

    def as_tuple(self) -> JobOutcome:
        """The legacy positional view dispatch paths consume."""
        return (
            self.technique, self.seed, self.result, self.metrics, self.spans,
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "technique": self.technique,
            "seed": self.seed,
            "attempts": self.attempts,
            "result": self.result.as_dict(include_wall=True),
            "metrics": (
                self.metrics.as_dict() if self.metrics is not None else None
            ),
            "spans": self.spans,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ShardOutcome":
        metrics = data.get("metrics")
        return cls(
            technique=data["technique"],
            seed=int(data["seed"]),
            result=SimResult.from_dict(data["result"]),
            metrics=(
                MetricsRegistry.from_dict(metrics)
                if metrics is not None else None
            ),
            spans=data.get("spans"),
            attempts=int(data.get("attempts", 1)),
        )


def _shard_id(technique: Optional[str], seed: int) -> str:
    """The shard's identity on the status bus and in span id seeds."""
    return f"{technique or 'none'}__s{seed}"


def _run_job(job: CampaignJob, tracer=None, in_worker: bool = True) -> JobOutcome:
    if job.fault_injector is not None:
        job.fault_injector.fire(
            job.technique or "none", job.seed, job.attempt, in_worker=in_worker
        )
    shard = _shard_id(job.technique, job.seed)
    bus = StatusBus(job.status_dir) if job.status_dir else None
    if bus is not None:
        bus.beat(shard, 0, 1, retries=job.attempt)
    spans = (
        SpanTracer(id_seed=f"{job.span_seed}|{shard}")
        if job.collect_spans else None
    )
    with span_of(
        spans, "shard",
        technique=job.technique or "none", seed=job.seed, engine=job.engine,
    ):
        with span_of(spans, "trace"):
            if job.trace_path is not None:
                trace = load_trace_npz(job.trace_path)
            else:
                trace = paper_mixed_workload(
                    job.config,
                    total_intervals=job.total_intervals,
                    seed=derive_seed(job.seed, "trace"),
                    **dict(job.workload_kwargs),
                )
        factory = make_factory(job.technique) if job.technique else None
        run = get_engine(job.engine)
        metrics = MetricsRegistry() if job.collect_metrics else None
        with span_of(spans, "simulate"):
            result = run(
                job.config, trace, factory, seed=job.seed, tracer=tracer,
                metrics=metrics,
            )
    if bus is not None:
        bus.beat(shard, 1, 1, retries=job.attempt, phase="done")
    return (
        job.technique or "none", job.seed, result, metrics,
        spans.as_dict() if spans is not None else None,
    )


def _run_chunk(chunk: List[CampaignJob]) -> List[JobOutcome]:
    return [_run_job(job) for job in chunk]


@dataclass(frozen=True)
class _FusedBlock:
    """One fused cell-block: every technique of one seed, one replay.

    The fused engine's sharding unit -- the trace axis stays per seed
    (each seed has its own trace), while the whole technique axis of
    that seed rides a single decode+replay.  Picklable for the pool.
    """

    config: SimConfig
    techniques: Tuple[Optional[str], ...]
    seed: int
    total_intervals: int
    workload_kwargs: tuple = ()
    trace_path: Optional[str] = None
    collect_metrics: bool = False
    collect_spans: bool = False
    span_seed: str = ""
    status_dir: Optional[str] = None


def _run_block(block: _FusedBlock) -> List[JobOutcome]:
    from repro.sim.fused_engine import GridCell, run_simulation_grid

    shards = [_shard_id(name, block.seed) for name in block.techniques]
    bus = StatusBus(block.status_dir) if block.status_dir else None
    if bus is not None:
        for shard in shards:
            bus.beat(shard, 0, 1)
    # One tracer per cell, all spanning the shared decode+replay window:
    # the per-shard span records a fused block ships are structurally
    # identical to per-cell dispatch (same paths, same attribute keys),
    # so block composition -- which changes on --resume -- can never
    # leak into a span summary.
    tracers: List[Optional[SpanTracer]] = [
        SpanTracer(id_seed=f"{block.span_seed}|{shard}")
        if block.collect_spans else None
        for shard in shards
    ]
    with ExitStack() as shard_stack:
        for name, tracer in zip(block.techniques, tracers):
            shard_stack.enter_context(span_of(
                tracer, "shard",
                technique=name or "none", seed=block.seed, engine="fused",
            ))
        with ExitStack() as trace_stack:
            for tracer in tracers:
                trace_stack.enter_context(span_of(tracer, "trace"))
            if block.trace_path is not None:
                trace = load_trace_npz(block.trace_path)
            else:
                trace = paper_mixed_workload(
                    block.config,
                    total_intervals=block.total_intervals,
                    seed=derive_seed(block.seed, "trace"),
                    **dict(block.workload_kwargs),
                )
        metrics = MetricsRegistry() if block.collect_metrics else None
        cells = [
            GridCell(technique=name, seed=block.seed)
            for name in block.techniques
        ]
        with ExitStack() as simulate_stack:
            for tracer in tracers:
                simulate_stack.enter_context(span_of(tracer, "simulate"))
            results = run_simulation_grid(
                block.config, trace, cells, metrics=metrics
            )
    if bus is not None:
        for shard in shards:
            bus.beat(shard, 1, 1, phase="done")
    outcomes: List[JobOutcome] = []
    for cell, result, tracer in zip(cells, results, tracers):
        outcomes.append((
            cell.technique or "none", block.seed, result, metrics,
            tracer.as_dict() if tracer is not None else None,
        ))
        # the block shares one engine replay, so its registry ships on
        # the first outcome only -- merging it once, not per cell
        metrics = None
    return outcomes


def _count(metrics: Optional[MetricsRegistry], name: str, amount: int = 1) -> None:
    if metrics is not None and amount:
        metrics.counter(name).add(amount)


#: metrics counter name per failure kind
FAULT_COUNTERS = {
    "error": "campaign.shard_errors",
    "crash": "campaign.shard_crashes",
    "timeout": "campaign.shard_timeouts",
}


def _fault_kind(exc: BaseException) -> str:
    if isinstance(exc, BrokenProcessPool):
        return "crash"
    return getattr(exc, "shard_fault_kind", "error")


def _kill_workers(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting for hung workers.

    ``shutdown(cancel_futures=True)`` drops queued work; killing the
    worker processes directly (private but stable CPython attribute)
    keeps a truly hung shard from blocking the campaign or interpreter
    exit.
    """
    processes = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        try:
            process.kill()
        except Exception:  # pragma: no cover - racing process exit
            pass


def _exhaust(
    job: CampaignJob,
    attempts: int,
    exc: BaseException,
    policy: RetryPolicy,
    failures: List[ShardFailure],
    metrics: Optional[MetricsRegistry],
) -> None:
    """Handle a shard that used up every attempt: raise or degrade."""
    if policy.on_failure == "raise":
        raise exc
    failure = ShardFailure(
        technique=job.technique or "none",
        seed=job.seed,
        attempts=attempts,
        kind=_fault_kind(exc),
        error=f"{type(exc).__name__}: {exc}",
    )
    failures.append(failure)
    _count(metrics, "campaign.shards_degraded")


@dataclass
class ExecutionContext:
    """Everything an :class:`Executor` needs besides the jobs.

    Built by :func:`repro.sim.parallel.run_campaign` once per dispatch:
    the retry policy, the caller's metrics registry, the merged
    progress callback, the per-shard checkpoint hook, the shared
    failure list, the injectable backoff clock, the inline tracer (only
    honoured by executors advertising ``supports_tracer``), and the
    campaign's status bus (executors with remote workers relay their
    heartbeats into it).
    """

    retry: Optional[RetryPolicy] = None
    metrics: Optional[MetricsRegistry] = None
    progress: Optional[ProgressCallback] = None
    shard_callback: Optional[ShardCallback] = None
    failures: List[ShardFailure] = field(default_factory=list)
    sleep: Callable[[float], None] = None  # type: ignore[assignment]
    tracer: Any = None
    status: Optional[StatusBus] = None

    @property
    def policy(self) -> RetryPolicy:
        """The effective policy (no-retry default when none was set)."""
        return self.retry if self.retry is not None else RetryPolicy()


class Executor(ABC):
    """How a campaign's shards run; see the module docstring for the
    obligations every implementation owes (ordering, streaming, retry,
    timeout bounding, degradation accounting, determinism).

    Implementations declare:

    * ``name`` -- the :func:`get_executor` / ``--executor`` spelling;
    * ``supports_tracer`` -- whether an *enabled* event tracer can be
      threaded into shards (only in-process execution can);
    * ``supports_blocks`` -- whether :meth:`execute_blocks` accepts
      fused cell-blocks (the one-replay-per-seed fast path);
    * ``profile_section`` -- the profiler label for the dispatch phase.
    """

    name: ClassVar[str] = "abstract"
    supports_tracer: ClassVar[bool] = False
    supports_blocks: ClassVar[bool] = False
    profile_section: ClassVar[str] = "campaign:dispatch"

    @abstractmethod
    def execute(
        self, jobs: Sequence[CampaignJob], ctx: ExecutionContext
    ) -> List[Optional[JobOutcome]]:
        """Run every job; return outcomes in input order.

        Slot *i* holds job *i*'s :data:`JobOutcome`, or ``None`` if the
        shard exhausted its attempts under ``on_failure="skip"`` (the
        matching :class:`ShardFailure` is appended to ``ctx.failures``
        and counted by :func:`_exhaust`).
        """

    def execute_blocks(
        self,
        blocks: Sequence[_FusedBlock],
        place: Callable[[List[JobOutcome]], None],
    ) -> None:
        """Run fused cell-blocks, feeding each block's outcomes to *place*.

        Only called when ``supports_blocks`` is true; *place* handles
        canonical placement, checkpointing and progress.
        """
        raise NotImplementedError(
            f"{self.name} executor does not support fused block dispatch"
        )


class SerialExecutor(Executor):
    """In-process, single-threaded execution (the ``workers=0`` lane).

    The debug/no-fork executor: shards run inline in dispatch order,
    which is the only mode that can thread an *enabled* event tracer
    through the engines and the only one usable under pdb or coverage.
    Retries and degradation follow the shared contract; ``shard_timeout``
    cannot be enforced here (a single thread cannot interrupt itself),
    which is the documented serial-lane exemption.
    """

    name: ClassVar[str] = "serial"
    supports_tracer: ClassVar[bool] = True
    supports_blocks: ClassVar[bool] = True
    profile_section: ClassVar[str] = "campaign:inline"

    def execute(
        self, jobs: Sequence[CampaignJob], ctx: ExecutionContext
    ) -> List[Optional[JobOutcome]]:
        policy = ctx.policy
        total = len(jobs)
        outcomes: List[Optional[JobOutcome]] = [None] * total
        done = 0
        for index, job in enumerate(jobs):
            attempt = 0
            while True:
                try:
                    outcome = _run_job(
                        replace(job, attempt=attempt), tracer=ctx.tracer,
                        in_worker=False,
                    )
                except Exception as exc:
                    attempt += 1
                    _count(ctx.metrics, FAULT_COUNTERS[_fault_kind(exc)])
                    if attempt > policy.max_retries:
                        _exhaust(
                            job, attempt, exc, policy, ctx.failures,
                            ctx.metrics,
                        )
                        break
                    _count(ctx.metrics, "campaign.shard_retries")
                    delay = policy.delay(attempt)
                    if delay > 0:
                        ctx.sleep(delay)
                else:
                    outcomes[index] = outcome
                    if ctx.shard_callback is not None:
                        ctx.shard_callback(outcome, attempt + 1)
                    break
            done += 1
            if ctx.progress is not None:
                ctx.progress(done, total)
        return outcomes

    def execute_blocks(self, blocks, place) -> None:
        for block in blocks:
            place(_run_block(block))


class PoolExecutor(Executor):
    """Local process-pool execution (the historical default).

    Without a retry policy, jobs are dispatched in chunks (one pool
    task runs a whole chunk) to amortise pickling.  With one, dispatch
    switches to one job per pool task in retry *rounds*: every pending
    shard is submitted to a fresh pool, failures are retried next round
    after the policy's backoff (one sleep per round, the largest delay
    owed), and a round past ``shard_timeout * ceil(pending / width)``
    declares its unfinished shards hung and kills the pool under them.
    A worker *crash* breaks the whole pool, so crashes and timeouts
    also fail every shard in flight -- innocents are retried alongside
    the guilty and each such event consumes one attempt from all of
    them; size ``max_retries`` accordingly when crashes repeat.
    """

    name: ClassVar[str] = "pool"
    supports_blocks: ClassVar[bool] = True
    profile_section: ClassVar[str] = "campaign:pool"

    def __init__(
        self,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        if workers is not None and workers <= 0:
            raise ValueError(
                f"pool executor needs a positive worker count: {workers} "
                "(use the serial executor for inline execution)"
            )
        self.workers = workers
        self.chunk_size = chunk_size

    def execute(
        self, jobs: Sequence[CampaignJob], ctx: ExecutionContext
    ) -> List[Optional[JobOutcome]]:
        if ctx.retry is not None:
            return self._execute_rounds(jobs, ctx)
        return self._execute_chunked(jobs, ctx)

    def _execute_chunked(
        self, jobs: Sequence[CampaignJob], ctx: ExecutionContext
    ) -> List[Optional[JobOutcome]]:
        total = len(jobs)
        outcomes: List[Optional[JobOutcome]] = [None] * total
        chunk_size = self.chunk_size
        if chunk_size is None:
            pool_width = self.workers or os.cpu_count() or 1
            chunk_size = max(1, math.ceil(total / (4 * pool_width)))
        chunks = [
            (start, list(jobs[start : start + chunk_size]))
            for start in range(0, total, chunk_size)
        ]
        done = 0
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = {
                pool.submit(_run_chunk, chunk): start
                for start, chunk in chunks
            }
            for future in as_completed(futures):
                start = futures[future]
                chunk_outcomes = future.result()
                outcomes[start : start + len(chunk_outcomes)] = chunk_outcomes
                if ctx.shard_callback is not None:
                    for outcome in chunk_outcomes:
                        ctx.shard_callback(outcome, 1)
                done += len(chunk_outcomes)
                if ctx.progress is not None:
                    ctx.progress(done, total)
        return outcomes

    def _execute_rounds(
        self, jobs: Sequence[CampaignJob], ctx: ExecutionContext
    ) -> List[Optional[JobOutcome]]:
        policy = ctx.policy
        total = len(jobs)
        outcomes: List[Optional[JobOutcome]] = [None] * total
        attempts = [0] * total
        pending = list(range(total))
        width = self.workers or os.cpu_count() or 1
        done = 0
        while pending:
            failed: Dict[int, BaseException] = {}
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                futures = {
                    pool.submit(
                        _run_job, replace(jobs[index], attempt=attempts[index])
                    ): index
                    for index in pending
                }
                deadline = None
                if policy.shard_timeout is not None:
                    deadline = policy.shard_timeout * max(
                        1, math.ceil(len(pending) / width)
                    )
                try:
                    for future in as_completed(futures, timeout=deadline):
                        index = futures[future]
                        try:
                            outcome = future.result()
                        except Exception as exc:
                            failed[index] = exc
                            continue
                        outcomes[index] = outcome
                        done += 1
                        if ctx.shard_callback is not None:
                            ctx.shard_callback(outcome, attempts[index] + 1)
                        if ctx.progress is not None:
                            ctx.progress(done + len(ctx.failures), total)
                except FuturesTimeout:
                    for future, index in futures.items():
                        if outcomes[index] is None and index not in failed:
                            job = jobs[index]
                            failed[index] = ShardTimeout(
                                f"shard {job.technique or 'none'}/seed="
                                f"{job.seed} exceeded shard_timeout="
                                f"{policy.shard_timeout}s on attempt "
                                f"{attempts[index]}"
                            )
                    _kill_workers(pool)
            retry_next: List[int] = []
            for index in sorted(failed):
                exc = failed[index]
                attempts[index] += 1
                _count(ctx.metrics, FAULT_COUNTERS[_fault_kind(exc)])
                if attempts[index] > policy.max_retries:
                    _exhaust(
                        jobs[index], attempts[index], exc, policy,
                        ctx.failures, ctx.metrics,
                    )
                    if ctx.progress is not None:
                        ctx.progress(done + len(ctx.failures), total)
                else:
                    _count(ctx.metrics, "campaign.shard_retries")
                    retry_next.append(index)
            if retry_next:
                delay = max(
                    policy.delay(attempts[index]) for index in retry_next
                )
                if delay > 0:
                    ctx.sleep(delay)
            pending = retry_next
        return outcomes

    def execute_blocks(self, blocks, place) -> None:
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            block_futures = [
                pool.submit(_run_block, block) for block in blocks
            ]
            for future in as_completed(block_futures):
                place(future.result())


def get_executor(
    spec: Any = None,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> Executor:
    """Resolve an executor spec (name, instance, or None) to an instance.

    ``None``/``"auto"`` keep the historical ``workers`` semantics:
    ``workers=0`` runs inline (:class:`SerialExecutor`), anything else
    uses the local :class:`PoolExecutor`.  ``"serial"`` and ``"pool"``
    force a lane; ``"queue"`` cannot be resolved from a bare name
    because it needs a queue directory -- construct
    :class:`repro.campaign.queue.QueueExecutor` (or pass
    ``--queue-dir`` on the CLI) instead.  An :class:`Executor` instance
    passes through untouched.
    """
    if isinstance(spec, Executor):
        return spec
    if spec is None or spec == "auto":
        if workers == 0:
            return SerialExecutor()
        return PoolExecutor(workers=workers, chunk_size=chunk_size)
    if spec == "serial":
        return SerialExecutor()
    if spec == "pool":
        return PoolExecutor(workers=workers, chunk_size=chunk_size)
    if spec == "queue":
        raise ValueError(
            "the queue executor needs a queue directory: construct "
            "repro.campaign.queue.QueueExecutor(queue_dir) and pass the "
            "instance (the CLI does this for --executor queue --queue-dir)"
        )
    raise ValueError(
        f"unknown executor {spec!r}; expected one of {EXECUTOR_NAMES} "
        "or an Executor instance"
    )
