"""Parallel experiment execution.

The paper's campaign (9 techniques x a 1.56 M-interval trace) is
embarrassingly parallel across (technique, seed) pairs.  This module
distributes those runs over a process pool.  Workers must receive
picklable job descriptions, so a job carries either the workload knobs
(each worker regenerates its trace deterministically from the seed) or
-- the default -- the path of a trace that was generated **once** per
seed and serialised to a temporary ``.npz`` file: all nine technique
jobs of a seed then share one trace generation instead of repeating it,
which also keeps the comparison paired across techniques.

Jobs are dispatched in chunks (one pool task runs a whole chunk) to
amortise pickling overhead, and an optional ``progress`` callback is
invoked as chunks complete.
"""

from __future__ import annotations

import math
import os
import shutil
import tempfile
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import SimConfig
from repro.mitigations.registry import make_factory, technique_names
from repro.rng import derive_seed
from repro.sim.engine import get_engine
from repro.sim.experiment import TechniqueAggregate
from repro.sim.metrics import SimResult
from repro.traces.mixer import paper_mixed_workload
from repro.traces.trace_io import load_trace_npz, save_trace_npz

#: called as ``progress(completed_jobs, total_jobs)`` after each chunk
ProgressCallback = Callable[[int, int], None]


@dataclass(frozen=True)
class CampaignJob:
    """One (technique, seed) unit of work; fully picklable."""

    config: SimConfig
    technique: Optional[str]
    seed: int
    total_intervals: int
    workload_kwargs: tuple = ()  # sorted (key, value) pairs
    #: pre-serialised trace shared by every technique of this seed;
    #: ``None`` regenerates the trace from the workload knobs instead
    trace_path: Optional[str] = None
    engine: str = "reference"


def _run_job(job: CampaignJob) -> Tuple[str, int, SimResult]:
    if job.trace_path is not None:
        trace = load_trace_npz(job.trace_path)
    else:
        trace = paper_mixed_workload(
            job.config,
            total_intervals=job.total_intervals,
            seed=derive_seed(job.seed, "trace"),
            **dict(job.workload_kwargs),
        )
    factory = make_factory(job.technique) if job.technique else None
    run = get_engine(job.engine)
    result = run(job.config, trace, factory, seed=job.seed)
    return (job.technique or "none", job.seed, result)


def _run_chunk(chunk: List[CampaignJob]) -> List[Tuple[str, int, SimResult]]:
    return [_run_job(job) for job in chunk]


def run_campaign(
    config: SimConfig,
    total_intervals: int,
    techniques: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (0, 1, 2),
    include_unmitigated: bool = False,
    workers: Optional[int] = None,
    engine: str = "reference",
    memoize_traces: bool = True,
    chunk_size: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    **workload_kwargs,
) -> Dict[str, TechniqueAggregate]:
    """Run the full comparison campaign over a process pool.

    Semantically equivalent to
    :func:`repro.sim.experiment.compare_techniques` with the default
    paper workload, but each (technique, seed) runs in its own process.
    ``workers=None`` uses the pool default; ``workers=0`` runs inline
    (useful under debuggers and coverage).

    ``memoize_traces`` generates each seed's trace once and shares the
    serialised file across that seed's technique jobs; ``engine``
    selects the simulation engine (see
    :data:`repro.sim.engine.ENGINE_NAMES`); ``chunk_size`` jobs are
    grouped into one pool task (default: about four chunks per worker);
    ``progress(done, total)`` is called after each completed chunk.
    """
    get_engine(engine)  # validate the name before spawning anything
    names: List[Optional[str]] = (
        list(techniques) if techniques is not None else technique_names()
    )
    if include_unmitigated:
        names = [None] + names
    frozen_kwargs = tuple(sorted(workload_kwargs.items()))
    tmpdir: Optional[str] = None
    try:
        trace_paths: Dict[int, str] = {}
        if memoize_traces:
            tmpdir = tempfile.mkdtemp(prefix="repro-campaign-")
            for seed in dict.fromkeys(seeds):
                trace = paper_mixed_workload(
                    config,
                    total_intervals=total_intervals,
                    seed=derive_seed(seed, "trace"),
                    **workload_kwargs,
                )
                path = os.path.join(tmpdir, f"trace-{seed}.npz")
                save_trace_npz(trace, path)
                trace_paths[seed] = path
        jobs = [
            CampaignJob(
                config=config,
                technique=name,
                seed=seed,
                total_intervals=total_intervals,
                workload_kwargs=frozen_kwargs,
                trace_path=trace_paths.get(seed),
                engine=engine,
            )
            for name in names
            for seed in seeds
        ]
        total = len(jobs)
        outcomes: List[Optional[Tuple[str, int, SimResult]]] = [None] * total
        done = 0
        if workers == 0:
            for index, job in enumerate(jobs):
                outcomes[index] = _run_job(job)
                done += 1
                if progress is not None:
                    progress(done, total)
        else:
            if chunk_size is None:
                pool_width = workers or os.cpu_count() or 1
                chunk_size = max(1, math.ceil(total / (4 * pool_width)))
            chunks = [
                (start, jobs[start : start + chunk_size])
                for start in range(0, total, chunk_size)
            ]
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(_run_chunk, chunk): start
                    for start, chunk in chunks
                }
                for future in as_completed(futures):
                    start = futures[future]
                    chunk_outcomes = future.result()
                    outcomes[start : start + len(chunk_outcomes)] = chunk_outcomes
                    done += len(chunk_outcomes)
                    if progress is not None:
                        progress(done, total)
    finally:
        if tmpdir is not None:
            shutil.rmtree(tmpdir, ignore_errors=True)
    # outcomes is ordered by job index (technique-major, seed-minor)
    # regardless of completion order
    aggregates: Dict[str, TechniqueAggregate] = {}
    for name, _seed, result in outcomes:
        aggregates.setdefault(name, TechniqueAggregate(technique=name))
        aggregates[name].results.append(result)
    return aggregates
