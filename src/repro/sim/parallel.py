"""Parallel experiment execution.

The paper's campaign (9 techniques x a 1.56 M-interval trace) is
embarrassingly parallel across (technique, seed) pairs.  This module
distributes those runs over a process pool.  Because workers must
receive picklable job descriptions, the trace is described by its
parameters (the paper workload knobs) rather than a closure; each
worker regenerates its trace deterministically from the seed, which
also keeps the comparison paired across techniques.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SimConfig
from repro.mitigations.registry import make_factory, technique_names
from repro.rng import derive_seed
from repro.sim.engine import run_simulation
from repro.sim.experiment import TechniqueAggregate
from repro.sim.metrics import SimResult
from repro.traces.mixer import paper_mixed_workload


@dataclass(frozen=True)
class CampaignJob:
    """One (technique, seed) unit of work; fully picklable."""

    config: SimConfig
    technique: Optional[str]
    seed: int
    total_intervals: int
    workload_kwargs: tuple = ()  # sorted (key, value) pairs


def _run_job(job: CampaignJob) -> Tuple[str, int, SimResult]:
    trace = paper_mixed_workload(
        job.config,
        total_intervals=job.total_intervals,
        seed=derive_seed(job.seed, "trace"),
        **dict(job.workload_kwargs),
    )
    factory = make_factory(job.technique) if job.technique else None
    result = run_simulation(job.config, trace, factory, seed=job.seed)
    return (job.technique or "none", job.seed, result)


def run_campaign(
    config: SimConfig,
    total_intervals: int,
    techniques: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (0, 1, 2),
    include_unmitigated: bool = False,
    workers: Optional[int] = None,
    **workload_kwargs,
) -> Dict[str, TechniqueAggregate]:
    """Run the full comparison campaign over a process pool.

    Semantically equivalent to
    :func:`repro.sim.experiment.compare_techniques` with the default
    paper workload, but each (technique, seed) runs in its own process.
    ``workers=None`` uses the pool default; ``workers=0`` runs inline
    (useful under debuggers and coverage).
    """
    names = list(techniques) if techniques is not None else technique_names()
    if include_unmitigated:
        names = [None] + names
    frozen_kwargs = tuple(sorted(workload_kwargs.items()))
    jobs = [
        CampaignJob(
            config=config,
            technique=name,
            seed=seed,
            total_intervals=total_intervals,
            workload_kwargs=frozen_kwargs,
        )
        for name in names
        for seed in seeds
    ]
    outcomes: List[Tuple[str, int, SimResult]] = []
    if workers == 0:
        outcomes = [_run_job(job) for job in jobs]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(pool.map(_run_job, jobs))
    aggregates: Dict[str, TechniqueAggregate] = {}
    for name, _seed, result in outcomes:
        aggregates.setdefault(name, TechniqueAggregate(technique=name))
        aggregates[name].results.append(result)
    return aggregates
