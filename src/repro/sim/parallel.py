"""Parallel experiment execution with worker-level fault tolerance.

The paper's campaign (9 techniques x a 1.56 M-interval trace) is
embarrassingly parallel across (technique, seed) pairs.  This module
turns the grid into :class:`CampaignJob` shards and hands them to a
pluggable :class:`~repro.sim.executors.Executor` (see
``docs/distributed.md`` for the contract): the local process pool by
default, the in-process serial lane for ``workers=0``, or the
filesystem work-queue executor
(:class:`repro.campaign.queue.QueueExecutor`) for campaigns spread
over independent worker processes and hosts.  Workers must receive
picklable job descriptions, so a job carries either the workload knobs
(each worker regenerates its trace deterministically from the seed) or
-- the default -- the path of a trace that was generated **once** per
seed and serialised to a temporary ``.npz`` file: all nine technique
jobs of a seed then share one trace generation instead of repeating it,
which also keeps the comparison paired across techniques.

In pool mode, jobs are dispatched in chunks (one pool task runs a
whole chunk) to amortise pickling overhead, and an optional
``progress`` callback is invoked as chunks complete.

Passing a :class:`RetryPolicy` turns on fault tolerance: a crashed or
hung shard is retried with exponential backoff up to ``max_retries``
extra attempts, after which the campaign either fails
(``on_failure="raise"``) or records the shard as *degraded*
(``on_failure="skip"``) and carries on.  Retry, timeout and crash
counts surface through the ``metrics`` registry under ``campaign.*``
names.  Hour-scale campaigns should combine this with the durable
checkpointing in :mod:`repro.campaign`, which persists every completed
shard and can resume an interrupted campaign.
"""

from __future__ import annotations

import math
import os
import shutil
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import SimConfig
from repro.mitigations.registry import technique_names
from repro.rng import derive_seed
from repro.sim.engine import get_engine
from repro.sim.executors import (  # noqa: F401  (re-exported compat surface)
    EXECUTOR_NAMES,
    FAULT_COUNTERS,
    ON_FAILURE_MODES,
    CampaignJob,
    ExecutionContext,
    Executor,
    JobOutcome,
    PoolExecutor,
    ProgressCallback,
    RetryPolicy,
    SerialExecutor,
    ShardCallback,
    ShardFailure,
    ShardOutcome,
    ShardTimeout,
    _count,
    _exhaust,
    _fault_kind,
    _FusedBlock,
    _kill_workers,
    _run_block,
    _run_chunk,
    _run_job,
    _shard_id,
    get_executor,
)
from repro.sim.experiment import TechniqueAggregate
from repro.telemetry.profiler import section_of
from repro.telemetry.progress import ProgressDispatcher, ProgressListener
from repro.telemetry.spans import SpanTracer, span_of
from repro.telemetry.statusbus import CampaignSnapshot, StatusBus
from repro.traces.mixer import paper_mixed_workload
from repro.traces.trace_io import save_trace_npz


class CampaignResult(Dict[str, TechniqueAggregate]):
    """``{technique: TechniqueAggregate}`` plus degraded-shard records.

    Behaves exactly like the plain dict :func:`run_campaign` has always
    returned; ``failures`` lists the shards that were skipped under
    ``on_failure="skip"`` (empty for a fully healthy campaign).
    """

    def __init__(self, *args, failures=None, **kwargs):
        super().__init__(*args, **kwargs)
        self.failures: List[ShardFailure] = list(failures or [])

    @property
    def degraded(self) -> bool:
        return bool(self.failures)


def _map_chunk(
    fn: Callable[[Any], Any],
    chunk: List[Any],
    span_seed: Optional[str] = None,
    chunk_id: int = 0,
) -> Tuple[List[Any], Optional[Dict[str, Any]]]:
    spans = (
        SpanTracer(id_seed=f"{span_seed}|chunk{chunk_id}")
        if span_seed is not None else None
    )
    results = []
    with span_of(spans, "chunk", items=len(chunk)):
        for item in chunk:
            with span_of(spans, "item"):
                results.append(fn(item))
    return results, (spans.as_dict() if spans is not None else None)


def parallel_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    on_event: Optional[ProgressListener] = None,
    spans: Optional[SpanTracer] = None,
) -> List[Any]:
    """Order-preserving map over a process pool.

    The generic fan-out behind the adversary search loop: results come
    back in input order regardless of completion order, so a caller
    that only depends on ``fn`` being pure is bit-identical across
    ``workers`` settings.  ``workers=0`` maps inline (debuggers,
    coverage, tracers); otherwise *fn* and every item must be picklable
    and items are dispatched in chunks like :func:`run_campaign`.

    Progress is reported both ways: the legacy ``progress(done,
    total)`` callable and an ``on_event`` listener receiving
    :class:`~repro.telemetry.progress.ProgressEvent` records
    (``kind="parallel_map"``, ``unit="items"``) fire together as
    chunks complete.  ``spans`` records a ``parallel_map`` span with
    ``chunk``/``item`` children; pool workers record their chunk's
    spans locally and the tree is re-parented on merge.
    """
    items = list(items)
    total = len(items)
    dispatcher = ProgressDispatcher("parallel_map", unit="items")
    dispatcher.add_legacy(progress)
    dispatcher.add_listener(on_event)
    collect_spans = spans is not None and spans.enabled
    with span_of(spans, "parallel_map", items=total):
        if workers == 0 or total == 0:
            results: List[Any] = []
            # one logical chunk, so inline and pool runs share paths
            with span_of(spans, "chunk", items=total):
                for index, item in enumerate(items):
                    with span_of(spans, "item"):
                        results.append(fn(item))
                    if dispatcher:
                        dispatcher.emit(index + 1, total)
            return results
        if chunk_size is None:
            pool_width = workers or os.cpu_count() or 1
            chunk_size = max(1, math.ceil(total / (4 * pool_width)))
        results = [None] * total
        done = 0
        span_seed = spans.id_seed if collect_spans else None
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(
                    _map_chunk, fn, items[start : start + chunk_size],
                    span_seed, start,
                ): start
                for start in range(0, total, chunk_size)
            }
            for future in as_completed(futures):
                start = futures[future]
                chunk_results, chunk_spans = future.result()
                results[start : start + len(chunk_results)] = chunk_results
                done += len(chunk_results)
                if collect_spans:
                    spans.adopt(chunk_spans)
                if dispatcher:
                    dispatcher.emit(done, total)
    return results


def run_campaign(
    config: SimConfig,
    total_intervals: int,
    techniques: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (0, 1, 2),
    include_unmitigated: bool = False,
    workers: Optional[int] = None,
    engine: str = "reference",
    memoize_traces: bool = True,
    chunk_size: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    on_event: Optional[ProgressListener] = None,
    tracer=None,
    metrics=None,
    profiler=None,
    spans: Optional[SpanTracer] = None,
    status: Optional[StatusBus] = None,
    status_done_base: int = 0,
    pairs: Optional[Sequence[Tuple[Optional[str], int]]] = None,
    retry: Optional[RetryPolicy] = None,
    fault_injector=None,
    shard_callback: Optional[ShardCallback] = None,
    sleep: Callable[[float], None] = time.sleep,
    trace_path: Optional[str] = None,
    executor: Any = None,
    **workload_kwargs,
) -> CampaignResult:
    """Run the full comparison campaign over a pluggable executor.

    Semantically equivalent to
    :func:`repro.sim.experiment.compare_techniques` with the default
    paper workload, but each (technique, seed) runs as a shard of the
    selected :class:`~repro.sim.executors.Executor`.  ``executor``
    accepts an instance, a name (``"auto"``/``"serial"``/``"pool"``),
    or ``None`` for the historical behaviour: ``workers=None`` uses the
    pool default, ``workers=0`` runs inline (useful under debuggers and
    coverage).  Any executor yields bit-identical per-shard results --
    the executor contract (``docs/distributed.md``) and its shared test
    suite pin this.

    ``memoize_traces`` generates each seed's trace once and shares the
    serialised file across that seed's technique jobs; ``engine``
    selects the simulation engine (see
    :data:`repro.sim.engine.ENGINE_NAMES`); ``chunk_size`` jobs are
    grouped into one pool task (default: about four chunks per worker);
    ``progress(done, total)`` is called after each completed chunk.

    ``metrics`` works in every mode: pool workers collect their own
    registry and the shards are merged into the caller's on return.
    ``tracer`` streams cannot cross a process boundary, so an *enabled*
    tracer requires ``workers=0``; ``profiler`` likewise only times the
    coarse campaign phases in pool mode.

    ``spans`` works in every mode like ``metrics``: each shard records
    a local ``shard -> trace/simulate`` span tree (also under fused
    block dispatch, where every cell's records span the shared replay
    window) and ships it back for re-parenting under the campaign root
    span.  ``status`` turns on the live status bus: workers publish
    per-shard heartbeats into its directory, the runner publishes a
    rolling :class:`~repro.telemetry.statusbus.CampaignSnapshot` at
    every progress tick, and shards whose heartbeat goes quiet for
    longer than the bus's ``stale_after`` surface through the
    ``campaign.workers_stale`` metric -- *before* any
    ``shard_timeout`` kill fires.  ``status_done_base`` offsets every
    published snapshot by shards completed *before* this invocation,
    so a resumed durable campaign reports whole-campaign totals
    instead of remainder-only ones.  ``on_event`` receives unified
    :class:`~repro.telemetry.progress.ProgressEvent` records
    alongside the legacy ``progress`` callable.  All three are pure
    observation: results are bit-identical with them on or off.

    ``trace_path`` replays one pre-serialised ``.npz`` trace (e.g. an
    ingested external capture, see :mod:`repro.traces.ingest`) for
    **every** (technique, seed) job instead of generating the paper
    workload -- seeds then only vary the mitigations' RNG, which is the
    right comparison for a fixed captured access stream.

    ``pairs`` overrides the ``techniques x seeds`` grid with an explicit
    (technique, seed) work list -- the durable campaign runner passes
    the not-yet-completed remainder here on resume.  ``retry`` enables
    worker-level fault tolerance (see :class:`RetryPolicy`); in pool
    mode it switches dispatch from chunks to one job per pool task so
    failures are attributed to single shards.  ``shard_callback(outcome,
    attempts)`` fires as each shard completes (checkpointing hook), and
    ``fault_injector`` plants deterministic test faults in the workers.
    ``sleep`` is the backoff clock (injectable for tests).

    Returns a :class:`CampaignResult` -- a ``{technique:
    TechniqueAggregate}`` dict whose ``failures`` attribute lists any
    shards degraded under ``on_failure="skip"``.
    """
    get_engine(engine)  # validate the name before spawning anything
    runner = get_executor(executor, workers=workers, chunk_size=chunk_size)
    tracer_enabled = tracer is not None and getattr(tracer, "enabled", True)
    if tracer_enabled and not runner.supports_tracer:
        raise ValueError(
            "event tracing requires workers=0: tracer streams cannot "
            "cross a process-pool boundary"
        )
    if pairs is not None:
        pair_list: List[Tuple[Optional[str], int]] = list(pairs)
    else:
        names: List[Optional[str]] = (
            list(techniques) if techniques is not None else technique_names()
        )
        if include_unmitigated:
            names = [None] + names
        pair_list = [(name, seed) for name in names for seed in seeds]
    ordered_names = list(dict.fromkeys(name or "none" for name, _ in pair_list))
    frozen_kwargs = tuple(sorted(workload_kwargs.items()))
    failures: List[ShardFailure] = []
    collect_spans = spans is not None and spans.enabled
    span_seed = spans.id_seed if collect_spans else ""
    status_dir = str(status.root) if status is not None else None
    dispatcher = ProgressDispatcher("campaign", unit="shards")
    dispatcher.add_legacy(progress)
    dispatcher.add_listener(on_event)
    started_mono = time.monotonic()
    if status is not None:
        stale_seen: set = set()

        def _publish_status(event) -> None:
            stale = status.stale_workers()
            for heartbeat in stale:
                if heartbeat.worker not in stale_seen:
                    stale_seen.add(heartbeat.worker)
                    _count(metrics, "campaign.workers_stale")
            retries = 0
            if metrics is not None:
                retry_counter = metrics.counters.get("campaign.shard_retries")
                retries = retry_counter.value if retry_counter else 0
            status.publish_snapshot(CampaignSnapshot(
                done=status_done_base + event.done,
                total=status_done_base + event.total,
                degraded=len(failures),
                retries=retries,
                stale=len(stale),
                started_mono=started_mono,
                mono=time.monotonic(),
                complete=event.done >= event.total,
            ))

        dispatcher.add_listener(_publish_status)
        status.publish_snapshot(CampaignSnapshot(
            done=status_done_base,
            total=status_done_base + len(pair_list),
            started_mono=started_mono, mono=started_mono,
        ))
    progress_cb: Optional[ProgressCallback] = (
        dispatcher.emit if dispatcher else None
    )
    root_span = (
        spans.start("campaign", engine=engine, shards=len(pair_list))
        if collect_spans else None
    )
    tmpdir: Optional[str] = None
    try:
        trace_paths: Dict[int, str] = {}
        if trace_path is not None:
            trace_paths = {
                seed: str(trace_path)
                for seed in dict.fromkeys(seed for _, seed in pair_list)
            }
        elif memoize_traces:
            tmpdir = tempfile.mkdtemp(prefix="repro-campaign-")
            with section_of(profiler, "campaign:traces"):
                for seed in dict.fromkeys(seed for _, seed in pair_list):
                    trace = paper_mixed_workload(
                        config,
                        total_intervals=total_intervals,
                        seed=derive_seed(seed, "trace"),
                        **workload_kwargs,
                    )
                    path = os.path.join(tmpdir, f"trace-{seed}.npz")
                    save_trace_npz(trace, path)
                    trace_paths[seed] = path
        jobs = [
            CampaignJob(
                config=config,
                technique=name,
                seed=seed,
                total_intervals=total_intervals,
                workload_kwargs=frozen_kwargs,
                trace_path=trace_paths.get(seed),
                engine=engine,
                collect_metrics=metrics is not None,
                fault_injector=fault_injector,
                collect_spans=collect_spans,
                span_seed=span_seed,
                status_dir=status_dir,
            )
            for name, seed in pair_list
        ]
        total = len(jobs)
        outcomes: List[Optional[JobOutcome]] = [None] * total
        done = 0
        ctx = ExecutionContext(
            retry=retry,
            metrics=metrics,
            progress=progress_cb,
            shard_callback=shard_callback,
            failures=failures,
            sleep=sleep,
            tracer=tracer if tracer_enabled else None,
            status=status,
        )
        # Fused cell-blocks: one replay per seed covers that seed's whole
        # technique axis.  Retry / fault-injection need per-shard
        # attribution and a tracer is single-cell by contract, so those
        # modes keep the per-cell jobs below (the fused single-cell
        # wrapper still runs there via ``get_engine``).
        use_blocks = (
            engine == "fused"
            and retry is None
            and fault_injector is None
            and not tracer_enabled
            and runner.supports_blocks
        )
        if use_blocks:
            index_of = {
                (name or "none", seed): index
                for index, (name, seed) in enumerate(pair_list)
            }
            seed_names: Dict[int, List[Optional[str]]] = {}
            for name, seed in pair_list:
                seed_names.setdefault(seed, []).append(name)
            blocks = [
                _FusedBlock(
                    config=config,
                    techniques=tuple(block_names),
                    seed=seed,
                    total_intervals=total_intervals,
                    workload_kwargs=frozen_kwargs,
                    trace_path=trace_paths.get(seed),
                    collect_metrics=metrics is not None,
                    collect_spans=collect_spans,
                    span_seed=span_seed,
                    status_dir=status_dir,
                )
                for seed, block_names in seed_names.items()
            ]

            def place(block_outcomes: List[JobOutcome]) -> None:
                nonlocal done
                for outcome in block_outcomes:
                    outcomes[index_of[(outcome[0], outcome[1])]] = outcome
                    if shard_callback is not None:
                        shard_callback(outcome, 1)
                done += len(block_outcomes)
                if progress_cb is not None:
                    progress_cb(done, total)

            with section_of(profiler, runner.profile_section):
                runner.execute_blocks(blocks, place)
        else:
            with section_of(profiler, runner.profile_section):
                outcomes = runner.execute(jobs, ctx)
    finally:
        if tmpdir is not None:
            shutil.rmtree(tmpdir, ignore_errors=True)
        if collect_spans:
            spans.finish()  # close the campaign root span
    # outcomes is ordered by job index (technique-major, seed-minor)
    # regardless of completion order; degraded shards stay None
    aggregates = CampaignResult(failures=failures)
    for name in ordered_names:
        aggregates[name] = TechniqueAggregate(technique=name)
    completed = 0
    for outcome in outcomes:
        if outcome is None:
            continue
        name, _seed, result, job_metrics, job_spans = outcome
        aggregates[name].results.append(result)
        completed += 1
        if metrics is not None and job_metrics is not None:
            metrics.merge(job_metrics)
        if collect_spans and job_spans is not None:
            spans.adopt(job_spans, parent=root_span)
    for failure in failures:
        aggregates[failure.technique].degraded_seeds.append(failure.seed)
    _count(metrics, "campaign.shards_completed", completed)
    if status is not None:
        final_retries = 0
        if metrics is not None:
            retry_counter = metrics.counters.get("campaign.shard_retries")
            final_retries = retry_counter.value if retry_counter else 0
        status.publish_snapshot(CampaignSnapshot(
            done=status_done_base + completed,
            total=status_done_base + len(pair_list),
            degraded=len(failures),
            retries=final_retries,
            started_mono=started_mono,
            mono=time.monotonic(),
            complete=completed + len(failures) >= len(pair_list),
        ))
    return aggregates
