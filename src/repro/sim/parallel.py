"""Parallel experiment execution.

The paper's campaign (9 techniques x a 1.56 M-interval trace) is
embarrassingly parallel across (technique, seed) pairs.  This module
distributes those runs over a process pool.  Workers must receive
picklable job descriptions, so a job carries either the workload knobs
(each worker regenerates its trace deterministically from the seed) or
-- the default -- the path of a trace that was generated **once** per
seed and serialised to a temporary ``.npz`` file: all nine technique
jobs of a seed then share one trace generation instead of repeating it,
which also keeps the comparison paired across techniques.

Jobs are dispatched in chunks (one pool task runs a whole chunk) to
amortise pickling overhead, and an optional ``progress`` callback is
invoked as chunks complete.
"""

from __future__ import annotations

import math
import os
import shutil
import tempfile
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import SimConfig
from repro.mitigations.registry import make_factory, technique_names
from repro.rng import derive_seed
from repro.sim.engine import get_engine
from repro.sim.experiment import TechniqueAggregate
from repro.sim.metrics import SimResult
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profiler import section_of
from repro.traces.mixer import paper_mixed_workload
from repro.traces.trace_io import load_trace_npz, save_trace_npz

#: called as ``progress(completed_jobs, total_jobs)`` after each chunk
ProgressCallback = Callable[[int, int], None]


@dataclass(frozen=True)
class CampaignJob:
    """One (technique, seed) unit of work; fully picklable."""

    config: SimConfig
    technique: Optional[str]
    seed: int
    total_intervals: int
    workload_kwargs: tuple = ()  # sorted (key, value) pairs
    #: pre-serialised trace shared by every technique of this seed;
    #: ``None`` regenerates the trace from the workload knobs instead
    trace_path: Optional[str] = None
    engine: str = "reference"
    #: collect a per-job :class:`MetricsRegistry` in the worker and ship
    #: it back for merging (tracers cannot cross process boundaries, but
    #: metric counters merge exactly)
    collect_metrics: bool = False


#: (technique, seed, result, per-job metrics or None)
JobOutcome = Tuple[str, int, SimResult, Optional[MetricsRegistry]]


def _run_job(job: CampaignJob, tracer=None) -> JobOutcome:
    if job.trace_path is not None:
        trace = load_trace_npz(job.trace_path)
    else:
        trace = paper_mixed_workload(
            job.config,
            total_intervals=job.total_intervals,
            seed=derive_seed(job.seed, "trace"),
            **dict(job.workload_kwargs),
        )
    factory = make_factory(job.technique) if job.technique else None
    run = get_engine(job.engine)
    metrics = MetricsRegistry() if job.collect_metrics else None
    result = run(
        job.config, trace, factory, seed=job.seed, tracer=tracer,
        metrics=metrics,
    )
    return (job.technique or "none", job.seed, result, metrics)


def _run_chunk(chunk: List[CampaignJob]) -> List[JobOutcome]:
    return [_run_job(job) for job in chunk]


def run_campaign(
    config: SimConfig,
    total_intervals: int,
    techniques: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (0, 1, 2),
    include_unmitigated: bool = False,
    workers: Optional[int] = None,
    engine: str = "reference",
    memoize_traces: bool = True,
    chunk_size: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    tracer=None,
    metrics=None,
    profiler=None,
    **workload_kwargs,
) -> Dict[str, TechniqueAggregate]:
    """Run the full comparison campaign over a process pool.

    Semantically equivalent to
    :func:`repro.sim.experiment.compare_techniques` with the default
    paper workload, but each (technique, seed) runs in its own process.
    ``workers=None`` uses the pool default; ``workers=0`` runs inline
    (useful under debuggers and coverage).

    ``memoize_traces`` generates each seed's trace once and shares the
    serialised file across that seed's technique jobs; ``engine``
    selects the simulation engine (see
    :data:`repro.sim.engine.ENGINE_NAMES`); ``chunk_size`` jobs are
    grouped into one pool task (default: about four chunks per worker);
    ``progress(done, total)`` is called after each completed chunk.

    ``metrics`` works in every mode: pool workers collect their own
    registry and the shards are merged into the caller's on return.
    ``tracer`` streams cannot cross a process boundary, so an *enabled*
    tracer requires ``workers=0``; ``profiler`` likewise only times the
    coarse campaign phases in pool mode.
    """
    get_engine(engine)  # validate the name before spawning anything
    tracer_enabled = tracer is not None and getattr(tracer, "enabled", True)
    if tracer_enabled and workers != 0:
        raise ValueError(
            "event tracing requires workers=0: tracer streams cannot "
            "cross a process-pool boundary"
        )
    names: List[Optional[str]] = (
        list(techniques) if techniques is not None else technique_names()
    )
    if include_unmitigated:
        names = [None] + names
    frozen_kwargs = tuple(sorted(workload_kwargs.items()))
    tmpdir: Optional[str] = None
    try:
        trace_paths: Dict[int, str] = {}
        if memoize_traces:
            tmpdir = tempfile.mkdtemp(prefix="repro-campaign-")
            with section_of(profiler, "campaign:traces"):
                for seed in dict.fromkeys(seeds):
                    trace = paper_mixed_workload(
                        config,
                        total_intervals=total_intervals,
                        seed=derive_seed(seed, "trace"),
                        **workload_kwargs,
                    )
                    path = os.path.join(tmpdir, f"trace-{seed}.npz")
                    save_trace_npz(trace, path)
                    trace_paths[seed] = path
        jobs = [
            CampaignJob(
                config=config,
                technique=name,
                seed=seed,
                total_intervals=total_intervals,
                workload_kwargs=frozen_kwargs,
                trace_path=trace_paths.get(seed),
                engine=engine,
                collect_metrics=metrics is not None,
            )
            for name in names
            for seed in seeds
        ]
        total = len(jobs)
        outcomes: List[Optional[JobOutcome]] = [None] * total
        done = 0
        if workers == 0:
            with section_of(profiler, "campaign:inline"):
                for index, job in enumerate(jobs):
                    outcomes[index] = _run_job(
                        job, tracer=tracer if tracer_enabled else None
                    )
                    done += 1
                    if progress is not None:
                        progress(done, total)
        else:
            if chunk_size is None:
                pool_width = workers or os.cpu_count() or 1
                chunk_size = max(1, math.ceil(total / (4 * pool_width)))
            chunks = [
                (start, jobs[start : start + chunk_size])
                for start in range(0, total, chunk_size)
            ]
            with section_of(profiler, "campaign:pool"):
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = {
                        pool.submit(_run_chunk, chunk): start
                        for start, chunk in chunks
                    }
                    for future in as_completed(futures):
                        start = futures[future]
                        chunk_outcomes = future.result()
                        outcomes[start : start + len(chunk_outcomes)] = chunk_outcomes
                        done += len(chunk_outcomes)
                        if progress is not None:
                            progress(done, total)
    finally:
        if tmpdir is not None:
            shutil.rmtree(tmpdir, ignore_errors=True)
    # outcomes is ordered by job index (technique-major, seed-minor)
    # regardless of completion order
    aggregates: Dict[str, TechniqueAggregate] = {}
    for name, _seed, result, job_metrics in outcomes:
        aggregates.setdefault(name, TechniqueAggregate(technique=name))
        aggregates[name].results.append(result)
        if metrics is not None and job_metrics is not None:
            metrics.merge(job_metrics)
    return aggregates
