"""Parallel experiment execution with worker-level fault tolerance.

The paper's campaign (9 techniques x a 1.56 M-interval trace) is
embarrassingly parallel across (technique, seed) pairs.  This module
distributes those runs over a process pool.  Workers must receive
picklable job descriptions, so a job carries either the workload knobs
(each worker regenerates its trace deterministically from the seed) or
-- the default -- the path of a trace that was generated **once** per
seed and serialised to a temporary ``.npz`` file: all nine technique
jobs of a seed then share one trace generation instead of repeating it,
which also keeps the comparison paired across techniques.

Jobs are dispatched in chunks (one pool task runs a whole chunk) to
amortise pickling overhead, and an optional ``progress`` callback is
invoked as chunks complete.

Passing a :class:`RetryPolicy` turns on fault tolerance: a crashed or
hung shard is retried with exponential backoff up to ``max_retries``
extra attempts, after which the campaign either fails
(``on_failure="raise"``) or records the shard as *degraded*
(``on_failure="skip"``) and carries on.  Retry, timeout and crash
counts surface through the ``metrics`` registry under ``campaign.*``
names.  Hour-scale campaigns should combine this with the durable
checkpointing in :mod:`repro.campaign`, which persists every completed
shard and can resume an interrupted campaign.
"""

from __future__ import annotations

import math
import os
import shutil
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from contextlib import ExitStack
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import SimConfig
from repro.mitigations.registry import make_factory, technique_names
from repro.rng import derive_seed
from repro.sim.engine import get_engine
from repro.sim.experiment import TechniqueAggregate
from repro.sim.metrics import SimResult
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profiler import section_of
from repro.telemetry.progress import ProgressDispatcher, ProgressListener
from repro.telemetry.spans import SpanTracer, span_of
from repro.telemetry.statusbus import CampaignSnapshot, StatusBus
from repro.traces.mixer import paper_mixed_workload
from repro.traces.trace_io import load_trace_npz, save_trace_npz

#: called as ``progress(completed_jobs, total_jobs)`` after each chunk
ProgressCallback = Callable[[int, int], None]

#: shard failure policies accepted by :class:`RetryPolicy`
ON_FAILURE_MODES = ("raise", "skip")


class ShardTimeout(RuntimeError):
    """A shard attempt exceeded the retry policy's ``shard_timeout``."""

    shard_fault_kind = "timeout"


@dataclass(frozen=True)
class RetryPolicy:
    """Worker-level fault handling for a campaign.

    ``max_retries`` extra attempts are granted per shard beyond the
    first; retry *n* (1-based) is preceded by a backoff delay of
    ``min(backoff_cap, backoff_base * backoff_factor ** (n - 1))``
    seconds.  ``shard_timeout`` bounds one pool dispatch round: a round
    of *n* pending shards on a *w*-wide pool may take
    ``shard_timeout * ceil(n / w)`` seconds before every unfinished
    shard in it is declared hung (each then consumes one retry
    attempt), so set it comfortably above a single shard's expected
    duration.  Timeouts require pool mode; inline execution
    (``workers=0``) is single-threaded and cannot interrupt a shard.

    ``on_failure`` decides what happens when a shard exhausts its
    attempts: ``"raise"`` re-raises the shard's final exception,
    ``"skip"`` records a :class:`ShardFailure` and degrades the
    campaign summary instead.
    """

    max_retries: int = 0
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    backoff_cap: float = 30.0
    shard_timeout: Optional[float] = None
    on_failure: str = "raise"

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0: {self.max_retries}")
        if self.on_failure not in ON_FAILURE_MODES:
            raise ValueError(
                f"on_failure must be one of {ON_FAILURE_MODES}: "
                f"{self.on_failure!r}"
            )
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError(
                f"shard_timeout must be positive: {self.shard_timeout}"
            )
        if self.backoff_base < 0 or self.backoff_factor < 0:
            raise ValueError("backoff parameters must be non-negative")

    def delay(self, retry: int) -> float:
        """Backoff before 1-based retry number *retry* (0 for retry 0)."""
        if retry <= 0 or self.backoff_base == 0:
            return 0.0
        return min(
            self.backoff_cap,
            self.backoff_base * self.backoff_factor ** (retry - 1),
        )


@dataclass
class ShardFailure:
    """One shard that exhausted its attempts under ``on_failure="skip"``."""

    technique: str
    seed: int
    attempts: int
    kind: str  # "error" | "crash" | "timeout"
    error: str

    def as_dict(self) -> Dict[str, Any]:
        return {
            "technique": self.technique,
            "seed": self.seed,
            "attempts": self.attempts,
            "kind": self.kind,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ShardFailure":
        return cls(
            technique=data["technique"],
            seed=int(data["seed"]),
            attempts=int(data["attempts"]),
            kind=data["kind"],
            error=data.get("error", ""),
        )


class CampaignResult(Dict[str, TechniqueAggregate]):
    """``{technique: TechniqueAggregate}`` plus degraded-shard records.

    Behaves exactly like the plain dict :func:`run_campaign` has always
    returned; ``failures`` lists the shards that were skipped under
    ``on_failure="skip"`` (empty for a fully healthy campaign).
    """

    def __init__(self, *args, failures=None, **kwargs):
        super().__init__(*args, **kwargs)
        self.failures: List[ShardFailure] = list(failures or [])

    @property
    def degraded(self) -> bool:
        return bool(self.failures)


@dataclass(frozen=True)
class CampaignJob:
    """One (technique, seed) unit of work; fully picklable."""

    config: SimConfig
    technique: Optional[str]
    seed: int
    total_intervals: int
    workload_kwargs: tuple = ()  # sorted (key, value) pairs
    #: pre-serialised trace shared by every technique of this seed;
    #: ``None`` regenerates the trace from the workload knobs instead
    trace_path: Optional[str] = None
    engine: str = "reference"
    #: collect a per-job :class:`MetricsRegistry` in the worker and ship
    #: it back for merging (tracers cannot cross process boundaries, but
    #: metric counters merge exactly)
    collect_metrics: bool = False
    #: retry attempt number (0 = first try); informs fault injection
    attempt: int = 0
    #: test-only deterministic fault hook (see :mod:`repro.campaign.faults`)
    fault_injector: Optional[Any] = None
    #: record a worker-local span tree (shard -> trace/simulate) and ship
    #: it back serialised for re-parenting, like the metrics registry
    collect_spans: bool = False
    #: deterministic id seed shared by the campaign's tracers
    span_seed: str = ""
    #: status-bus directory for worker heartbeats (None = no bus)
    status_dir: Optional[str] = None


#: (technique, seed, result, per-job metrics or None, serialised spans or None)
JobOutcome = Tuple[
    str, int, SimResult, Optional[MetricsRegistry], Optional[Dict[str, Any]]
]

#: called with each completed shard outcome and its attempt count; the
#: durable campaign runner uses this to checkpoint shards as they land
ShardCallback = Callable[[JobOutcome, int], None]


def _shard_id(technique: Optional[str], seed: int) -> str:
    """The shard's identity on the status bus and in span id seeds."""
    return f"{technique or 'none'}__s{seed}"


def _run_job(job: CampaignJob, tracer=None, in_worker: bool = True) -> JobOutcome:
    if job.fault_injector is not None:
        job.fault_injector.fire(
            job.technique or "none", job.seed, job.attempt, in_worker=in_worker
        )
    shard = _shard_id(job.technique, job.seed)
    bus = StatusBus(job.status_dir) if job.status_dir else None
    if bus is not None:
        bus.beat(shard, 0, 1, retries=job.attempt)
    spans = (
        SpanTracer(id_seed=f"{job.span_seed}|{shard}")
        if job.collect_spans else None
    )
    with span_of(
        spans, "shard",
        technique=job.technique or "none", seed=job.seed, engine=job.engine,
    ):
        with span_of(spans, "trace"):
            if job.trace_path is not None:
                trace = load_trace_npz(job.trace_path)
            else:
                trace = paper_mixed_workload(
                    job.config,
                    total_intervals=job.total_intervals,
                    seed=derive_seed(job.seed, "trace"),
                    **dict(job.workload_kwargs),
                )
        factory = make_factory(job.technique) if job.technique else None
        run = get_engine(job.engine)
        metrics = MetricsRegistry() if job.collect_metrics else None
        with span_of(spans, "simulate"):
            result = run(
                job.config, trace, factory, seed=job.seed, tracer=tracer,
                metrics=metrics,
            )
    if bus is not None:
        bus.beat(shard, 1, 1, retries=job.attempt, phase="done")
    return (
        job.technique or "none", job.seed, result, metrics,
        spans.as_dict() if spans is not None else None,
    )


def _run_chunk(chunk: List[CampaignJob]) -> List[JobOutcome]:
    return [_run_job(job) for job in chunk]


@dataclass(frozen=True)
class _FusedBlock:
    """One fused cell-block: every technique of one seed, one replay.

    The fused engine's sharding unit -- the trace axis stays per seed
    (each seed has its own trace), while the whole technique axis of
    that seed rides a single decode+replay.  Picklable for the pool.
    """

    config: SimConfig
    techniques: Tuple[Optional[str], ...]
    seed: int
    total_intervals: int
    workload_kwargs: tuple = ()
    trace_path: Optional[str] = None
    collect_metrics: bool = False
    collect_spans: bool = False
    span_seed: str = ""
    status_dir: Optional[str] = None


def _run_block(block: _FusedBlock) -> List[JobOutcome]:
    from repro.sim.fused_engine import GridCell, run_simulation_grid

    shards = [_shard_id(name, block.seed) for name in block.techniques]
    bus = StatusBus(block.status_dir) if block.status_dir else None
    if bus is not None:
        for shard in shards:
            bus.beat(shard, 0, 1)
    # One tracer per cell, all spanning the shared decode+replay window:
    # the per-shard span records a fused block ships are structurally
    # identical to per-cell dispatch (same paths, same attribute keys),
    # so block composition -- which changes on --resume -- can never
    # leak into a span summary.
    tracers: List[Optional[SpanTracer]] = [
        SpanTracer(id_seed=f"{block.span_seed}|{shard}")
        if block.collect_spans else None
        for shard in shards
    ]
    with ExitStack() as shard_stack:
        for name, tracer in zip(block.techniques, tracers):
            shard_stack.enter_context(span_of(
                tracer, "shard",
                technique=name or "none", seed=block.seed, engine="fused",
            ))
        with ExitStack() as trace_stack:
            for tracer in tracers:
                trace_stack.enter_context(span_of(tracer, "trace"))
            if block.trace_path is not None:
                trace = load_trace_npz(block.trace_path)
            else:
                trace = paper_mixed_workload(
                    block.config,
                    total_intervals=block.total_intervals,
                    seed=derive_seed(block.seed, "trace"),
                    **dict(block.workload_kwargs),
                )
        metrics = MetricsRegistry() if block.collect_metrics else None
        cells = [
            GridCell(technique=name, seed=block.seed)
            for name in block.techniques
        ]
        with ExitStack() as simulate_stack:
            for tracer in tracers:
                simulate_stack.enter_context(span_of(tracer, "simulate"))
            results = run_simulation_grid(
                block.config, trace, cells, metrics=metrics
            )
    if bus is not None:
        for shard in shards:
            bus.beat(shard, 1, 1, phase="done")
    outcomes: List[JobOutcome] = []
    for cell, result, tracer in zip(cells, results, tracers):
        outcomes.append((
            cell.technique or "none", block.seed, result, metrics,
            tracer.as_dict() if tracer is not None else None,
        ))
        # the block shares one engine replay, so its registry ships on
        # the first outcome only -- merging it once, not per cell
        metrics = None
    return outcomes


def _map_chunk(
    fn: Callable[[Any], Any],
    chunk: List[Any],
    span_seed: Optional[str] = None,
    chunk_id: int = 0,
) -> Tuple[List[Any], Optional[Dict[str, Any]]]:
    spans = (
        SpanTracer(id_seed=f"{span_seed}|chunk{chunk_id}")
        if span_seed is not None else None
    )
    results = []
    with span_of(spans, "chunk", items=len(chunk)):
        for item in chunk:
            with span_of(spans, "item"):
                results.append(fn(item))
    return results, (spans.as_dict() if spans is not None else None)


def parallel_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    on_event: Optional[ProgressListener] = None,
    spans: Optional[SpanTracer] = None,
) -> List[Any]:
    """Order-preserving map over a process pool.

    The generic fan-out behind the adversary search loop: results come
    back in input order regardless of completion order, so a caller
    that only depends on ``fn`` being pure is bit-identical across
    ``workers`` settings.  ``workers=0`` maps inline (debuggers,
    coverage, tracers); otherwise *fn* and every item must be picklable
    and items are dispatched in chunks like :func:`run_campaign`.

    Progress is reported both ways: the legacy ``progress(done,
    total)`` callable and an ``on_event`` listener receiving
    :class:`~repro.telemetry.progress.ProgressEvent` records
    (``kind="parallel_map"``, ``unit="items"``) fire together as
    chunks complete.  ``spans`` records a ``parallel_map`` span with
    ``chunk``/``item`` children; pool workers record their chunk's
    spans locally and the tree is re-parented on merge.
    """
    items = list(items)
    total = len(items)
    dispatcher = ProgressDispatcher("parallel_map", unit="items")
    dispatcher.add_legacy(progress)
    dispatcher.add_listener(on_event)
    collect_spans = spans is not None and spans.enabled
    with span_of(spans, "parallel_map", items=total):
        if workers == 0 or total == 0:
            results: List[Any] = []
            # one logical chunk, so inline and pool runs share paths
            with span_of(spans, "chunk", items=total):
                for index, item in enumerate(items):
                    with span_of(spans, "item"):
                        results.append(fn(item))
                    if dispatcher:
                        dispatcher.emit(index + 1, total)
            return results
        if chunk_size is None:
            pool_width = workers or os.cpu_count() or 1
            chunk_size = max(1, math.ceil(total / (4 * pool_width)))
        results = [None] * total
        done = 0
        span_seed = spans.id_seed if collect_spans else None
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(
                    _map_chunk, fn, items[start : start + chunk_size],
                    span_seed, start,
                ): start
                for start in range(0, total, chunk_size)
            }
            for future in as_completed(futures):
                start = futures[future]
                chunk_results, chunk_spans = future.result()
                results[start : start + len(chunk_results)] = chunk_results
                done += len(chunk_results)
                if collect_spans:
                    spans.adopt(chunk_spans)
                if dispatcher:
                    dispatcher.emit(done, total)
    return results


def _count(metrics: Optional[MetricsRegistry], name: str, amount: int = 1) -> None:
    if metrics is not None and amount:
        metrics.counter(name).add(amount)


#: metrics counter name per failure kind
FAULT_COUNTERS = {
    "error": "campaign.shard_errors",
    "crash": "campaign.shard_crashes",
    "timeout": "campaign.shard_timeouts",
}


def _fault_kind(exc: BaseException) -> str:
    if isinstance(exc, BrokenProcessPool):
        return "crash"
    return getattr(exc, "shard_fault_kind", "error")


def _kill_workers(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting for hung workers.

    ``shutdown(cancel_futures=True)`` drops queued work; killing the
    worker processes directly (private but stable CPython attribute)
    keeps a truly hung shard from blocking the campaign or interpreter
    exit.
    """
    processes = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        try:
            process.kill()
        except Exception:  # pragma: no cover - racing process exit
            pass


def _exhaust(
    job: CampaignJob,
    attempts: int,
    exc: BaseException,
    policy: RetryPolicy,
    failures: List[ShardFailure],
    metrics: Optional[MetricsRegistry],
) -> None:
    """Handle a shard that used up every attempt: raise or degrade."""
    if policy.on_failure == "raise":
        raise exc
    failure = ShardFailure(
        technique=job.technique or "none",
        seed=job.seed,
        attempts=attempts,
        kind=_fault_kind(exc),
        error=f"{type(exc).__name__}: {exc}",
    )
    failures.append(failure)
    _count(metrics, "campaign.shards_degraded")


def _dispatch_inline(
    jobs: Sequence[CampaignJob],
    policy: RetryPolicy,
    tracer,
    metrics: Optional[MetricsRegistry],
    progress: Optional[ProgressCallback],
    shard_callback: Optional[ShardCallback],
    failures: List[ShardFailure],
    sleep: Callable[[float], None],
) -> List[Optional[JobOutcome]]:
    total = len(jobs)
    outcomes: List[Optional[JobOutcome]] = [None] * total
    done = 0
    for index, job in enumerate(jobs):
        attempt = 0
        while True:
            try:
                outcome = _run_job(
                    replace(job, attempt=attempt), tracer=tracer,
                    in_worker=False,
                )
            except Exception as exc:
                attempt += 1
                _count(metrics, FAULT_COUNTERS[_fault_kind(exc)])
                if attempt > policy.max_retries:
                    _exhaust(job, attempt, exc, policy, failures, metrics)
                    break
                _count(metrics, "campaign.shard_retries")
                delay = policy.delay(attempt)
                if delay > 0:
                    sleep(delay)
            else:
                outcomes[index] = outcome
                if shard_callback is not None:
                    shard_callback(outcome, attempt + 1)
                break
        done += 1
        if progress is not None:
            progress(done, total)
    return outcomes


def _dispatch_tolerant_pool(
    jobs: Sequence[CampaignJob],
    policy: RetryPolicy,
    workers: Optional[int],
    metrics: Optional[MetricsRegistry],
    progress: Optional[ProgressCallback],
    shard_callback: Optional[ShardCallback],
    failures: List[ShardFailure],
    sleep: Callable[[float], None],
) -> List[Optional[JobOutcome]]:
    """Per-job pool dispatch with retry rounds.

    Shards run one per pool task (no chunking) so an ordinary worker
    exception is attributed to exactly one shard's attempt.  Each round
    submits every pending shard to a fresh pool; failures are retried
    in the next round after the policy's backoff (one sleep per round,
    the largest delay owed to any retried shard).

    A worker *crash* breaks the whole pool, and a *timeout* ends the
    round, so either one also fails every shard still in flight -- the
    innocent shards are retried alongside the guilty one and each such
    event consumes one attempt from all of them.  Size ``max_retries``
    accordingly when crashes are expected to repeat.
    """
    total = len(jobs)
    outcomes: List[Optional[JobOutcome]] = [None] * total
    attempts = [0] * total
    pending = list(range(total))
    width = workers or os.cpu_count() or 1
    done = 0
    while pending:
        failed: Dict[int, BaseException] = {}
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(
                    _run_job, replace(jobs[index], attempt=attempts[index])
                ): index
                for index in pending
            }
            deadline = None
            if policy.shard_timeout is not None:
                deadline = policy.shard_timeout * max(
                    1, math.ceil(len(pending) / width)
                )
            try:
                for future in as_completed(futures, timeout=deadline):
                    index = futures[future]
                    try:
                        outcome = future.result()
                    except Exception as exc:
                        failed[index] = exc
                        continue
                    outcomes[index] = outcome
                    done += 1
                    if shard_callback is not None:
                        shard_callback(outcome, attempts[index] + 1)
                    if progress is not None:
                        progress(done + len(failures), total)
            except FuturesTimeout:
                for future, index in futures.items():
                    if outcomes[index] is None and index not in failed:
                        job = jobs[index]
                        failed[index] = ShardTimeout(
                            f"shard {job.technique or 'none'}/seed={job.seed} "
                            f"exceeded shard_timeout={policy.shard_timeout}s "
                            f"on attempt {attempts[index]}"
                        )
                _kill_workers(pool)
        retry_next: List[int] = []
        for index in sorted(failed):
            exc = failed[index]
            attempts[index] += 1
            _count(metrics, FAULT_COUNTERS[_fault_kind(exc)])
            if attempts[index] > policy.max_retries:
                _exhaust(
                    jobs[index], attempts[index], exc, policy, failures,
                    metrics,
                )
                if progress is not None:
                    progress(done + len(failures), total)
            else:
                _count(metrics, "campaign.shard_retries")
                retry_next.append(index)
        if retry_next:
            delay = max(policy.delay(attempts[index]) for index in retry_next)
            if delay > 0:
                sleep(delay)
        pending = retry_next
    return outcomes


def run_campaign(
    config: SimConfig,
    total_intervals: int,
    techniques: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (0, 1, 2),
    include_unmitigated: bool = False,
    workers: Optional[int] = None,
    engine: str = "reference",
    memoize_traces: bool = True,
    chunk_size: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    on_event: Optional[ProgressListener] = None,
    tracer=None,
    metrics=None,
    profiler=None,
    spans: Optional[SpanTracer] = None,
    status: Optional[StatusBus] = None,
    status_done_base: int = 0,
    pairs: Optional[Sequence[Tuple[Optional[str], int]]] = None,
    retry: Optional[RetryPolicy] = None,
    fault_injector=None,
    shard_callback: Optional[ShardCallback] = None,
    sleep: Callable[[float], None] = time.sleep,
    trace_path: Optional[str] = None,
    **workload_kwargs,
) -> CampaignResult:
    """Run the full comparison campaign over a process pool.

    Semantically equivalent to
    :func:`repro.sim.experiment.compare_techniques` with the default
    paper workload, but each (technique, seed) runs in its own process.
    ``workers=None`` uses the pool default; ``workers=0`` runs inline
    (useful under debuggers and coverage).

    ``memoize_traces`` generates each seed's trace once and shares the
    serialised file across that seed's technique jobs; ``engine``
    selects the simulation engine (see
    :data:`repro.sim.engine.ENGINE_NAMES`); ``chunk_size`` jobs are
    grouped into one pool task (default: about four chunks per worker);
    ``progress(done, total)`` is called after each completed chunk.

    ``metrics`` works in every mode: pool workers collect their own
    registry and the shards are merged into the caller's on return.
    ``tracer`` streams cannot cross a process boundary, so an *enabled*
    tracer requires ``workers=0``; ``profiler`` likewise only times the
    coarse campaign phases in pool mode.

    ``spans`` works in every mode like ``metrics``: each shard records
    a local ``shard -> trace/simulate`` span tree (also under fused
    block dispatch, where every cell's records span the shared replay
    window) and ships it back for re-parenting under the campaign root
    span.  ``status`` turns on the live status bus: workers publish
    per-shard heartbeats into its directory, the runner publishes a
    rolling :class:`~repro.telemetry.statusbus.CampaignSnapshot` at
    every progress tick, and shards whose heartbeat goes quiet for
    longer than the bus's ``stale_after`` surface through the
    ``campaign.workers_stale`` metric -- *before* any
    ``shard_timeout`` kill fires.  ``status_done_base`` offsets every
    published snapshot by shards completed *before* this invocation,
    so a resumed durable campaign reports whole-campaign totals
    instead of remainder-only ones.  ``on_event`` receives unified
    :class:`~repro.telemetry.progress.ProgressEvent` records
    alongside the legacy ``progress`` callable.  All three are pure
    observation: results are bit-identical with them on or off.

    ``trace_path`` replays one pre-serialised ``.npz`` trace (e.g. an
    ingested external capture, see :mod:`repro.traces.ingest`) for
    **every** (technique, seed) job instead of generating the paper
    workload -- seeds then only vary the mitigations' RNG, which is the
    right comparison for a fixed captured access stream.

    ``pairs`` overrides the ``techniques x seeds`` grid with an explicit
    (technique, seed) work list -- the durable campaign runner passes
    the not-yet-completed remainder here on resume.  ``retry`` enables
    worker-level fault tolerance (see :class:`RetryPolicy`); in pool
    mode it switches dispatch from chunks to one job per pool task so
    failures are attributed to single shards.  ``shard_callback(outcome,
    attempts)`` fires as each shard completes (checkpointing hook), and
    ``fault_injector`` plants deterministic test faults in the workers.
    ``sleep`` is the backoff clock (injectable for tests).

    Returns a :class:`CampaignResult` -- a ``{technique:
    TechniqueAggregate}`` dict whose ``failures`` attribute lists any
    shards degraded under ``on_failure="skip"``.
    """
    get_engine(engine)  # validate the name before spawning anything
    tracer_enabled = tracer is not None and getattr(tracer, "enabled", True)
    if tracer_enabled and workers != 0:
        raise ValueError(
            "event tracing requires workers=0: tracer streams cannot "
            "cross a process-pool boundary"
        )
    if pairs is not None:
        pair_list: List[Tuple[Optional[str], int]] = list(pairs)
    else:
        names: List[Optional[str]] = (
            list(techniques) if techniques is not None else technique_names()
        )
        if include_unmitigated:
            names = [None] + names
        pair_list = [(name, seed) for name in names for seed in seeds]
    ordered_names = list(dict.fromkeys(name or "none" for name, _ in pair_list))
    frozen_kwargs = tuple(sorted(workload_kwargs.items()))
    failures: List[ShardFailure] = []
    collect_spans = spans is not None and spans.enabled
    span_seed = spans.id_seed if collect_spans else ""
    status_dir = str(status.root) if status is not None else None
    dispatcher = ProgressDispatcher("campaign", unit="shards")
    dispatcher.add_legacy(progress)
    dispatcher.add_listener(on_event)
    started_mono = time.monotonic()
    if status is not None:
        stale_seen: set = set()

        def _publish_status(event) -> None:
            stale = status.stale_workers()
            for heartbeat in stale:
                if heartbeat.worker not in stale_seen:
                    stale_seen.add(heartbeat.worker)
                    _count(metrics, "campaign.workers_stale")
            retries = 0
            if metrics is not None:
                retry_counter = metrics.counters.get("campaign.shard_retries")
                retries = retry_counter.value if retry_counter else 0
            status.publish_snapshot(CampaignSnapshot(
                done=status_done_base + event.done,
                total=status_done_base + event.total,
                degraded=len(failures),
                retries=retries,
                stale=len(stale),
                started_mono=started_mono,
                mono=time.monotonic(),
                complete=event.done >= event.total,
            ))

        dispatcher.add_listener(_publish_status)
        status.publish_snapshot(CampaignSnapshot(
            done=status_done_base,
            total=status_done_base + len(pair_list),
            started_mono=started_mono, mono=started_mono,
        ))
    progress_cb: Optional[ProgressCallback] = (
        dispatcher.emit if dispatcher else None
    )
    root_span = (
        spans.start("campaign", engine=engine, shards=len(pair_list))
        if collect_spans else None
    )
    tmpdir: Optional[str] = None
    try:
        trace_paths: Dict[int, str] = {}
        if trace_path is not None:
            trace_paths = {
                seed: str(trace_path)
                for seed in dict.fromkeys(seed for _, seed in pair_list)
            }
        elif memoize_traces:
            tmpdir = tempfile.mkdtemp(prefix="repro-campaign-")
            with section_of(profiler, "campaign:traces"):
                for seed in dict.fromkeys(seed for _, seed in pair_list):
                    trace = paper_mixed_workload(
                        config,
                        total_intervals=total_intervals,
                        seed=derive_seed(seed, "trace"),
                        **workload_kwargs,
                    )
                    path = os.path.join(tmpdir, f"trace-{seed}.npz")
                    save_trace_npz(trace, path)
                    trace_paths[seed] = path
        jobs = [
            CampaignJob(
                config=config,
                technique=name,
                seed=seed,
                total_intervals=total_intervals,
                workload_kwargs=frozen_kwargs,
                trace_path=trace_paths.get(seed),
                engine=engine,
                collect_metrics=metrics is not None,
                fault_injector=fault_injector,
                collect_spans=collect_spans,
                span_seed=span_seed,
                status_dir=status_dir,
            )
            for name, seed in pair_list
        ]
        total = len(jobs)
        outcomes: List[Optional[JobOutcome]] = [None] * total
        done = 0
        # Fused cell-blocks: one replay per seed covers that seed's whole
        # technique axis.  Retry / fault-injection need per-shard
        # attribution and a tracer is single-cell by contract, so those
        # modes keep the per-cell jobs below (the fused single-cell
        # wrapper still runs there via ``get_engine``).
        use_blocks = (
            engine == "fused"
            and retry is None
            and fault_injector is None
            and not tracer_enabled
        )
        if use_blocks:
            index_of = {
                (name or "none", seed): index
                for index, (name, seed) in enumerate(pair_list)
            }
            seed_names: Dict[int, List[Optional[str]]] = {}
            for name, seed in pair_list:
                seed_names.setdefault(seed, []).append(name)
            blocks = [
                _FusedBlock(
                    config=config,
                    techniques=tuple(block_names),
                    seed=seed,
                    total_intervals=total_intervals,
                    workload_kwargs=frozen_kwargs,
                    trace_path=trace_paths.get(seed),
                    collect_metrics=metrics is not None,
                    collect_spans=collect_spans,
                    span_seed=span_seed,
                    status_dir=status_dir,
                )
                for seed, block_names in seed_names.items()
            ]

            def place(block_outcomes: List[JobOutcome]) -> None:
                nonlocal done
                for outcome in block_outcomes:
                    outcomes[index_of[(outcome[0], outcome[1])]] = outcome
                    if shard_callback is not None:
                        shard_callback(outcome, 1)
                done += len(block_outcomes)
                if progress_cb is not None:
                    progress_cb(done, total)

            if workers == 0:
                with section_of(profiler, "campaign:inline"):
                    for block in blocks:
                        place(_run_block(block))
            else:
                with section_of(profiler, "campaign:pool"):
                    with ProcessPoolExecutor(max_workers=workers) as pool:
                        block_futures = [
                            pool.submit(_run_block, block) for block in blocks
                        ]
                        for future in as_completed(block_futures):
                            place(future.result())
        elif workers == 0:
            with section_of(profiler, "campaign:inline"):
                outcomes = _dispatch_inline(
                    jobs,
                    retry or RetryPolicy(),
                    tracer if tracer_enabled else None,
                    metrics,
                    progress_cb,
                    shard_callback,
                    failures,
                    sleep,
                )
        elif retry is not None:
            with section_of(profiler, "campaign:pool"):
                outcomes = _dispatch_tolerant_pool(
                    jobs, retry, workers, metrics, progress_cb, shard_callback,
                    failures, sleep,
                )
        else:
            if chunk_size is None:
                pool_width = workers or os.cpu_count() or 1
                chunk_size = max(1, math.ceil(total / (4 * pool_width)))
            chunks = [
                (start, jobs[start : start + chunk_size])
                for start in range(0, total, chunk_size)
            ]
            with section_of(profiler, "campaign:pool"):
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = {
                        pool.submit(_run_chunk, chunk): start
                        for start, chunk in chunks
                    }
                    for future in as_completed(futures):
                        start = futures[future]
                        chunk_outcomes = future.result()
                        outcomes[start : start + len(chunk_outcomes)] = (
                            chunk_outcomes
                        )
                        if shard_callback is not None:
                            for outcome in chunk_outcomes:
                                shard_callback(outcome, 1)
                        done += len(chunk_outcomes)
                        if progress_cb is not None:
                            progress_cb(done, total)
    finally:
        if tmpdir is not None:
            shutil.rmtree(tmpdir, ignore_errors=True)
        if collect_spans:
            spans.finish()  # close the campaign root span
    # outcomes is ordered by job index (technique-major, seed-minor)
    # regardless of completion order; degraded shards stay None
    aggregates = CampaignResult(failures=failures)
    for name in ordered_names:
        aggregates[name] = TechniqueAggregate(technique=name)
    completed = 0
    for outcome in outcomes:
        if outcome is None:
            continue
        name, _seed, result, job_metrics, job_spans = outcome
        aggregates[name].results.append(result)
        completed += 1
        if metrics is not None and job_metrics is not None:
            metrics.merge(job_metrics)
        if collect_spans and job_spans is not None:
            spans.adopt(job_spans, parent=root_span)
    for failure in failures:
        aggregates[failure.technique].degraded_seeds.append(failure.seed)
    _count(metrics, "campaign.shards_completed", completed)
    if status is not None:
        final_retries = 0
        if metrics is not None:
            retry_counter = metrics.counters.get("campaign.shard_retries")
            final_retries = retry_counter.value if retry_counter else 0
        status.publish_snapshot(CampaignSnapshot(
            done=status_done_base + completed,
            total=status_done_base + len(pair_list),
            degraded=len(failures),
            retries=final_retries,
            started_mono=started_mono,
            mono=time.monotonic(),
            complete=completed + len(failures) >= len(pair_list),
        ))
    return aggregates
