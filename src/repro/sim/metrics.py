"""Result metrics of a mitigation simulation.

Definitions (made precise in DESIGN.md section 5):

* **activation overhead %** -- extra activations issued by the
  mitigation divided by normal trace activations, x100.  An ``act_n``
  costs two extra activations (one at array edges); a directed row
  refresh costs one.
* **false-positive rate %** -- extra activations whose *triggering row*
  was not a ground-truth aggressor at decision time, divided by normal
  activations, x100.  Ground truth comes from trace metadata that
  mitigations never observe.
* **attack success** -- any victim row accumulated ``flip_threshold``
  disturbances between restorations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional

from repro.dram.disturbance import FlipEvent


@dataclass
class SimResult:
    """Outcome of running one technique over one trace."""

    technique: str
    seed: int
    normal_activations: int = 0
    attack_activations: int = 0
    extra_activations: int = 0
    fp_extra_activations: int = 0
    mitigation_triggers: int = 0
    flips: List[FlipEvent] = field(default_factory=list)
    max_disturbance: int = 0
    intervals_simulated: int = 0
    #: trace-activation index of the first mitigation trigger (None if none)
    first_trigger_activation: Optional[int] = None
    #: per-bank mitigation table bytes (identical across banks)
    table_bytes: int = 0
    max_rh_buffer_occupancy: int = 0
    wall_seconds: float = 0.0
    #: disturbance count at which bits flip (copied from the config)
    flip_threshold: int = 0

    @property
    def overhead_pct(self) -> float:
        if self.normal_activations == 0:
            return 0.0
        return 100.0 * self.extra_activations / self.normal_activations

    @property
    def fpr_pct(self) -> float:
        if self.normal_activations == 0:
            return 0.0
        return 100.0 * self.fp_extra_activations / self.normal_activations

    @property
    def attack_fraction(self) -> float:
        if self.normal_activations == 0:
            return 0.0
        return self.attack_activations / self.normal_activations

    @property
    def attack_succeeded(self) -> bool:
        return bool(self.flips)

    @property
    def protection_margin(self) -> float:
        """How far the worst victim stayed from flipping.

        1.0 means no row was ever disturbed; 0.5 means the worst
        disturbance reached half the flip threshold; 0.0 means a flip
        happened.
        """
        if self.flips:
            return 0.0
        if self.flip_threshold <= 0:
            return 1.0
        return max(0.0, 1.0 - self.max_disturbance / self.flip_threshold)

    def as_dict(self, include_wall: bool = False) -> Dict[str, Any]:
        """JSON-ready dict of every result field.

        ``wall_seconds`` is excluded by default because it is the one
        field that legitimately differs between two otherwise identical
        runs; the differential and golden-regression tests compare
        exactly this dict.
        """
        out: Dict[str, Any] = {}
        for spec in fields(self):
            if spec.name == "wall_seconds" and not include_wall:
                continue
            value = getattr(self, spec.name)
            if spec.name == "flips":
                value = [
                    {
                        "bank": flip.bank,
                        "row": flip.row,
                        "count": flip.count,
                        "time_ns": flip.time_ns,
                    }
                    for flip in value
                ]
            out[spec.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SimResult":
        """Inverse of :meth:`as_dict` (missing ``wall_seconds`` -> 0)."""
        payload = dict(data)
        payload["flips"] = [FlipEvent(**flip) for flip in payload.get("flips", [])]
        return cls(**payload)

    def summary(self) -> str:
        flips = len(self.flips)
        return (
            f"{self.technique}: overhead={self.overhead_pct:.4f}% "
            f"fpr={self.fpr_pct:.4f}% flips={flips} "
            f"max_disturbance={self.max_disturbance} "
            f"extra={self.extra_activations}/{self.normal_activations}"
        )
