"""Parameter sweeps for the ablation studies DESIGN.md calls out.

The paper fixes the history table at 32 entries ("the best optimization
based on the simulated memory traces") and the CaPRoMi counter table at
64; these sweeps regenerate the tradeoff curves behind those choices,
plus the ``Pbase`` protection/overhead knob.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.config import SimConfig
from repro.sim.attacks import flooding_experiment
from repro.sim.experiment import TraceFactory, run_technique


def _unique(values: Sequence) -> List:
    """Deduplicate a sweep grid, keeping first-seen order.

    Sweep grids come from CLI lists and config files where repeated
    values are easy to produce; simulating a duplicated design point
    twice would waste a full multi-seed campaign per duplicate.  Values
    are canonicalised to ``float`` before hashing so spellings of the
    same number (``"0.1"`` vs ``"1e-1"`` out of a config file, ``1`` vs
    ``1.0``) collapse to one design point -- without this, a fused
    pbase sweep would carry duplicate cells through the whole grid.
    The *first-seen* original value is kept, so integer grids stay
    integers.
    """
    seen = set()
    unique = []
    for value in values:
        try:
            key = float(value)
        except (TypeError, ValueError):
            key = value
        if key not in seen:
            seen.add(key)
            unique.append(value)
    return unique


@dataclass
class SweepPoint:
    """One setting of the swept parameter and its outcomes."""

    parameter: str
    value: float
    overhead_pct: float
    fpr_pct: float
    flips: int
    table_bytes: int
    #: median flood activations until first mitigation (protection
    #: proxy; None when the flooding check was skipped or never fired)
    flood_median_acts: Optional[float] = None


def _measure(
    config: SimConfig,
    technique: str,
    trace_factory: TraceFactory,
    seeds: Sequence[int],
    parameter: str,
    value: float,
    check_flooding: bool,
    flood_seeds: Sequence[int],
    engine: str = "reference",
) -> SweepPoint:
    aggregate = run_technique(
        config, technique, trace_factory, seeds, engine=engine
    )
    flood_median = None
    if check_flooding:
        outcome = flooding_experiment(config, technique, seeds=flood_seeds)
        flood_median = outcome.median_acts
    return SweepPoint(
        parameter=parameter,
        value=value,
        overhead_pct=aggregate.overhead_mean,
        fpr_pct=aggregate.fpr_mean,
        flips=aggregate.total_flips,
        table_bytes=aggregate.table_bytes,
        flood_median_acts=flood_median,
    )


def sweep_history_table(
    config: SimConfig,
    trace_factory: TraceFactory,
    technique: str = "LoLiPRoMi",
    sizes: Sequence[int] = (4, 8, 16, 32, 64, 128),
    seeds: Sequence[int] = (0, 1),
    check_flooding: bool = False,
    flood_seeds: Sequence[int] = (0, 1, 2),
    engine: str = "reference",
) -> List[SweepPoint]:
    """History-table entries vs overhead (paper's fixed point: 32)."""
    points = []
    for size in _unique(sizes):
        cfg = config.scaled(history_table_entries=size)
        points.append(
            _measure(
                cfg, technique, trace_factory, seeds,
                "history_table_entries", size, check_flooding, flood_seeds,
                engine=engine,
            )
        )
    return points


def sweep_counter_table(
    config: SimConfig,
    trace_factory: TraceFactory,
    sizes: Sequence[int] = (16, 32, 64, 128),
    seeds: Sequence[int] = (0, 1),
    check_flooding: bool = False,
    flood_seeds: Sequence[int] = (0, 1, 2),
    engine: str = "reference",
) -> List[SweepPoint]:
    """CaPRoMi counter-table entries (paper's fixed point: 64)."""
    points = []
    for size in _unique(sizes):
        cfg = config.scaled(counter_table_entries=size)
        points.append(
            _measure(
                cfg, "CaPRoMi", trace_factory, seeds,
                "counter_table_entries", size, check_flooding, flood_seeds,
                engine=engine,
            )
        )
    return points


def sweep_pbase(
    config: SimConfig,
    trace_factory: TraceFactory,
    technique: str = "LoLiPRoMi",
    scales: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
    seeds: Sequence[int] = (0, 1),
    check_flooding: bool = True,
    flood_seeds: Sequence[int] = (0, 1, 2),
    engine: str = "reference",
) -> List[SweepPoint]:
    """``Pbase`` scaling: overhead grows, flood reaction time shrinks.

    With ``engine="fused"`` the whole scale axis rides one fused grid
    per trace seed (the pbase axis is a native fused-grid dimension),
    instead of one engine call per (scale, seed) pair.
    """
    scales = _unique(scales)
    if engine == "fused":
        return _sweep_pbase_fused(
            config, trace_factory, technique, scales, seeds,
            check_flooding, flood_seeds,
        )
    points = []
    for scale in scales:
        cfg = config.scaled(pbase=config.pbase * scale)
        points.append(
            _measure(
                cfg, technique, trace_factory, seeds,
                "pbase_scale", scale, check_flooding, flood_seeds,
                engine=engine,
            )
        )
    return points


def _sweep_pbase_fused(
    config: SimConfig,
    trace_factory: TraceFactory,
    technique: str,
    scales: Sequence[float],
    seeds: Sequence[int],
    check_flooding: bool,
    flood_seeds: Sequence[int],
) -> List[SweepPoint]:
    from repro.rng import derive_seed
    from repro.sim.experiment import TechniqueAggregate
    from repro.sim.fused_engine import grid_cells, run_simulation_grid

    aggregates = {
        float(scale): TechniqueAggregate(technique=technique)
        for scale in scales
    }
    for seed in seeds:
        trace = trace_factory(derive_seed(seed, "trace"))
        cells = grid_cells(
            [technique], (seed,), pbase_scales=scales, config=config
        )
        results = run_simulation_grid(config, trace, cells)
        for scale, result in zip(scales, results):
            aggregates[float(scale)].results.append(result)
    points = []
    for scale in scales:
        aggregate = aggregates[float(scale)]
        flood_median = None
        if check_flooding:
            cfg = config.scaled(pbase=config.pbase * float(scale))
            outcome = flooding_experiment(cfg, technique, seeds=flood_seeds)
            flood_median = outcome.median_acts
        points.append(
            SweepPoint(
                parameter="pbase_scale",
                value=scale,
                overhead_pct=aggregate.overhead_mean,
                fpr_pct=aggregate.fpr_mean,
                flips=aggregate.total_flips,
                table_bytes=aggregate.table_bytes,
                flood_median_acts=flood_median,
            )
        )
    return points


def refresh_mapping_ablation(
    config: SimConfig,
    trace_factory: TraceFactory,
    policy_factory,
    technique: str = "LiPRoMi",
    seeds: Sequence[int] = (0, 1),
):
    """Assumed vs exact refresh mapping under a non-sequential policy.

    Section IV states TiVaPRoMi's sequential-refresh assumption is "not
    required for our technique to be effective".  This ablation runs the
    same traces twice under *policy_factory*'s policy: once with the
    default Eq. 1 mapping (``f_r = r / RowsPI``, now wrong for the
    device) and once with the policy's exact inverse mapping
    (:meth:`~repro.dram.refresh.RefreshPolicy.refresh_slot_of`), and
    returns both aggregates so the cost of the assumption can be read
    off directly.  Returns ``(assumed, exact)``.
    """
    from repro.mitigations.registry import make_mitigation
    from repro.rng import derive_seed
    from repro.sim.engine import run_simulation
    from repro.sim.experiment import TechniqueAggregate

    assumed = TechniqueAggregate(technique=f"{technique} (assumed f_r)")
    exact = TechniqueAggregate(technique=f"{technique} (exact f_r)")
    for seed in seeds:
        policy = policy_factory(seed)
        for aggregate, slot_fn in (
            (assumed, None),
            (exact, policy.refresh_slot_of),
        ):
            kwargs = {"refresh_slot_fn": slot_fn} if slot_fn else {}

            def factory(cfg, bank, factory_seed, _kwargs=kwargs):
                return make_mitigation(
                    technique, cfg, bank=bank, seed=factory_seed, **_kwargs
                )

            trace = trace_factory(derive_seed(seed, "trace"))
            result = run_simulation(
                config, trace, factory, seed=seed, refresh_policy=policy
            )
            aggregate.results.append(result)
    return assumed, exact
