"""Canned attack experiments (Section IV security evaluation).

Three experiment families:

* :func:`flooding_experiment` -- flood one row at the maximum rate and
  measure the activations until the first mitigating refresh, as a
  function of the row's starting weight (how long before the attack
  the row was last refreshed).  The paper reports first mitigations at
  ~10 K (LoPRoMi/LoLiPRoMi), ~15 K (CaPRoMi) and ~40 K (LiPRoMi)
  activations; LiPRoMi's late reaction under a *weight-aware* flood
  (``start_weight = 0``) is its documented vulnerability.
* :func:`multi_aggressor_experiment` -- hammer ``n`` aggressors
  round-robin and measure how the mitigation's protection rate decays
  with ``n``; this quantifies the queue/table-thrashing weakness of
  MRLoc (and the paper's Section II critique of PARA-family trackers).
* :func:`vulnerability_verdicts` -- the Table III "Vulnerable to
  Attack" column.  The paper's column records which techniques have a
  *known bypass in the literature*; each technique class declares its
  documented bypasses (``known_vulnerabilities``) and this function
  reports them, alongside the empirical margins from the two
  experiments above.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import median
from repro.config import HALF_FLIP_THRESHOLD, SimConfig
from repro.mitigations.registry import (
    TECHNIQUES,
    make_capturing_factory,
    make_factory,
)
from repro.rng import derive_seed
from repro.sim.engine import run_simulation
from repro.traces.attacker import AttackSpec, flooding, n_aggressor
from repro.traces.mixer import build_trace

if TYPE_CHECKING:  # imported lazily: adversary imports sim
    from repro.adversary.frontier import AdversaryFrontier


@dataclass
class FloodingOutcome:
    """Result of the flooding experiment for one technique."""

    technique: str
    start_weight: int
    rate: int
    #: per-seed activations until the first mitigating refresh
    #: (None when no trigger happened within the window)
    acts_to_first_trigger: List[Optional[int]] = field(default_factory=list)

    @property
    def triggered(self) -> List[int]:
        return [acts for acts in self.acts_to_first_trigger if acts is not None]

    @property
    def median_acts(self) -> Optional[float]:
        if not self.triggered:
            # no seed triggered (or no seeds ran at all): median([])
            # would raise StatisticsError
            return None
        if len(self.triggered) < (len(self.acts_to_first_trigger) + 1) // 2:
            return None  # the median seed did not trigger
        return median(self.triggered)

    @property
    def below_safety_margin(self) -> bool:
        """True when the median first mitigation lands before 69 K
        activations (half the flip threshold, both-aggressors case)."""
        acts = self.median_acts
        return acts is not None and acts < HALF_FLIP_THRESHOLD


def flooding_experiment(
    config: SimConfig,
    technique: str,
    start_weight: int = 0,
    rate: Optional[int] = None,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    max_windows: int = 1,
) -> FloodingOutcome:
    """Time-to-first-mitigation under a single-row flood.

    The flooded row sits in refresh group 0 (``f_r = 0``) and the
    attack starts at window-relative interval *start_weight*, so the
    row's Eq. 1 weight when the flood begins is exactly
    *start_weight* -- 0 models the weight-aware attacker of Section
    III-A, larger values model blind floods that begin mid-window.
    """
    geometry = config.geometry
    if not 0 <= start_weight < geometry.refint:
        raise ValueError(f"start_weight outside [0, {geometry.refint})")
    rate = rate or config.timing.max_acts_per_interval
    row = 1  # interior row in refresh group 0 (f_r = 0)
    total_intervals = geometry.refint * max_windows
    outcome = FloodingOutcome(
        technique=technique, start_weight=start_weight, rate=rate
    )
    for seed in seeds:
        attack = flooding(
            geometry,
            bank=0,
            row=row,
            acts_per_interval=rate,
            start_interval=start_weight,
        )
        trace = build_trace(
            config,
            total_intervals=total_intervals,
            benign_params=None,
            attacks=[attack],
            seed=derive_seed(seed, "flood-trace"),
        )
        result = run_simulation(
            config,
            trace,
            make_factory(technique),
            seed=seed,
            stop_after_first_trigger=True,
        )
        outcome.acts_to_first_trigger.append(result.first_trigger_activation)
    return outcome


@dataclass
class MultiAggressorPoint:
    """Protection statistics while hammering *aggressors* rows."""

    technique: str
    aggressors: int
    total_acts: int
    mitigation_triggers: int
    max_disturbance: int
    flips: int

    @property
    def triggers_per_half_threshold(self) -> float:
        """Expected mitigating refreshes per 69 K aggressor activations.

        The protection margin: below ~1 the technique is likely to miss
        an attack of that shape entirely.
        """
        if self.total_acts == 0:
            return 0.0
        return self.mitigation_triggers * HALF_FLIP_THRESHOLD / self.total_acts


def multi_aggressor_experiment(
    config: SimConfig,
    technique: str,
    aggressor_counts: Sequence[int] = (1, 2, 4, 8, 16, 20),
    acts_per_interval: Optional[int] = None,
    windows: int = 1,
    seed: int = 0,
) -> List[MultiAggressorPoint]:
    """Protection decay under the sequential multi-aggressor attack."""
    geometry = config.geometry
    rate = acts_per_interval or config.timing.max_acts_per_interval
    points: List[MultiAggressorPoint] = []
    for count in aggressor_counts:
        attack = n_aggressor(
            geometry,
            bank=0,
            count=count,
            acts_per_interval=rate,
            first_row=geometry.rows_per_bank // 4,
            spacing=4,
        )
        trace = build_trace(
            config,
            total_intervals=geometry.refint * windows,
            benign_params=None,
            attacks=[attack],
            seed=derive_seed(seed, "multi-aggressor", count),
        )
        result = run_simulation(config, trace, make_factory(technique), seed=seed)
        points.append(
            MultiAggressorPoint(
                technique=technique,
                aggressors=count,
                total_acts=result.normal_activations,
                mitigation_triggers=result.mitigation_triggers,
                max_disturbance=result.max_disturbance,
                flips=len(result.flips),
            )
        )
    return points


@dataclass
class TreeSaturationOutcome:
    """Focused vs. saturated attack against the counter tree."""

    #: finest tree-node size covering the aggressor at end of run
    focused_finest: int
    saturated_finest: int
    focused_coarse_triggers: int
    saturated_coarse_triggers: int
    focused_extra_acts: int
    saturated_extra_acts: int

    @property
    def saturation_succeeded(self) -> bool:
        """The decoys kept the tree from isolating the aggressor."""
        return self.saturated_finest > self.focused_finest


def tree_saturation_experiment(
    config: SimConfig,
    windows: int = 1,
    hammer_rate: int = 80,
    decoy_rows: int = 96,
    decoy_rate: int = 60,
    node_budget: int = 64,
    seed: int = 0,
) -> TreeSaturationOutcome:
    """The Section II attack against tree counters [13].

    Run the same double-sided hammer twice against the adaptive counter
    tree: once alone (the tree refines down to the aggressor rows) and
    once alongside decoy activations spread over *decoy_rows* rows that
    burn the node budget on splits elsewhere.  Returns how coarse the
    node covering the aggressor stayed and the extra-activation cost of
    coarse triggers.
    """
    from repro.mitigations.counter_tree import CounterTree
    from repro.traces.attacker import double_sided

    geometry = config.geometry
    victim = geometry.rows_per_bank // 2 + 1
    hammer = double_sided(
        geometry, bank=0, victim=victim, acts_per_interval=hammer_rate
    )
    decoys = n_aggressor(
        geometry,
        bank=0,
        count=decoy_rows,
        acts_per_interval=decoy_rate,
        first_row=geometry.rows_per_bank // 8,
        spacing=max(2, (geometry.rows_per_bank // 2) // decoy_rows),
    )
    outcomes = {}
    for label, attacks in (("focused", [hammer]), ("saturated", [hammer, decoys])):
        trace = build_trace(
            config,
            total_intervals=geometry.refint * windows,
            attacks=attacks,
            seed=derive_seed(seed, "tree-saturation", label),
        )
        holder = {}
        factory = make_capturing_factory(
            CounterTree, holder, node_budget=node_budget
        )
        result = run_simulation(config, trace, factory, seed=seed)
        tree = holder[0]
        outcomes[label] = (
            tree.finest_size_covering(hammer.aggressors[0]),
            tree.coarse_triggers,
            result.extra_activations,
        )
    return TreeSaturationOutcome(
        focused_finest=outcomes["focused"][0],
        saturated_finest=outcomes["saturated"][0],
        focused_coarse_triggers=outcomes["focused"][1],
        saturated_coarse_triggers=outcomes["saturated"][1],
        focused_extra_acts=outcomes["focused"][2],
        saturated_extra_acts=outcomes["saturated"][2],
    )


@dataclass
class RemappedAdjacencyOutcome:
    """Per-technique result of the remapped-adjacency attack."""

    technique: str
    flips: int
    victim_peak_disturbance: int

    @property
    def protected(self) -> bool:
        return self.flips == 0


def remapped_adjacency_experiment(
    config: SimConfig,
    techniques: Sequence[str] = ("PARA", "LoLiPRoMi"),
    windows: int = 1,
    rate: Optional[int] = None,
    seed: int = 0,
) -> Dict[str, RemappedAdjacencyOutcome]:
    """The Section II remapping critique, as an experiment.

    The device remaps a victim row to a spare slot elsewhere in the
    array (:class:`~repro.dram.remap.RemappedGeometry`).  A templating
    attacker who knows the physical map hammers the two rows physically
    adjacent to the victim's *new* location.  Address-based mitigations
    (PARA/ProHit/MRLoc) compute victims as aggressor+-1 -- the wrong
    rows -- so the attack goes through; ``act_n``-based techniques
    (TiVaPRoMi, TWiCe, CRA) are resolved by the memory's internal map
    and stay effective.
    """
    from repro.dram.remap import RemappedGeometry

    base = config.geometry
    victim = base.rows_per_bank // 4 + 1
    spare = 3 * base.rows_per_bank // 4 + 1
    geometry = RemappedGeometry(
        num_banks=base.num_banks,
        rows_per_bank=base.rows_per_bank,
        rows_per_interval=base.rows_per_interval,
        swaps=((victim, spare),),
    )
    remapped_config = config.scaled(geometry=geometry)
    rate = rate or config.timing.max_acts_per_interval
    # the attacker hammers the rows physically adjacent to the victim's
    # actual slot (the spare's neighbours)
    attack = AttackSpec(
        bank=0,
        aggressors=(spare - 1, spare + 1),
        acts_per_interval=rate,
        name=f"remap-aware@{victim}",
    )
    outcomes: Dict[str, RemappedAdjacencyOutcome] = {}
    for technique in techniques:
        trace = build_trace(
            remapped_config,
            total_intervals=geometry.refint * windows,
            attacks=[attack],
            seed=derive_seed(seed, "remap-trace", technique),
        )
        result = run_simulation(
            remapped_config, trace, make_factory(technique), seed=seed
        )
        victim_flips = sum(1 for flip in result.flips if flip.row == victim)
        outcomes[technique] = RemappedAdjacencyOutcome(
            technique=technique,
            flips=victim_flips,
            victim_peak_disturbance=result.max_disturbance,
        )
    return outcomes


@dataclass
class SoftwareDetectionOutcome:
    """Hardware-vs-software head-to-head under a sustained attack."""

    #: refresh-window index when the detector confirmed each aggressor
    detection_windows: Dict[int, int]
    software_flips_before_detection: int
    software_flips_after_detection: int
    hardware_flips: int

    @property
    def detected(self) -> bool:
        return bool(self.detection_windows)

    @property
    def latency_windows(self) -> Optional[int]:
        if not self.detection_windows:
            return None
        return min(self.detection_windows.values())


def software_detection_experiment(
    config: SimConfig,
    windows: int = 4,
    rate: int = 120,
    hardware_technique: str = "LoLiPRoMi",
    seed: int = 0,
) -> SoftwareDetectionOutcome:
    """Section II's software-level latency claim, measured.

    A sustained double-sided attack runs for several refresh windows.
    The ANVIL-class :class:`~repro.mitigations.software.SoftwareDetector`
    needs multiple windows of confirmation before it quarantines the
    aggressors -- and "until then, bit flipping might already start in
    the victim row"; the hardware mitigation reacts within the window
    and never lets a flip through.
    """
    from repro.mitigations.software import SoftwareDetector
    from repro.traces.attacker import double_sided

    geometry = config.geometry
    victim = geometry.rows_per_bank // 2 + 1
    attack = double_sided(
        geometry, bank=0, victim=victim, acts_per_interval=rate
    )
    trace = build_trace(
        config,
        total_intervals=geometry.refint * windows,
        attacks=[attack],
        seed=derive_seed(seed, "software-detect"),
        materialize=True,
    )
    holder = {}
    software_factory = make_capturing_factory(SoftwareDetector, holder)
    software = run_simulation(config, trace, software_factory, seed=seed)
    detector = holder[0]
    window_ns = geometry.refint * int(config.timing.refresh_interval_ns)
    detection_ns = (
        min(detector.detections.values()) * window_ns
        if detector.detections
        else float("inf")
    )
    before = sum(1 for flip in software.flips if flip.time_ns < detection_ns)
    after = sum(1 for flip in software.flips if flip.time_ns >= detection_ns)

    hardware = run_simulation(
        config, trace, make_factory(hardware_technique), seed=seed
    )
    return SoftwareDetectionOutcome(
        detection_windows=dict(detector.detections),
        software_flips_before_detection=before,
        software_flips_after_detection=after,
        hardware_flips=len(hardware.flips),
    )


@dataclass
class HalfDoublePoint:
    """One distance-2 coupling setting and its outcome."""

    distance2_rate: float
    direct_flips: int
    distance2_flips: int
    max_disturbance: int


def half_double_experiment(
    config: SimConfig,
    technique: str = "TWiCe",
    distance2_rates: Sequence[float] = (0.0, 0.1, 0.3),
    rate: int = 150,
    windows: int = 1,
    seed: int = 0,
) -> List[HalfDoublePoint]:
    """Beyond-paper extension: Half-Double-style distance-2 coupling.

    The paper's model (and every mitigation it evaluates) assumes
    disturbance stops at distance 1.  Later work (Google's Half-Double,
    2021) showed activations also disturb rows two slots away; worse,
    a mitigation's own ``act_n`` refreshes *hammer* the direct victims,
    pushing disturbance outward.  This experiment sweeps the coupling
    coefficient under a double-sided attack and classifies the
    resulting flips by distance from the aggressors: at rate 0 the
    technique protects everything (the paper's result); with coupling
    enabled, distance-2 rows flip while all direct victims stay clean,
    because no distance-1 mitigation ever refreshes them.

    Pass a config whose ``flip_threshold`` models the weaker device the
    coupling coefficient corresponds to (a single window at the paper's
    139 K threshold needs unrealistically strong coupling to show the
    effect; scaled thresholds show it faithfully).
    """
    geometry = config.geometry
    victim = geometry.rows_per_bank // 2 + 1
    aggressors = (victim - 1, victim + 1)
    direct = {victim, victim - 2, victim + 2}
    points: List[HalfDoublePoint] = []
    for coupling in distance2_rates:
        coupled = config.scaled(distance2_rate=coupling)
        attack = AttackSpec(
            bank=0,
            aggressors=aggressors,
            acts_per_interval=rate,
            name=f"half-double@{victim}",
        )
        trace = build_trace(
            coupled,
            total_intervals=geometry.refint * windows,
            attacks=[attack],
            seed=derive_seed(seed, "half-double", coupling),
        )
        result = run_simulation(
            coupled, trace, make_factory(technique), seed=seed
        )
        direct_flips = sum(1 for flip in result.flips if flip.row in direct)
        far_flips = sum(1 for flip in result.flips if flip.row not in direct)
        points.append(
            HalfDoublePoint(
                distance2_rate=coupling,
                direct_flips=direct_flips,
                distance2_flips=far_flips,
                max_disturbance=result.max_disturbance,
            )
        )
    return points


def vulnerability_verdicts(
    techniques: Optional[Sequence[str]] = None,
    frontiers: Optional[Dict[str, "AdversaryFrontier"]] = None,
) -> Dict[str, Tuple[bool, str]]:
    """Table III's "Vulnerable to Attack" column.

    A technique is marked vulnerable when the literature documents a
    bypass against it (the same basis the paper uses): PARA and MRLoc
    fall to sequential multi-aggressor patterns, LiPRoMi to
    weight-aware flooding.  The returned reason cites the attack; the
    empirical experiments in this module quantify the margins.

    Pass *frontiers* (``{technique: AdversaryFrontier}`` from
    :func:`repro.adversary.run_search`) to extend each reason with the
    worst pattern the red-team fuzzer discovered empirically -- its
    measured activations before the first mitigation and per-window
    activation budget -- alongside the literature verdict.
    """
    from repro.mitigations.registry import technique_class

    names = list(techniques) if techniques is not None else list(TECHNIQUES)
    verdicts: Dict[str, Tuple[bool, str]] = {}
    for name in names:
        cls = technique_class(name)
        if cls.known_vulnerabilities:
            vulnerable, reason = True, "; ".join(cls.known_vulnerabilities)
        else:
            vulnerable, reason = False, "no known bypass"
        frontier = (frontiers or {}).get(name)
        best = frontier.best if frontier is not None else None
        if best is not None:
            reason += (
                f"; worst discovered: {best.name} lands "
                f"{best.fitness:,.0f} acts before 1st mitigation at "
                f"{best.acts_per_window:,} acts/window"
            )
        verdicts[name] = (vulnerable, reason)
    return verdicts
