"""Multi-seed experiment orchestration.

An *experiment* runs one mitigation technique over freshly generated
traces for several seeds and aggregates overhead/FPR/reliability
statistics -- the unit from which Table III and Fig. 4 are built.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.stats import mean, mean_pm_std, std
from repro.config import SimConfig
from repro.dram.refresh import RefreshPolicy
from repro.mitigations.registry import make_factory, technique_names
from repro.rng import derive_seed
from repro.sim.engine import get_engine
from repro.sim.metrics import SimResult
from repro.telemetry.profiler import section_of
from repro.traces.mixer import paper_mixed_workload
from repro.traces.record import Trace

#: builds the trace for one seed
TraceFactory = Callable[[int], Trace]
#: builds the refresh policy for one seed (None -> sequential)
PolicyFactory = Callable[[int], RefreshPolicy]


@dataclass
class TechniqueAggregate:
    """Multi-seed statistics for one technique."""

    technique: str
    results: List[SimResult] = field(default_factory=list)
    #: seeds whose shard was dropped by a fault-tolerant campaign
    #: (``on_shard_failure=skip``); statistics above cover the
    #: surviving seeds only, so reports must surface these
    degraded_seeds: List[int] = field(default_factory=list)

    @property
    def overheads(self) -> List[float]:
        return [result.overhead_pct for result in self.results]

    @property
    def fprs(self) -> List[float]:
        return [result.fpr_pct for result in self.results]

    @property
    def overhead_mean(self) -> float:
        return mean(self.overheads) if self.results else 0.0

    @property
    def overhead_std(self) -> float:
        # std() itself returns 0.0 below two samples, so a single-seed
        # campaign reports (mu +- 0.0)% instead of raising
        return std(self.overheads)

    @property
    def fpr_mean(self) -> float:
        return mean(self.fprs) if self.results else 0.0

    @property
    def total_flips(self) -> int:
        return sum(len(result.flips) for result in self.results)

    @property
    def any_attack_succeeded(self) -> bool:
        return self.total_flips > 0

    @property
    def table_bytes(self) -> int:
        return self.results[0].table_bytes if self.results else 0

    @property
    def min_protection_margin(self) -> float:
        if not self.results:
            return 0.0
        return min(result.protection_margin for result in self.results)

    @property
    def wall_seconds(self) -> float:
        """Total engine wall-clock across all seeds (manifest timing)."""
        return sum(result.wall_seconds for result in self.results)

    def overhead_cell(self) -> str:
        """Table III style ``(mu +- sigma)%`` cell."""
        return mean_pm_std(self.overheads)

    @property
    def degraded(self) -> bool:
        return bool(self.degraded_seeds)

    def summary(self) -> str:
        degraded = (
            f" DEGRADED(seeds={sorted(self.degraded_seeds)})"
            if self.degraded_seeds else ""
        )
        return (
            f"{self.technique:<10} overhead={self.overhead_cell()} "
            f"fpr={self.fpr_mean:.4f}% flips={self.total_flips} "
            f"table={self.table_bytes}B{degraded}"
        )


def default_trace_factory(
    config: SimConfig, total_intervals: int, **workload_kwargs
) -> TraceFactory:
    """The paper's mixed SPEC + ramped-attacker workload, per seed."""

    def factory(seed: int) -> Trace:
        return paper_mixed_workload(
            config, total_intervals=total_intervals, seed=seed, **workload_kwargs
        )

    return factory


def run_technique(
    config: SimConfig,
    technique: Optional[str],
    trace_factory: TraceFactory,
    seeds: Sequence[int] = (0, 1, 2),
    policy_factory: Optional[PolicyFactory] = None,
    engine: str = "reference",
    tracer=None,
    metrics=None,
    profiler=None,
    **technique_kwargs,
) -> TechniqueAggregate:
    """Run *technique* (or ``None`` for no mitigation) over all seeds.

    ``engine`` selects the simulation engine by name (see
    :data:`repro.sim.engine.ENGINE_NAMES`); both engines produce
    identical results, pinned by the differential test harness.
    ``tracer`` / ``metrics`` / ``profiler`` are handed to every per-seed
    engine run (all seeds share them, so metric counters aggregate
    across the whole technique); they never change any result.
    """
    run = get_engine(engine)
    mitigation_factory = (
        make_factory(technique, **technique_kwargs) if technique else None
    )
    aggregate = TechniqueAggregate(technique=technique or "none")
    label = technique or "none"
    for seed in seeds:
        with section_of(profiler, f"trace:{label}"):
            trace = trace_factory(derive_seed(seed, "trace"))
        policy = policy_factory(seed) if policy_factory else None
        with section_of(profiler, f"technique:{label}"):
            result = run(
                config,
                trace,
                mitigation_factory,
                seed=seed,
                refresh_policy=policy,
                tracer=tracer,
                metrics=metrics,
            )
        aggregate.results.append(result)
    return aggregate


def compare_techniques(
    config: SimConfig,
    trace_factory: TraceFactory,
    techniques: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (0, 1, 2),
    include_unmitigated: bool = False,
    engine: str = "reference",
    tracer=None,
    metrics=None,
    profiler=None,
) -> Dict[str, TechniqueAggregate]:
    """Run every technique over the same per-seed traces.

    Identical trace seeds across techniques make the comparison paired,
    which is how the paper evaluates all nine techniques on the same
    gem5 trace.
    """
    names = list(techniques) if techniques is not None else technique_names()
    cache: Dict[int, Trace] = {}

    def cached_factory(trace_seed: int) -> Trace:
        trace = cache.get(trace_seed)
        if trace is None:
            trace = trace_factory(trace_seed).materialize()
            cache[trace_seed] = trace
        return trace

    comparison: Dict[str, TechniqueAggregate] = {}
    telemetry_kwargs = dict(tracer=tracer, metrics=metrics, profiler=profiler)
    if engine == "fused" and tracer is None:
        # Grid path: every technique rides one decode+replay of the
        # per-seed trace.  Per-engine tracers are single-cell only, so
        # a tracer falls through to the per-cell loop below.
        return _compare_fused(
            config, cached_factory, names, seeds, include_unmitigated,
            metrics=metrics, profiler=profiler,
        )
    if include_unmitigated:
        comparison["none"] = run_technique(
            config, None, cached_factory, seeds, engine=engine,
            **telemetry_kwargs,
        )
    for name in names:
        comparison[name] = run_technique(
            config, name, cached_factory, seeds, engine=engine,
            **telemetry_kwargs,
        )
    return comparison


def _compare_fused(
    config: SimConfig,
    trace_factory: TraceFactory,
    names: Sequence[str],
    seeds: Sequence[int],
    include_unmitigated: bool,
    metrics=None,
    profiler=None,
) -> Dict[str, TechniqueAggregate]:
    """Fused-engine comparison: one grid call per trace seed.

    The paired-trace structure (every technique sees the same per-seed
    trace) maps exactly onto one fused cell grid per seed: the trace
    varies with the seed, so the seed axis cannot share a decode, but
    the whole technique axis can.  Results are bit-identical to the
    per-cell path -- the differential suite pins it.
    """
    from repro.sim.fused_engine import grid_cells, run_simulation_grid

    techniques: List[Optional[str]] = (
        [None] if include_unmitigated else []
    ) + list(names)
    comparison: Dict[str, TechniqueAggregate] = {}
    for technique in techniques:
        comparison[technique or "none"] = TechniqueAggregate(
            technique=technique or "none"
        )
    for seed in seeds:
        with section_of(profiler, "trace:grid"):
            trace = trace_factory(derive_seed(seed, "trace"))
        cells = grid_cells(techniques, (seed,), config=config)
        with section_of(profiler, "technique:grid"):
            results = run_simulation_grid(
                config, trace, cells, metrics=metrics, profiler=profiler
            )
        for cell, result in zip(cells, results):
            comparison[cell.technique or "none"].results.append(result)
    return comparison
