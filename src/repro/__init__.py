"""repro: a reproduction of *TiVaPRoMi: Time-Varying Probabilistic
Row-Hammer Mitigation* (Nassar, Bauer, Henkel -- DATE 2021).

The package implements the paper's contribution (the four TiVaPRoMi
variants) together with every substrate its evaluation depends on:

* :mod:`repro.dram` -- DRAM geometry, refresh policies, and the
  Row-Hammer disturbance model (139 K activation threshold);
* :mod:`repro.traces` -- synthetic SPEC-like workloads and attack
  pattern generators replacing the paper's gem5 traces;
* :mod:`repro.mitigations` -- the five state-of-the-art baselines
  (PARA, ProHit, MRLoc, TWiCe, CRA) behind one interface;
* :mod:`repro.core` -- LiPRoMi, LoPRoMi, LoLiPRoMi and CaPRoMi, plus
  the Table II FSM cycle model;
* :mod:`repro.controller` / :mod:`repro.sim` -- the trace-driven
  memory-controller simulation and the experiment harness;
* :mod:`repro.analysis` -- the structural area model (Table III,
  Fig. 4) and report rendering.

Quick start::

    from repro import SimConfig, compare_techniques, default_trace_factory

    config = SimConfig()
    traces = default_trace_factory(config, total_intervals=2048)
    results = compare_techniques(config, traces, seeds=(0,))
    for name, aggregate in results.items():
        print(aggregate.summary())
"""

from repro.config import (
    DDR3_TIMING,
    DRAMGeometry,
    DRAMTiming,
    FLIP_THRESHOLD,
    HALF_FLIP_THRESHOLD,
    PBASE_PAPER,
    SimConfig,
    ddr4_paper_config,
    small_test_config,
)
from repro.mitigations import make_mitigation, technique_names
from repro.sim import (
    compare_techniques,
    default_trace_factory,
    flooding_experiment,
    run_simulation,
    run_technique,
)
from repro.traces import build_trace, paper_mixed_workload

__version__ = "1.0.0"

__all__ = [
    "DDR3_TIMING",
    "DRAMGeometry",
    "DRAMTiming",
    "FLIP_THRESHOLD",
    "HALF_FLIP_THRESHOLD",
    "PBASE_PAPER",
    "SimConfig",
    "build_trace",
    "compare_techniques",
    "ddr4_paper_config",
    "default_trace_factory",
    "flooding_experiment",
    "make_mitigation",
    "paper_mixed_workload",
    "run_simulation",
    "run_technique",
    "small_test_config",
    "technique_names",
    "__version__",
]
